"""The typed chip design space and the derived-chip constructor.

The DSE harness (ROADMAP item 4) explores candidate "MTIA 3" chips as
coordinates on a small set of :class:`~repro.arch.specs.ChipSpec` axes —
the knobs the paper's co-design narrative actually turned between
generations: the PE grid, on-chip SRAM and off-chip LPDDR capacity and
bandwidth, the GEMM:SIMD throughput ratio (32:1 on MTIA 2i, section
3.2), the operating-frequency ladder, and NoC bandwidth.

:func:`derive_chip` turns a base spec plus axis overrides into a fully
validated candidate.  Every derived field goes back through the frozen
dataclasses' ``__post_init__`` checks, and a physical scaling model
keeps candidates plausible:

* compute throughput scales with the PE count and (with voltage) the
  clock, exactly like :meth:`ChipSpec.at_frequency`;
* die area is rebuilt from component shares (PE array, SRAM, NoC,
  DRAM PHY/misc) so a candidate with 2x the SRAM pays for it in mm^2;
* ``typical_watts``/``tdp_watts`` are rebuilt from the same shares with
  an f*V(f)^2 dynamic term consistent with
  :func:`repro.power.activity.dynamic_power_w` — so the TCO and
  Perf-per-Watt objectives of a derived chip are computed from *its*
  area and power, never silently from the base chip's figures.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import ChipSpec, GemmEngineSpec, VectorEngineSpec
from repro.power.activity import VOLTAGE_SLOPE
from repro.power.dvfs import DEFAULT_LADDER_HZ
from repro.units import GB, GHZ, GiB, MiB

# Die-area shares of the base chip by component.  The PE array (DPEs,
# SIMD engines, local memory, scalar cores) dominates; SRAM is the next
# largest block; the LPDDR PHYs + controllers and the NoC fabric take
# the rest.  Shares sum to 1.0 so an all-ones scaling reproduces the
# base area to float rounding.
AREA_SHARE_COMPUTE = 0.48
AREA_SHARE_SRAM = 0.22
AREA_SHARE_NOC = 0.06
AREA_SHARE_IO = 0.14
AREA_SHARE_MISC = 0.10

# Typical-power shares by component at the calibrated operating point.
POWER_SHARE_COMPUTE = 0.55
POWER_SHARE_SRAM = 0.12
POWER_SHARE_DRAM = 0.18
POWER_SHARE_NOC = 0.05
POWER_SHARE_MISC = 0.10

# Fraction of one PE's area/power spent on its SIMD engine at the base
# GEMM:SIMD ratio; beefing SIMD up (lower ratio) grows the PE by this
# share times the SIMD scale.
SIMD_PE_SHARE = 0.10

_AXIS_NAMES = (
    "num_pes",
    "frequency_hz",
    "sram_capacity_bytes",
    "sram_bandwidth_bytes_per_s",
    "dram_capacity_bytes",
    "dram_bandwidth_bytes_per_s",
    "gemm_to_simd",
    "noc_bandwidth_bytes_per_s",
)


def _frequency_power_factor(freq_scale: float) -> float:
    """Dynamic-power multiplier for a clock change: f * V(f)^2 with the
    same sub-linear voltage slope :mod:`repro.power.activity` uses."""
    voltage = 1.0 + VOLTAGE_SLOPE * (freq_scale - 1.0)
    return freq_scale * voltage * voltage


def _validate_axis(name: str, value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value!r}")


def derive_chip(
    base: ChipSpec,
    *,
    num_pes: Optional[int] = None,
    frequency_hz: Optional[float] = None,
    sram_capacity_bytes: Optional[int] = None,
    sram_bandwidth_bytes_per_s: Optional[float] = None,
    dram_capacity_bytes: Optional[int] = None,
    dram_bandwidth_bytes_per_s: Optional[float] = None,
    gemm_to_simd: Optional[float] = None,
    noc_bandwidth_bytes_per_s: Optional[float] = None,
    name: Optional[str] = None,
) -> ChipSpec:
    """A candidate chip: ``base`` with design-space axes overridden.

    With no overrides the base spec is returned byte-identical (the
    property the codesign tests pin).  Otherwise:

    * ``num_pes`` (must be a perfect square — it is a PE *grid*) scales
      chip-wide GEMM/vector throughput; per-PE local memory and issue
      rate are per-PE quantities and carry over.
    * ``frequency_hz`` scales compute, on-chip bandwidth, issue rate and
      NoC exactly like :meth:`ChipSpec.at_frequency`; off-chip DRAM and
      PCIe do not scale.  A derived chip is *designed* at its operating
      point, so ``design_frequency_hz`` follows it.
    * ``sram_capacity_bytes`` scales SRAM bandwidth proportionally
      (more banks) unless ``sram_bandwidth_bytes_per_s`` pins it.
    * ``gemm_to_simd`` (>= 1) resizes the vector engines relative to the
      (scaled) GEMM engines.
    * ``noc_bandwidth_bytes_per_s`` defaults to the base NoC scaled by
      the PE grid *side* (mesh bisection grows with the side, not the
      PE count) and the clock.
    * ``die_area_mm2``/``typical_watts``/``tdp_watts`` are rebuilt from
      the component-share scaling model above.

    Every provided axis is validated here, and the constructed spec
    re-runs all dataclass ``__post_init__`` invariants.
    """
    provided = {
        axis: value
        for axis, value in (
            ("num_pes", num_pes),
            ("frequency_hz", frequency_hz),
            ("sram_capacity_bytes", sram_capacity_bytes),
            ("sram_bandwidth_bytes_per_s", sram_bandwidth_bytes_per_s),
            ("dram_capacity_bytes", dram_capacity_bytes),
            ("dram_bandwidth_bytes_per_s", dram_bandwidth_bytes_per_s),
            ("gemm_to_simd", gemm_to_simd),
            ("noc_bandwidth_bytes_per_s", noc_bandwidth_bytes_per_s),
        )
        if value is not None
    }
    if not provided:
        return base if name is None else dataclasses.replace(base, name=name)
    for axis, value in provided.items():
        _validate_axis(axis, value)
    if num_pes is not None:
        side = math.isqrt(int(num_pes))
        if side * side != num_pes:
            raise ValueError(
                f"num_pes must form a square PE grid, got {num_pes}"
            )

    pe_scale = (num_pes if num_pes is not None else base.num_pes) / base.num_pes
    new_frequency = (
        frequency_hz if frequency_hz is not None else base.frequency_hz
    )
    freq_scale = new_frequency / base.frequency_hz
    base_ratio = base.gemm_to_simd_ratio()
    ratio = gemm_to_simd if gemm_to_simd is not None else base_ratio
    if ratio < 1.0:
        raise ValueError("gemm_to_simd ratio must be at least 1")
    simd_scale = base_ratio / ratio

    engine_scale = pe_scale * freq_scale
    gemm = GemmEngineSpec(
        peak_flops={
            d: f * engine_scale for d, f in base.gemm.peak_flops.items()
        },
        sparsity_speedup=base.gemm.sparsity_speedup,
    )
    vector = VectorEngineSpec(
        peak_flops={
            d: f * engine_scale * simd_scale
            for d, f in base.vector.peak_flops.items()
        }
    )
    local = dataclasses.replace(
        base.local_memory,
        bandwidth_bytes_per_s=base.local_memory.bandwidth_bytes_per_s
        * freq_scale,
    )
    sram_capacity = (
        sram_capacity_bytes
        if sram_capacity_bytes is not None
        else base.sram.capacity_bytes
    )
    sram_cap_scale = sram_capacity / base.sram.capacity_bytes
    sram_bandwidth = (
        sram_bandwidth_bytes_per_s
        if sram_bandwidth_bytes_per_s is not None
        else base.sram.bandwidth_bytes_per_s * sram_cap_scale * freq_scale
    )
    sram = dataclasses.replace(
        base.sram,
        capacity_bytes=int(sram_capacity),
        bandwidth_bytes_per_s=sram_bandwidth,
    )
    dram = dataclasses.replace(
        base.dram,
        capacity_bytes=int(
            dram_capacity_bytes
            if dram_capacity_bytes is not None
            else base.dram.capacity_bytes
        ),
        bandwidth_bytes_per_s=(
            dram_bandwidth_bytes_per_s
            if dram_bandwidth_bytes_per_s is not None
            else base.dram.bandwidth_bytes_per_s
        ),
    )
    # Mesh bisection bandwidth grows with the grid side, not the count.
    noc = (
        noc_bandwidth_bytes_per_s
        if noc_bandwidth_bytes_per_s is not None
        else base.noc_bandwidth_bytes_per_s
        * math.sqrt(pe_scale)
        * freq_scale
    )
    issue = dataclasses.replace(
        base.issue,
        instructions_per_s=base.issue.instructions_per_s * freq_scale,
    )

    # Area: frequency-invariant component scaling.  NoC/SRAM-bandwidth
    # area follow iso-frequency wire/bank counts, never the clock.
    pe_unit = (1.0 - SIMD_PE_SHARE) + SIMD_PE_SHARE * simd_scale
    sram_banks = (sram_bandwidth / freq_scale) / base.sram.bandwidth_bytes_per_s
    noc_wires = (noc / freq_scale) / base.noc_bandwidth_bytes_per_s
    dram_lanes = (
        dram.bandwidth_bytes_per_s / base.dram.bandwidth_bytes_per_s
    )
    sram_area_scale = max(sram_cap_scale, sram_banks)
    area = base.die_area_mm2 * (
        AREA_SHARE_COMPUTE * pe_scale * pe_unit
        + AREA_SHARE_SRAM * sram_area_scale
        + AREA_SHARE_NOC * noc_wires
        + AREA_SHARE_IO * dram_lanes
        + AREA_SHARE_MISC
    )

    # Power: dynamic on-chip shares pay the f*V^2 factor; the DRAM
    # interface runs on its own clock and scales with lane count only.
    g = _frequency_power_factor(freq_scale)
    typical = base.typical_watts * (
        POWER_SHARE_COMPUTE * pe_scale * pe_unit * g
        + POWER_SHARE_SRAM * sram_banks * g
        + POWER_SHARE_NOC * noc_wires * g
        + POWER_SHARE_DRAM * dram_lanes
        + POWER_SHARE_MISC
    )
    tdp = typical * (base.tdp_watts / base.typical_watts)

    label = name or "{}-d{}".format(
        base.name,
        "-".join(
            f"{axis.split('_')[0]}{provided[axis]:g}"
            for axis in _AXIS_NAMES
            if axis in provided
        ),
    )
    return dataclasses.replace(
        base,
        name=label,
        frequency_hz=new_frequency,
        design_frequency_hz=(
            new_frequency
            if frequency_hz is not None
            else base.design_frequency_hz
        ),
        gemm=gemm,
        vector=vector,
        local_memory=local,
        sram=sram,
        dram=dram,
        host_link=base.host_link,
        noc_bandwidth_bytes_per_s=noc,
        num_pes=int(num_pes if num_pes is not None else base.num_pes),
        issue=issue,
        tdp_watts=tdp,
        typical_watts=typical,
        die_area_mm2=area,
    )


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One coordinate in the design space (axis *values*, not indices)."""

    num_pes: int
    frequency_hz: float
    sram_capacity_bytes: int
    dram_capacity_bytes: int
    dram_bandwidth_bytes_per_s: float
    gemm_to_simd: float
    noc_scale: float  # multiplier on the PE/frequency-derived NoC default

    def key(self) -> tuple:
        """Hashable, totally ordered identity for caches and tie-breaks."""
        return dataclasses.astuple(self)

    def describe(self) -> str:
        """Compact unique slug: PEs@GHz, SRAM MiB, LPDDR GiB@GB/s,
        GEMM:SIMD, NoC multiplier."""
        return (
            f"{self.num_pes}PE@{self.frequency_hz / GHZ:.2f} "
            f"{self.sram_capacity_bytes // MiB}M "
            f"{self.dram_capacity_bytes // GiB}G@"
            f"{self.dram_bandwidth_bytes_per_s / GB:.0f} "
            f"gs{self.gemm_to_simd:.0f} n{self.noc_scale:g}"
        )


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """A combinatorial grid over the co-design axes.

    Each field is a strictly ascending tuple of allowed values; a
    :class:`DesignPoint` picks one value per axis.  The space is the
    cartesian product — :meth:`size` counts it, :meth:`random_point`
    samples it, and :meth:`neighbor` makes the single-axis ladder moves
    the annealer uses.
    """

    num_pes: Tuple[int, ...]
    frequency_hz: Tuple[float, ...]
    sram_capacity_bytes: Tuple[int, ...]
    dram_capacity_bytes: Tuple[int, ...]
    dram_bandwidth_bytes_per_s: Tuple[float, ...]
    gemm_to_simd: Tuple[float, ...]
    noc_scale: Tuple[float, ...]

    def __post_init__(self) -> None:
        for axis, values in self.axes().items():
            if not values:
                raise ValueError(f"axis {axis} has no values")
            if any(v <= 0 for v in values):
                raise ValueError(f"axis {axis} has non-positive values")
            if list(values) != sorted(set(values)):
                raise ValueError(
                    f"axis {axis} must be strictly ascending: {values}"
                )

    def axes(self) -> Dict[str, Tuple]:
        """Axis name -> value ladder, in declaration order."""
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def size(self) -> int:
        """Number of grid points."""
        return int(np.prod([len(v) for v in self.axes().values()]))

    def point_at(self, indices: Tuple[int, ...]) -> DesignPoint:
        """The point at one index per axis (declaration order)."""
        values = {
            axis: ladder[i]
            for (axis, ladder), i in zip(self.axes().items(), indices)
        }
        return DesignPoint(**values)

    def indices_of(self, point: DesignPoint) -> Tuple[int, ...]:
        """Inverse of :meth:`point_at`; raises if off-grid."""
        out = []
        for axis, ladder in self.axes().items():
            value = getattr(point, axis)
            if value not in ladder:
                raise ValueError(f"{axis}={value} is not on the grid")
            out.append(ladder.index(value))
        return tuple(out)

    def random_point(self, rng: np.random.Generator) -> DesignPoint:
        """A uniformly sampled grid point (one rng draw per axis)."""
        return self.point_at(
            tuple(
                int(rng.integers(0, len(ladder)))
                for ladder in self.axes().values()
            )
        )

    def neighbor(
        self, point: DesignPoint, rng: np.random.Generator
    ) -> DesignPoint:
        """One annealing move: step one axis up or down its ladder.

        The axis is drawn uniformly; a step off either end reflects
        back, so every state keeps at least one outgoing move even at
        ladder corners.  Axes with a single value are never drawn.
        """
        axes = [
            (axis, ladder)
            for axis, ladder in self.axes().items()
            if len(ladder) > 1
        ]
        if not axes:
            return point
        axis, ladder = axes[int(rng.integers(0, len(axes)))]
        index = ladder.index(getattr(point, axis))
        step = 1 if rng.random() < 0.5 else -1
        moved = index + step
        if moved < 0 or moved >= len(ladder):
            moved = index - step
        return dataclasses.replace(point, **{axis: ladder[moved]})

    def to_chip(
        self, point: DesignPoint, base: Optional[ChipSpec] = None
    ) -> ChipSpec:
        """Materialize a grid point as a validated derived chip."""
        base = base or mtia2i_spec()
        noc = None
        if point.noc_scale != 1.0:
            pe_scale = point.num_pes / base.num_pes
            freq_scale = point.frequency_hz / base.frequency_hz
            noc = (
                base.noc_bandwidth_bytes_per_s
                * math.sqrt(pe_scale)
                * freq_scale
                * point.noc_scale
            )
        return derive_chip(
            base,
            num_pes=point.num_pes,
            frequency_hz=point.frequency_hz,
            sram_capacity_bytes=point.sram_capacity_bytes,
            dram_capacity_bytes=point.dram_capacity_bytes,
            dram_bandwidth_bytes_per_s=point.dram_bandwidth_bytes_per_s,
            gemm_to_simd=point.gemm_to_simd,
            noc_bandwidth_bytes_per_s=noc,
            name=f"MTIA3-cand[{point.describe()}]",
        )


def default_space() -> DesignSpace:
    """The full MTIA 3 search grid, anchored so the MTIA 2i coordinates
    are interior points of every axis.

    The frequency ladder extends the production DVFS ladder
    (:data:`repro.power.dvfs.DEFAULT_LADDER_HZ`) one step past the
    deployed 1.35 GHz overclock; LPDDR bandwidth rungs are channel
    counts at LPDDR5X per-channel rates.
    """
    return DesignSpace(
        num_pes=(36, 64, 100, 144),
        frequency_hz=DEFAULT_LADDER_HZ[2:] + (1.5 * GHZ,),
        sram_capacity_bytes=(128 * MiB, 256 * MiB, 384 * MiB, 512 * MiB),
        dram_capacity_bytes=(64 * GiB, 128 * GiB, 192 * GiB, 256 * GiB),
        dram_bandwidth_bytes_per_s=(
            153.6 * GB, 204.8 * GB, 256.0 * GB, 307.2 * GB,
        ),
        gemm_to_simd=(16.0, 32.0, 64.0),
        noc_scale=(0.75, 1.0, 1.5),
    )


def smoke_space() -> DesignSpace:
    """A trimmed grid for CI smoke runs: the same axes, 2-3 rungs each
    (still ~400 points — far more than the smoke search exact-evaluates,
    so the surrogate-guided reduction remains the point)."""
    return DesignSpace(
        num_pes=(36, 64, 144),
        frequency_hz=(1.1 * GHZ, 1.35 * GHZ, 1.5 * GHZ),
        sram_capacity_bytes=(128 * MiB, 256 * MiB, 512 * MiB),
        dram_capacity_bytes=(64 * GiB, 128 * GiB, 256 * GiB),
        dram_bandwidth_bytes_per_s=(204.8 * GB, 307.2 * GB),
        gemm_to_simd=(16.0, 32.0),
        noc_scale=(1.0, 1.5),
    )


__all__ = [
    "DesignPoint",
    "DesignSpace",
    "default_space",
    "derive_chip",
    "smoke_space",
]
