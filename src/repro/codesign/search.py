"""The seeded co-design search: annealing over the grid, halving rungs
up the fidelity ladder, exact evaluation for everything reported.

Structure (circuit_training's placement framing, cast onto chip axes):

1. **Train** the executor-latency surrogate on a seeded sample of
   derived chips exact-evaluated against the zoo (seconds, done once).
2. **Explore**: parallel simulated-annealing chains walk the grid with
   single-axis ladder moves.  Each chain maximizes a differently
   weighted scalarization of the three log-objectives — one chain per
   corner objective plus a balanced chain — so the population spreads
   across the front instead of piling onto one knee.  Chains score
   candidates at *surrogate* fidelity only, sharing one memoized
   evaluation cache.
3. **Halve**: the best survivors by Pareto rank are promoted to exact
   *device* fidelity (real executor + placement autotuner), then the
   best of those to *serving* fidelity (the seeded DES QPS-at-SLO
   scan) — the successive-halving pattern with fidelity as the rung
   resource.
4. **Report**: the Pareto front over serving-fidelity evaluations plus
   the MTIA 1 / MTIA 2i anchors (always exact-evaluated).  Every point
   on the returned front carries ``exact=True``; the surrogate only
   ever decided *which* candidates to pay exact evaluation for — the
   PR-9 verified pattern at subsystem scale.

Determinism: every random draw comes from ``default_rng([seed, k])``
streams, the evaluation caches key on grid coordinates, and the front
sort is canonical — a seeded rerun reproduces the result bit for bit
(pinned by test and golden).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.mtia import mtia1_spec, mtia2i_spec
from repro.arch.specs import ChipSpec
from repro.codesign.objectives import CandidateEval, CodesignObjective
from repro.codesign.pareto import dominates, pareto_front, select_by_rank
from repro.codesign.space import DesignPoint, DesignSpace, default_space
from repro.models.zoo import ZooModel
from repro.obs.metrics import active
from repro.surrogate.dataset import train_executor_surrogate
from repro.surrogate.model import TrainReport

_ZERO_SCALAR = -1e30  # scalarized score of an infeasible candidate


@dataclasses.dataclass(frozen=True)
class SearchConfig:
    """Knobs of the annealing + halving search."""

    seed: int = 0
    iterations: int = 60  # annealing steps per chain
    # One weight vector per chain over (perf, perf/TCO, perf/W) — the
    # three corner objectives plus the balanced chain.
    chain_weights: Tuple[Tuple[float, float, float], ...] = (
        (1.0, 0.0, 0.0),
        (0.0, 1.0, 0.0),
        (0.0, 0.0, 1.0),
        (1.0, 1.0, 1.0),
    )
    t_initial: float = 0.4
    t_final: float = 0.02
    device_rung_keep: int = 16  # candidates promoted to exact device eval
    serving_rung_keep: int = 8  # of those, promoted to the DES rung
    train_chips: int = 16  # seeded derived-chip sample for training

    def __post_init__(self) -> None:
        if self.iterations <= 0 or not self.chain_weights:
            raise ValueError("need chains and iterations")
        if not (0 < self.t_final <= self.t_initial):
            raise ValueError("need 0 < t_final <= t_initial")
        if self.serving_rung_keep > self.device_rung_keep:
            raise ValueError("serving rung cannot outnumber device rung")
        if min(self.device_rung_keep, self.serving_rung_keep) <= 0:
            raise ValueError("rung sizes must be positive")
        if self.train_chips < 2:
            raise ValueError("surrogate training needs at least 2 chips")


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Everything a codesign run produced."""

    front: Tuple[CandidateEval, ...]  # Pareto front, serving-exact only
    anchors: Tuple[CandidateEval, ...]  # MTIA 1, MTIA 2i (exact)
    proposal: Optional[CandidateEval]  # the "MTIA 3" pick off the front
    candidates_scored: int  # distinct grid points the chains scored
    device_evals: Tuple[CandidateEval, ...]
    serving_evals: Tuple[CandidateEval, ...]
    train_report: TrainReport
    mtia2_dominates_mtia1: bool
    space_size: int

    @property
    def exact_evals(self) -> int:
        """Exact candidate evaluations spent (both exact rungs, plus
        the two anchors)."""
        return len(self.device_evals) + len(self.serving_evals) + len(
            self.anchors
        )

    @property
    def eval_reduction(self) -> float:
        """Candidates scored per exact evaluation spent — the ratio the
        surrogate rung buys over exact-evaluating every visited point."""
        return self.candidates_scored / max(1, self.exact_evals)

    @property
    def all_front_exact(self) -> bool:
        """Every reported front point was exact-evaluated."""
        return all(e.exact for e in self.front)


def _scalarize(
    evaluation: CandidateEval, weights: Tuple[float, float, float]
) -> float:
    """Weighted sum of log-objectives (scale-free scalarization)."""
    total = 0.0
    for weight, value in zip(weights, evaluation.objectives()):
        if weight == 0.0:
            continue
        if value <= 0.0:
            return _ZERO_SCALAR
        total += weight * math.log(value)
    return total


def _temperatures(config: SearchConfig) -> np.ndarray:
    """Geometric cooling ladder, one temperature per iteration."""
    return np.geomspace(
        config.t_initial, config.t_final, num=config.iterations
    )


def _anneal_chain(
    space: DesignSpace,
    objective: CodesignObjective,
    cache: Dict[tuple, CandidateEval],
    weights: Tuple[float, float, float],
    chain_index: int,
    config: SearchConfig,
) -> None:
    """One annealing chain; discovered evaluations land in ``cache``."""
    rng = np.random.default_rng([config.seed, chain_index])

    def _score(point: DesignPoint) -> CandidateEval:
        key = point.key()
        if key not in cache:
            cache[key] = objective.evaluate(
                space.to_chip(point), point.describe(), "surrogate",
                point=point,
            )
        return cache[key]

    current = space.random_point(rng)
    current_scalar = _scalarize(_score(current), weights)
    for temperature in _temperatures(config):
        proposal = space.neighbor(current, rng)
        proposal_scalar = _scalarize(_score(proposal), weights)
        delta = proposal_scalar - current_scalar
        if delta >= 0 or rng.random() < math.exp(
            max(-700.0, delta / temperature)
        ):
            current, current_scalar = proposal, proposal_scalar


def _training_sample(
    space: DesignSpace, base: ChipSpec, config: SearchConfig
) -> List[ChipSpec]:
    """Seeded chip sample for surrogate training: distinct random grid
    points plus the base chip itself (so the reference region is always
    in-distribution)."""
    rng = np.random.default_rng([config.seed, 10_000])
    seen = set()
    chips: List[ChipSpec] = []
    while len(chips) < config.train_chips:
        point = space.random_point(rng)
        if point.key() in seen:
            continue
        seen.add(point.key())
        chips.append(space.to_chip(point, base))
    chips.append(base)
    return chips


def run_codesign_search(
    space: Optional[DesignSpace] = None,
    models: Optional[Sequence[ZooModel]] = None,
    config: SearchConfig = SearchConfig(),
    base_chip: Optional[ChipSpec] = None,
    duration_s: float = 6.0,
    registry=None,
) -> SearchResult:
    """Run the full search and return the exact-evaluated front."""
    space = space or default_space()
    base = base_chip or mtia2i_spec()
    objective = CodesignObjective(
        models=models,
        base_chip=base,
        duration_s=duration_s,
        seed=config.seed,
        registry=registry,
    )
    obs = active(registry)

    # Rung 0 substrate: train the executor surrogate on a seeded sample.
    train_models = [
        (objective.summaries[m.name], objective.stable_builder(m), m.batch)
        for m in objective.models
    ]
    chips = _training_sample(space, base, config)
    surrogate, train_report = train_executor_surrogate(
        chips, train_models, seed=config.seed
    )
    objective.surrogate = surrogate

    # Explore: annealing chains share one surrogate-fidelity cache.
    cache: Dict[tuple, CandidateEval] = {}
    for chain_index, weights in enumerate(config.chain_weights):
        _anneal_chain(space, objective, cache, weights, chain_index, config)
    scored = [e for e in cache.values() if e.feasible]

    # Halving rung 1: promote by Pareto rank to exact device fidelity.
    promoted = select_by_rank(scored, config.device_rung_keep)
    device_evals = tuple(
        objective.evaluate(
            space.to_chip(e.point), e.label, "device", point=e.point
        )
        for e in promoted
    )

    # Halving rung 2: the DES serving rung — everything here is exact.
    finalists = select_by_rank(
        [e for e in device_evals if e.feasible], config.serving_rung_keep
    )
    serving_evals = tuple(
        objective.evaluate(
            space.to_chip(e.point), e.label, "serving", point=e.point
        )
        for e in finalists
    )

    # Anchors: the real generations, exact-evaluated like any finalist.
    anchors = (
        objective.evaluate(mtia1_spec(), "MTIA 1", "serving"),
        objective.evaluate(mtia2i_spec(), "MTIA 2i", "serving"),
    )

    front = pareto_front(
        [e for e in (*serving_evals, *anchors) if e.feasible]
    )
    proposal = _pick_proposal(front, anchors)
    result = SearchResult(
        front=front,
        anchors=anchors,
        proposal=proposal,
        candidates_scored=len(cache),
        device_evals=device_evals,
        serving_evals=serving_evals,
        train_report=train_report,
        mtia2_dominates_mtia1=dominates(anchors[1], anchors[0]),
        space_size=space.size(),
    )
    if obs.enabled:
        obs.gauge("codesign.front_size").set(float(len(front)))
        obs.gauge("codesign.eval_reduction").set(result.eval_reduction)
    return result


def _pick_proposal(
    front: Sequence[CandidateEval], anchors: Sequence[CandidateEval]
) -> Optional[CandidateEval]:
    """The "MTIA 3" pick: the searched front point with the best
    balanced (geometric-mean) improvement over the MTIA 2i anchor."""
    reference = anchors[1].objectives()
    best: Optional[CandidateEval] = None
    best_gain = -math.inf
    anchor_labels = {a.label for a in anchors}
    for candidate in front:
        if candidate.label in anchor_labels:
            continue
        gains = [
            c / r if r > 0 else 0.0
            for c, r in zip(candidate.objectives(), reference)
        ]
        if any(g <= 0 for g in gains):
            continue
        gain = math.exp(sum(math.log(g) for g in gains) / len(gains))
        if gain > best_gain:
            best, best_gain = candidate, gain
    return best


__all__ = ["SearchConfig", "SearchResult", "run_codesign_search"]
