"""Table Batched Embedding (TBE) kernel model.

TBE gathers embedding rows by index from many tables and pools them
(sum, optionally weighted).  It is the sparse network of DLRM: irregular,
memory-latency sensitive, and — before MTIA 2i's indexed DMA_IN and
128-row SIMD accumulation — instruction-issue bound (paper section 3.3).

The gather's memory behaviour (how many rows hit in SRAM versus LPDDR)
is measured by the executor through the LLC simulation driven by a
synthetic index stream; this module supplies the engine-side costs and
the index-stream generator.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.arch.specs import ChipSpec
from repro.kernels.base import KernelEstimate
from repro.pe.riscv import tbe_issue
from repro.tensors.dtypes import DType


def estimate_tbe(
    total_rows: int,
    embed_dim: int,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
    weighted: bool = False,
    use_advanced_instructions: bool = True,
) -> KernelEstimate:
    """Engine-side estimate for a TBE op distributed over all PEs."""
    if total_rows < 0 or embed_dim <= 0:
        raise ValueError("rows must be >= 0 and dim positive")
    rows_per_pe = max(1, math.ceil(total_rows / chip.num_pes))
    issue = tbe_issue(rows_per_pe, chip.issue, use_advanced_instructions)
    # Accumulation on the SIMD Engine: one add per gathered element,
    # doubled for weighted pooling (multiply then add).
    elements_per_pe = rows_per_pe * embed_dim
    ops_per_element = 2.0 if weighted else 1.0
    simd_rate = chip.peak_vector_flops(dtype) / chip.num_pes
    compute_s = elements_per_pe * ops_per_element / simd_rate
    # Rows stage through Local Memory once.
    lm_time = elements_per_pe * dtype.bytes / chip.local_memory.bandwidth_bytes_per_s
    return KernelEstimate(
        compute_s=compute_s,
        issue_s=issue.issue_time_s,
        local_memory_s=lm_time,
        engine="simd",
        prefetch=chip.issue.indexed_dma,
    )


@dataclasses.dataclass(frozen=True)
class EmbeddingAccessPattern:
    """A synthetic index distribution for one embedding table.

    Production embedding accesses are heavily skewed (hot entities
    dominate), which is why MTIA 2i keeps 40-60% of sparse accesses in
    SRAM despite tables far exceeding SRAM capacity (paper section 4.2).
    We model the skew with a Zipf distribution, the standard synthetic
    stand-in for recommendation traffic.
    """

    num_rows: int
    zipf_exponent: float = 1.05

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError("table must have rows")
        if self.zipf_exponent <= 1.0:
            raise ValueError("zipf exponent must exceed 1 for a proper distribution")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` row indices, clamped into the table."""
        if count < 0:
            raise ValueError("count must be non-negative")
        raw = rng.zipf(self.zipf_exponent, size=count)
        return np.minimum(raw - 1, self.num_rows - 1).astype(np.int64)


def simulate_tbe_hit_rate(
    pattern: EmbeddingAccessPattern,
    row_bytes: int,
    cache,
    num_lookups: int,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Replay a synthetic index stream through an LLC instance and return
    the measured hit rate for embedding-row gathers."""
    rng = rng or np.random.default_rng(0)
    indices = pattern.sample(num_lookups, rng)
    before_hits, before_total = cache.stats.hits, cache.stats.accesses
    for index in indices:
        cache.access(("tbe", int(index)), write=False, size_bytes=row_bytes)
    hits = cache.stats.hits - before_hits
    total = cache.stats.accesses - before_total
    return hits / total if total else 0.0
