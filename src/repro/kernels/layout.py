"""Layout and data-movement kernels: transpose, reshape, concat, slice,
broadcast, cast, quantize/dequantize."""

from __future__ import annotations

import math

from repro.arch.specs import ChipSpec
from repro.kernels.base import KernelEstimate
from repro.pe.mlu import MluConfig, reshape_time, transpose_time
from repro.tensors.dtypes import DType


def _mlu_for(chip: ChipSpec) -> MluConfig:
    return MluConfig(frequency_hz=chip.frequency_hz)


def estimate_transpose(num_bytes: int, chip: ChipSpec) -> KernelEstimate:
    """2-D transpose on the MLUs, parallel across PEs."""
    per_pe = num_bytes / chip.num_pes
    return KernelEstimate(
        compute_s=transpose_time(int(per_pe), _mlu_for(chip)),
        issue_s=4 / chip.issue.instructions_per_s,
        engine="mlu",
    )


def estimate_copy(num_bytes: int, chip: ChipSpec) -> KernelEstimate:
    """Streaming copy (reshape/concat/slice/broadcast) on the MLUs."""
    per_pe = num_bytes / chip.num_pes
    return KernelEstimate(
        compute_s=reshape_time(int(per_pe), _mlu_for(chip)),
        issue_s=4 / chip.issue.instructions_per_s,
        engine="mlu",
    )


def estimate_cast(num_elements: int, chip: ChipSpec, dtype: DType) -> KernelEstimate:
    """Dtype conversion on the SIMD Engine."""
    per_pe = math.ceil(num_elements / chip.num_pes)
    rate = chip.peak_vector_flops(dtype) / chip.num_pes
    return KernelEstimate(
        compute_s=per_pe / rate,
        issue_s=max(1.0, per_pe / 1024) / chip.issue.instructions_per_s,
        engine="simd",
    )


def estimate_quantize(num_elements: int, rows: int, chip: ChipSpec) -> KernelEstimate:
    """Dynamic row-wise quantization: the Reduction Engine supplies the
    per-row min/max for free during the preceding matmul; the SIMD Engine
    computes scales and rescales each element (paper sections 3.3/4.4)."""
    if rows <= 0:
        raise ValueError("rows must be positive")
    per_pe = math.ceil(num_elements / chip.num_pes)
    rate = chip.peak_vector_flops(DType.FP16) / chip.num_pes
    # Per element: load, multiply by the reciprocal scale, round, clamp,
    # pack, store — plus the extra Local Memory pass the INT8 copy takes
    # and per-row scale derivation.  This is what erodes the DPE's 2x
    # INT8 advantage to the paper's ~1.6x net.
    compute = (per_pe * 8 + math.ceil(rows / chip.num_pes) * 4) / rate
    return KernelEstimate(
        compute_s=compute,
        issue_s=max(1.0, per_pe / 512) / chip.issue.instructions_per_s,
        engine="re+simd",
    )
