"""LayerNorm and Softmax kernel models (paper section 4.3).

LayerNorm takes three distinct passes — row-wise mean, row-wise variance,
element-wise normalize — balanced across the PE's two RISC-V cores and
the SIMD Engine.  Softmax takes five passes (max, subtract, exp, sum,
divide) and needed careful pipelining between the scalar/vector cores,
the DMA engine, and the SIMD Engine.  When the inner dimension is small,
the input must additionally be transposed to keep the SIMD lanes full.
"""

from __future__ import annotations

import math

from repro.arch.specs import ChipSpec
from repro.kernels.base import KernelEstimate
from repro.pe.command import PipelineStage, pipeline_time
from repro.pe.mlu import MluConfig, transpose_time
from repro.tensors.dtypes import DType

LAYERNORM_PASSES = 3
SOFTMAX_PASSES = 5

# Inner dimensions below this leave SIMD lanes idle without a transpose.
SMALL_INNER_DIM = 64


def _vector_rate_per_pe(chip: ChipSpec, dtype: DType) -> float:
    return chip.peak_vector_flops(dtype) / chip.num_pes


def estimate_layernorm(
    rows: int, cols: int, chip: ChipSpec, dtype: DType = DType.FP16
) -> KernelEstimate:
    """Three-pass LayerNorm pipelined across SIMD and the vector core."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    elements_per_pe = math.ceil(rows / chip.num_pes) * cols
    rate = _vector_rate_per_pe(chip, dtype)
    per_pass = elements_per_pe / rate
    # The three passes pipeline over row tiles; the mixture of
    # fixed-function commands and vector instructions lets two passes
    # overlap, modelled with the pipeline law over row tiles.
    tiles = max(1, math.ceil(rows / chip.num_pes / 8))
    stages = [
        PipelineStage("mean", per_pass / tiles),
        PipelineStage("variance", per_pass / tiles),
        PipelineStage("normalize", per_pass / tiles),
    ]
    compute = pipeline_time(stages, tiles)
    issue_instructions = tiles * LAYERNORM_PASSES * 4
    return KernelEstimate(
        compute_s=compute,
        issue_s=issue_instructions / chip.issue.instructions_per_s,
        local_memory_s=elements_per_pe
        * dtype.bytes
        * 2  # read + write
        / chip.local_memory.bandwidth_bytes_per_s,
        engine="simd+vector",
    )


def estimate_softmax(
    rows: int, cols: int, chip: ChipSpec, dtype: DType = DType.FP16
) -> KernelEstimate:
    """Five-pass Softmax, with an extra transpose when the inner dim is
    small (section 4.3)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    elements_per_pe = math.ceil(rows / chip.num_pes) * cols
    rate = _vector_rate_per_pe(chip, dtype)
    per_pass = elements_per_pe / rate
    tiles = max(1, math.ceil(rows / chip.num_pes / 8))
    stages = [
        PipelineStage(name, per_pass / tiles)
        for name in ("max", "subtract", "exp", "sum", "divide")
    ]
    compute = pipeline_time(stages, tiles)
    transpose_overhead = 0.0
    if cols < SMALL_INNER_DIM:
        mlu = MluConfig(frequency_hz=chip.frequency_hz)
        transpose_overhead = 2 * transpose_time(
            elements_per_pe * dtype.bytes, mlu
        )  # in and out
    issue_instructions = tiles * SOFTMAX_PASSES * 4
    return KernelEstimate(
        compute_s=compute + transpose_overhead,
        issue_s=issue_instructions / chip.issue.instructions_per_s,
        local_memory_s=elements_per_pe
        * dtype.bytes
        * 2
        / chip.local_memory.bandwidth_bytes_per_s,
        engine="simd+vector",
    )


def estimate_elementwise(
    num_elements: int,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
    ops_per_element: float = 1.0,
) -> KernelEstimate:
    """Generic elementwise kernel on the SIMD Engine."""
    if num_elements < 0:
        raise ValueError("element count must be non-negative")
    per_pe = math.ceil(num_elements / chip.num_pes)
    rate = _vector_rate_per_pe(chip, dtype)
    compute = per_pe * ops_per_element / rate
    return KernelEstimate(
        compute_s=compute,
        issue_s=max(1.0, per_pe / 1024) / chip.issue.instructions_per_s,
        local_memory_s=per_pe * dtype.bytes * 2 / chip.local_memory.bandwidth_bytes_per_s,
        engine="simd",
    )
