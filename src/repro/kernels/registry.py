"""Kernel dispatch: map an IR op to its engine-side cost estimate."""

from __future__ import annotations

from typing import Optional

from repro.arch.specs import ChipSpec
from repro.graph.ops import Op, OpType
from repro.kernels.attention import estimate_hstu_attention, estimate_mha
from repro.kernels.base import KernelEstimate
from repro.kernels.gemm import GemmVariant, estimate_gemm
from repro.kernels.layout import (
    estimate_cast,
    estimate_copy,
    estimate_quantize,
    estimate_transpose,
)
from repro.kernels.normalization import (
    estimate_elementwise,
    estimate_layernorm,
    estimate_softmax,
)
from repro.kernels.tbe import estimate_tbe

# Fused kernels pipeline their stages through Local Memory circular
# buffers; the composed compute time is below the sum of the parts.
FUSION_PIPELINE_FACTOR = 0.9


def estimate_op(
    op: Op,
    chip: ChipSpec,
    gemm_variant: Optional[GemmVariant] = None,
) -> KernelEstimate:
    """Engine-side kernel estimate for one op on one chip."""
    if op.op_type is OpType.FC:
        dtype = op.inputs[0].dtype
        variant = gemm_variant or GemmVariant()
        return estimate_gemm(
            op.attrs["gemm"], chip, dtype, variant, sparse=op.attr("sparse", False)
        )
    if op.op_type is OpType.TBE:
        return estimate_tbe(
            total_rows=op.attrs["total_rows"],
            embed_dim=op.attrs["embed_dim"],
            chip=chip,
            dtype=op.inputs[0].dtype,
            weighted=op.attr("weighted", False),
        )
    if op.op_type is OpType.LAYERNORM:
        return estimate_layernorm(op.attrs["rows"], op.attrs["cols"], chip, op.inputs[0].dtype)
    if op.op_type is OpType.SOFTMAX:
        return estimate_softmax(op.attrs["rows"], op.attrs["cols"], chip, op.inputs[0].dtype)
    if op.op_type is OpType.MHA:
        return estimate_mha(
            batch=op.attrs["batch"],
            heads=op.attrs["heads"],
            seq_len=op.attrs["seq_len"],
            head_dim=op.attrs["head_dim"],
            chip=chip,
            dtype=op.inputs[0].dtype,
        )
    if op.op_type is OpType.HSTU_ATTENTION:
        return estimate_hstu_attention(
            seq_lengths=op.attrs["seq_lengths"],
            heads=op.attrs["heads"],
            head_dim=op.attrs["head_dim"],
            chip=chip,
            dtype=op.inputs[0].dtype,
        )
    if op.op_type is OpType.TRANSPOSE:
        return estimate_transpose(op.inputs[0].num_bytes, chip)
    if op.op_type in (OpType.RESHAPE, OpType.CONCAT, OpType.SLICE, OpType.BROADCAST):
        return estimate_copy(op.output_bytes(), chip)
    if op.op_type is OpType.CAST:
        return estimate_cast(op.output.num_elements, chip, op.inputs[0].dtype)
    if op.op_type in (OpType.QUANTIZE, OpType.DEQUANTIZE):
        rows = op.inputs[0].shape[0]
        return estimate_quantize(op.inputs[0].num_elements, rows, chip)
    if op.op_type is OpType.ELEMENTWISE:
        return estimate_elementwise(
            op.output.num_elements,
            chip,
            op.inputs[0].dtype,
            ops_per_element=op.attr("ops_per_element", 1.0),
        )
    if op.op_type is OpType.INTERACTION:
        # Pairwise dots run on the DPE as a batched small GEMM.
        from repro.tensors.tensor import GemmShape

        batch = op.attrs["batch"]
        features = op.attrs["num_features"]
        dim = op.attrs["dim"]
        shape = GemmShape(m=batch * features, k=dim, n=features)
        return estimate_gemm(shape, chip, op.inputs[0].dtype, gemm_variant or GemmVariant())
    if op.op_type is OpType.FUSED:
        subs = [estimate_op(sub, chip, gemm_variant) for sub in op.attrs["sub_ops"]]
        return KernelEstimate(
            compute_s=sum(s.compute_s for s in subs) * FUSION_PIPELINE_FACTOR,
            issue_s=sum(s.issue_s for s in subs),
            local_memory_s=sum(s.local_memory_s for s in subs),
            weight_read_factor=max(s.weight_read_factor for s in subs),
            activation_read_factor=max(s.activation_read_factor for s in subs),
            broadcast_weights=any(s.broadcast_weights for s in subs),
            prefetch=all(s.prefetch for s in subs),
            engine="fused",
        )
    raise ValueError(f"no kernel model for op type {op.op_type}")
