"""Tiled GEMM kernel model with tunable variants.

The FC kernel generator (paper section 4.1) customizes kernel variants by
stationarity (input, weight, or output resident in the DPE while the
other operand streams), block sizes, DMA scheduling, and circular-buffer
usage.  This module models those choices' cost so the kernel tuner can
search them.

The GEMM is distributed over the PE grid: M splits across grid rows, N
across grid columns.  Weight tiles common to a column can be delivered
with hardware broadcast reads, and DMA prefetch can hide DRAM latency —
the two optimizations behind the paper's 45% latency improvement on
DRAM-bound shapes like 512 x 26592 x 2048 (section 4.2).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

from repro.arch.specs import ChipSpec
from repro.kernels.base import KernelEstimate
from repro.pe.dpe import DpeConfig, tile_utilization
from repro.pe.riscv import gemm_issue
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


class Stationarity:
    """Which operand stays resident in the DPE across tile passes."""

    INPUT = "input"
    WEIGHT = "weight"
    OUTPUT = "output"

    ALL = (INPUT, WEIGHT, OUTPUT)


@dataclasses.dataclass(frozen=True)
class GemmVariant:
    """One point in the FC kernel tuning space."""

    stationarity: str = Stationarity.WEIGHT
    block_m: int = 256
    block_n: int = 256
    block_k: int = 512
    broadcast_weights: bool = True
    prefetch: bool = True
    double_buffer: bool = True
    use_advanced_instructions: bool = True

    def __post_init__(self) -> None:
        if self.stationarity not in Stationarity.ALL:
            raise ValueError(f"unknown stationarity {self.stationarity!r}")
        if min(self.block_m, self.block_n, self.block_k) <= 0:
            raise ValueError("block sizes must be positive")

    def key(self) -> tuple:
        """Hashable identity for the performance database."""
        return dataclasses.astuple(self)


def default_variants() -> List[GemmVariant]:
    """The variant grid the kernel generator emits.

    The cross product — stationarity x block sizes x DMA scheduling x
    circular-buffer usage — is what made exhaustive FC tuning 'too
    time-consuming' (section 4.1): over a thousand variants per shape.
    """
    variants = []
    for stationarity in Stationarity.ALL:
        for block_m in (64, 128, 256, 512):
            for block_n in (64, 128, 256):
                for block_k in (128, 256, 512, 1024):
                    for prefetch in (False, True):
                        for double_buffer in (False, True):
                            for broadcast in (False, True):
                                variants.append(
                                    GemmVariant(
                                        stationarity=stationarity,
                                        block_m=block_m,
                                        block_n=block_n,
                                        block_k=block_k,
                                        prefetch=prefetch,
                                        double_buffer=double_buffer,
                                        broadcast_weights=broadcast,
                                    )
                                )
    return variants


def naive_variant() -> GemmVariant:
    """The out-of-the-box kernel before co-design optimization: no
    broadcast reads, no prefetch, no multi-context instructions."""
    return GemmVariant(
        stationarity=Stationarity.OUTPUT,
        block_m=64,
        block_n=64,
        broadcast_weights=False,
        prefetch=False,
        double_buffer=False,
        use_advanced_instructions=False,
    )


def _dpe_config_for(chip: ChipSpec) -> DpeConfig:
    # Infer the per-PE DPE rate from the chip's aggregate peak: supports
    # re-clocked chip specs (overclocking study) without re-deriving tile
    # geometry.
    fp16_peak = None
    for dtype in (DType.FP16, DType.BF16):
        if dtype in chip.gemm.peak_flops:
            fp16_peak = chip.gemm.peak_flops[dtype]
            break
    if fp16_peak is None:
        # INT8-only chips: derive from INT8 (twice the FP16 MACs).
        fp16_peak = chip.gemm.peak_flops[DType.INT8] / 2
    per_pe_macs_fp16 = fp16_peak / chip.num_pes / 2 / chip.frequency_hz
    # Tile geometry: rows x k_elements with tile_k_bytes = 32 (16 FP16).
    tiles = max(1, round(per_pe_macs_fp16 / (32 * 16)))
    return DpeConfig(
        mac_tiles=tiles,
        tile_rows=32,
        tile_k_bytes=32,
        tile_cols=32,
        frequency_hz=chip.frequency_hz,
        sparsity_supported=chip.gemm.sparsity_speedup > 1.0,
    )


def estimate_gemm(
    shape: GemmShape,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
    variant: GemmVariant = GemmVariant(),
    sparse: bool = False,
) -> KernelEstimate:
    """Engine-side estimate for a GEMM distributed over the PE grid."""
    grid_side = max(1, int(round(math.sqrt(chip.num_pes))))
    per_pe = GemmShape(
        m=max(1, math.ceil(shape.m / grid_side)),
        k=shape.k,
        n=max(1, math.ceil(shape.n / grid_side)),
    )
    config = _dpe_config_for(chip)
    util = tile_utilization(per_pe, config, dtype)
    pipeline_eff = 0.97 if variant.double_buffer else 0.85
    peak = config.peak_flops(dtype) * (2.0 if sparse and config.sparsity_supported else 1.0)
    compute_s = per_pe.flops / (peak * util * pipeline_eff)

    issue = gemm_issue(
        per_pe,
        chip.issue,
        dtype,
        tile_m=config.tile_rows,
        tile_n=config.tile_cols,
        tile_k_bytes=config.tile_k_bytes,
        use_advanced_instructions=variant.use_advanced_instructions,
    )

    # Operand re-read factors from the blocking scheme.
    m_blocks = max(1, math.ceil(shape.m / variant.block_m))
    n_blocks = max(1, math.ceil(shape.n / variant.block_n))
    if variant.stationarity == Stationarity.WEIGHT:
        weight_reads, act_reads = 1.0, 1.0
        # Weights resident; activations stream once per full pass but the
        # weight tensor must fit blocks; oversized weights force re-reads
        # of activations per n-block.
        act_reads = float(min(n_blocks, 4))
    elif variant.stationarity == Stationarity.INPUT:
        weight_reads, act_reads = float(min(m_blocks, 4)), 1.0
    else:  # OUTPUT stationary: both stream per k pass, bounded by blocking.
        weight_reads = float(min(m_blocks, 2))
        act_reads = float(min(n_blocks, 2))

    # Local Memory staging: every operand byte crosses LM once per read.
    lm_bytes_per_pe = (
        shape.activation_bytes(dtype) * act_reads / chip.num_pes
        + shape.weight_bytes(dtype) * weight_reads / grid_side / chip.num_pes * grid_side
        + shape.output_bytes(DType.FP32) / chip.num_pes
    )
    lm_time = lm_bytes_per_pe / chip.local_memory.bandwidth_bytes_per_s
    if variant.double_buffer:
        lm_time *= 0.5  # staging overlaps compute with double buffering

    return KernelEstimate(
        compute_s=compute_s,
        issue_s=issue.issue_time_s,
        local_memory_s=lm_time,
        weight_read_factor=weight_reads,
        activation_read_factor=act_reads,
        broadcast_weights=variant.broadcast_weights,
        prefetch=variant.prefetch,
        engine="dpe",
    )


def gemm_efficiency(
    shape: GemmShape,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
    variant: GemmVariant = GemmVariant(),
    memory_time_s: float = 0.0,
) -> float:
    """Achieved fraction of peak FLOPS for a GEMM.

    ``memory_time_s`` lets callers include a measured memory bottleneck;
    with 0 the figure is the compute/issue-side efficiency (the paper's
    '>92% of peak for 2K x 2K' claim is of this kind, with operands
    resident in SRAM).
    """
    est = estimate_gemm(shape, chip, dtype, variant)
    actual = max(est.engine_time_s, memory_time_s)
    ideal = shape.flops / chip.peak_gemm_flops(dtype)
    return ideal / actual if actual else 0.0
