"""Kernel cost models for every operator class."""

from repro.kernels.attention import estimate_hstu_attention, estimate_mha
from repro.kernels.base import KernelEstimate
from repro.kernels.gemm import (
    GemmVariant,
    Stationarity,
    default_variants,
    estimate_gemm,
    gemm_efficiency,
    naive_variant,
)
from repro.kernels.layout import (
    estimate_cast,
    estimate_copy,
    estimate_quantize,
    estimate_transpose,
)
from repro.kernels.normalization import (
    LAYERNORM_PASSES,
    SOFTMAX_PASSES,
    estimate_elementwise,
    estimate_layernorm,
    estimate_softmax,
)
from repro.kernels.registry import FUSION_PIPELINE_FACTOR, estimate_op
from repro.kernels.tbe import (
    EmbeddingAccessPattern,
    estimate_tbe,
    simulate_tbe_hit_rate,
)

__all__ = [
    "EmbeddingAccessPattern",
    "FUSION_PIPELINE_FACTOR",
    "GemmVariant",
    "KernelEstimate",
    "LAYERNORM_PASSES",
    "SOFTMAX_PASSES",
    "Stationarity",
    "default_variants",
    "estimate_cast",
    "estimate_copy",
    "estimate_elementwise",
    "estimate_gemm",
    "estimate_hstu_attention",
    "estimate_layernorm",
    "estimate_mha",
    "estimate_op",
    "estimate_quantize",
    "estimate_softmax",
    "estimate_tbe",
    "estimate_transpose",
    "gemm_efficiency",
    "naive_variant",
    "simulate_tbe_hit_rate",
]
