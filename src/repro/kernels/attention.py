"""Attention kernel models: standard MHA and HSTU ragged attention.

MHA decomposes into projection GEMMs plus the score/softmax/value
pipeline.  HSTU's fused ragged attention (paper section 4.3) adds a bias
computed from positional weights and timestamps: table index computation
vectorized on the RISC-V vector core, and a gather through the SIMD
Engine's lookup tables performed piecewise because the tables exceed LUT
memory.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.arch.specs import ChipSpec
from repro.kernels.base import KernelEstimate
from repro.kernels.gemm import estimate_gemm
from repro.kernels.normalization import estimate_softmax
from repro.pe.simd import SimdConfig, lut_gather_time, mtia2i_simd_config
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


def estimate_mha(
    batch: int,
    heads: int,
    seq_len: int,
    head_dim: int,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
) -> KernelEstimate:
    """One MHA block: QK^T, softmax, and PV as a pipelined kernel."""
    if min(batch, heads, seq_len, head_dim) <= 0:
        raise ValueError("MHA dimensions must be positive")
    # Scores: (batch*heads) GEMMs of seq x head_dim x seq; values likewise.
    score_shape = GemmShape(m=batch * heads * seq_len, k=head_dim, n=seq_len)
    value_shape = GemmShape(m=batch * heads * seq_len, k=seq_len, n=head_dim)
    scores = estimate_gemm(score_shape, chip, dtype)
    values = estimate_gemm(value_shape, chip, dtype)
    softmax_est = estimate_softmax(batch * heads * seq_len, seq_len, chip, dtype)
    # The three phases pipeline; the bottleneck phase dominates steady state.
    compute = max(
        scores.compute_s + values.compute_s, softmax_est.compute_s
    ) + min(scores.compute_s + values.compute_s, softmax_est.compute_s) * 0.2
    return KernelEstimate(
        compute_s=compute,
        issue_s=scores.issue_s + values.issue_s + softmax_est.issue_s,
        local_memory_s=scores.local_memory_s + values.local_memory_s,
        engine="dpe+simd",
    )


def estimate_hstu_attention(
    seq_lengths: Sequence[int],
    heads: int,
    head_dim: int,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
    bias_table_bytes: int = 512 * 1024,
) -> KernelEstimate:
    """HSTU fused ragged attention over per-user history lengths."""
    if not len(seq_lengths):
        raise ValueError("need at least one sequence")
    if min(heads, head_dim) <= 0:
        raise ValueError("heads and head_dim must be positive")
    simd = mtia2i_simd_config()
    simd = SimdConfig(lanes=simd.lanes, frequency_hz=chip.frequency_hz)
    total_scores = sum(int(s) * int(s) for s in seq_lengths)
    total_tokens = sum(int(s) for s in seq_lengths)
    # Attention GEMMs: ragged shapes fill the MAC tiles imperfectly; an
    # effective utilization models the jaggedness (specialization across
    # sequence-length buckets recovers most of it).
    gemm_flops = sum(2 * 2 * int(s) * int(s) * head_dim * heads for s in seq_lengths)
    ragged_utilization = 0.6
    compute_gemm = gemm_flops / (chip.peak_gemm_flops(dtype) * ragged_utilization)
    # Bias: index computation on the vector core plus piecewise LUT gather.
    per_pe_lookups = max(1, math.ceil(total_scores / chip.num_pes))
    bias_gather = lut_gather_time(per_pe_lookups, bias_table_bytes, simd, dtype)
    index_compute = per_pe_lookups * 2 / (chip.peak_vector_flops(dtype) / chip.num_pes)
    # Jagged softmax over scores.
    softmax_est = estimate_softmax(
        max(1, total_tokens), max(1, total_scores // max(1, total_tokens)), chip, dtype
    )
    compute = compute_gemm + max(bias_gather + index_compute, softmax_est.compute_s)
    issue_instructions = total_scores / chip.num_pes / 64 + per_pe_lookups / 32
    return KernelEstimate(
        compute_s=compute,
        issue_s=issue_instructions / chip.issue.instructions_per_s,
        local_memory_s=total_tokens
        * heads
        * head_dim
        * dtype.bytes
        * 2
        / chip.num_pes
        / chip.local_memory.bandwidth_bytes_per_s,
        engine="dpe+simd+vector",
    )
