"""Common kernel-estimate types.

A kernel model answers, for one op on one chip: how long do the compute
engines take, how long does instruction issue take, and how many times is
each operand read or written.  The executor combines these with the
memory hierarchy (which knows *where* each operand lives) to get the
op's latency.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class KernelEstimate:
    """Engine-side cost of one kernel invocation, chip-wide."""

    # Time the bottleneck compute engine is busy.
    compute_s: float = 0.0
    # Time the scalar cores need to issue the custom-instruction stream.
    issue_s: float = 0.0
    # Local Memory streaming time (operand staging inside PEs).
    local_memory_s: float = 0.0
    # How many times each operand class is transferred (tiling re-reads).
    weight_read_factor: float = 1.0
    activation_read_factor: float = 1.0
    output_write_factor: float = 1.0
    # When True, weight reads are broadcast to PE columns in hardware:
    # the NoC carries one copy instead of one per column (section 4.2).
    broadcast_weights: bool = False
    # When True, DMA prefetch hides DRAM latency behind compute; the
    # executor applies the higher streaming efficiency.
    prefetch: bool = True
    # Which engine dominates compute (for reports).
    engine: str = "dpe"

    def __post_init__(self) -> None:
        if min(self.compute_s, self.issue_s, self.local_memory_s) < 0:
            raise ValueError("kernel times must be non-negative")
        if min(
            self.weight_read_factor,
            self.activation_read_factor,
            self.output_write_factor,
        ) <= 0:
            raise ValueError("read/write factors must be positive")

    @property
    def engine_time_s(self) -> float:
        """Time the PE is busy regardless of memory: the slower of compute
        and instruction issue, plus any serialized Local Memory staging
        that pipelining cannot hide."""
        return max(self.compute_s, self.issue_s, self.local_memory_s)

    @property
    def issue_bound(self) -> bool:
        """Whether the scalar cores, not the engines, are the bottleneck."""
        return self.issue_s > self.compute_s
