"""Graceful degradation: priority admission and brownout serving.

Section 5's productionization stance is that a recommendation fleet
under correlated trouble should get *worse*, not *unavailable*: shed the
best-effort tail first, and serve what remains with cheaper model
variants whose quality cost is measured, not guessed.  This module is
that ladder.

* A :class:`BrownoutController` watches tier pressure (outstanding
  requests per up replica) on every routing attempt and moves through
  discrete brownout levels with hysteresis — each level raises the
  priority floor (:meth:`repro.cluster.admission.AdmissionConfig
  .priority_admissible`) and/or steps down the serving
  :class:`BrownoutRung`.
* Each rung is a real serving variant: full precision, FP16 dense math,
  the dynamic-INT8 path of :mod:`repro.quant.int8`, or a small
  early-stage distillation proxy from :mod:`repro.models.zoo`.  Its
  service-time multiplier scales simulated capacity; its quality cost is
  scored as normalized-entropy damage through the
  :mod:`repro.fleet.abtest` harness (:func:`measure_ladder_quality`), the
  same launch-gate methodology the paper used for the MTIA-vs-GPU
  comparison.

The controller is deliberately deterministic and seedless: levels are a
pure function of the observed pressure sequence, so chaos campaigns stay
bit-reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.admission import AdmissionConfig
from repro.fleet.abtest import SyntheticCtrModel, run_ab_test
from repro.quant.int8 import quantize_weights_static, quantized_matmul


@dataclasses.dataclass(frozen=True)
class BrownoutRung:
    """One step of the degradation ladder.

    ``service_multiplier`` scales replica service time (cheaper variants
    finish faster, adding capacity exactly when the tier needs it);
    ``priority_floor`` is the minimum request priority admitted while
    this rung is active (0 admits everything).
    """

    name: str
    service_multiplier: float = 1.0
    priority_floor: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rung needs a name")
        if not (0 < self.service_multiplier <= 1.0):
            raise ValueError("service multiplier must be in (0, 1]")
        if self.priority_floor < 0:
            raise ValueError("priority floor must be non-negative")


@dataclasses.dataclass(frozen=True)
class BrownoutConfig:
    """When to climb and descend the ladder.

    Pressure is outstanding requests per up replica.  The controller
    escalates one level each time pressure crosses
    ``enter_at + level * step`` and de-escalates below
    ``exit_at + level * step`` — the enter/exit gap is the hysteresis
    that keeps the ladder from flapping at a threshold.
    """

    rungs: Tuple[BrownoutRung, ...]
    enter_at: float = 8.0
    exit_at: float = 4.0
    step: float = 4.0

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("need at least one rung")
        if self.rungs[0].service_multiplier != 1.0 or self.rungs[0].priority_floor != 0:
            raise ValueError("rung 0 must be full service (no degradation)")
        if not (0 < self.exit_at < self.enter_at):
            raise ValueError("need 0 < exit_at < enter_at for hysteresis")
        if self.step <= 0:
            raise ValueError("level step must be positive")


class BrownoutController:
    """The mutable per-run ladder state the simulator consults.

    Duck-typed against the cluster simulator's ``brownout`` hook:
    ``on_route`` observes pressure and returns the current level,
    ``admit`` gates a request priority, ``rung`` names the active
    serving variant and its service-time multiplier.
    """

    def __init__(self, config: BrownoutConfig) -> None:
        self.config = config
        self.level = 0
        self.escalations = 0
        self.shed_below_floor = 0

    def on_route(self, now_s: float, outstanding: int, up_replicas: int) -> int:
        pressure = outstanding / max(up_replicas, 1)
        config = self.config
        top = len(config.rungs) - 1
        while (self.level < top
               and pressure >= config.enter_at + self.level * config.step):
            self.level += 1
            self.escalations += 1
        while (self.level > 0
               and pressure < config.exit_at + (self.level - 1) * config.step):
            self.level -= 1
        return self.level

    def admit(self, priority: int) -> bool:
        floor = self.config.rungs[self.level].priority_floor
        if AdmissionConfig.priority_admissible(priority, floor):
            return True
        self.shed_below_floor += 1
        return False

    def rung(self) -> Tuple[str, float]:
        rung = self.config.rungs[self.level]
        return rung.name, rung.service_multiplier


# ---------------------------------------------------------------------------
# The measured ladder: real serving variants and their quality cost
# ---------------------------------------------------------------------------


def _tiny_model_multiplier() -> float:
    """Service-time ratio of the early-stage distillation proxy.

    The deepest brownout rung swaps the late-stage ranker for the
    early-stage model (the fleet already serves it upstream of the
    funnel), so the speedup is the per-sample dense-FLOP ratio of the
    two zoo entries — derived, not asserted.
    """
    from repro.models.zoo import early_stage_model, late_stage_model

    late = late_stage_model()
    early = early_stage_model()
    late_per_sample = late.graph().total_flops() / late.batch
    early_per_sample = early.graph().total_flops() / early.batch
    ratio = early_per_sample / late_per_sample
    return float(min(max(ratio, 0.05), 1.0))


def default_ladder(tiny_multiplier: Optional[float] = None) -> BrownoutConfig:
    """The standard four-rung ladder the chaos scenarios use.

    full → FP16 dense math (~25% cheaper on MTIA's double-rate FP16
    engines) → dynamic INT8 FC layers (section 4.2's quantized path)
    → the early-stage distillation proxy, which also stops admitting
    best-effort (priority 0) traffic.
    """
    if tiny_multiplier is None:
        tiny_multiplier = _tiny_model_multiplier()
    return BrownoutConfig(
        rungs=(
            BrownoutRung("full", 1.0, 0),
            BrownoutRung("fp16", 0.75, 0),
            BrownoutRung("int8", 0.55, 0),
            BrownoutRung("tiny", tiny_multiplier, 1),
        )
    )


def rung_backends(
    model: SyntheticCtrModel,
) -> Dict[str, Callable[[np.ndarray], np.ndarray]]:
    """The serving backend behind each ladder rung.

    Every rung is a real numerical path, so its quality cost is a
    measurement: FP16 rounds the logits, INT8 runs the FC through
    :func:`repro.quant.int8.quantized_matmul`, and the tiny rung keeps
    only the strongest quarter of the features (a stand-in for the
    early-stage distillation).
    """

    def fp16(features: np.ndarray) -> np.ndarray:
        logits = (features @ model.true_weights + model.bias)
        logits = logits.astype(np.float16).astype(np.float64)
        return 1.0 / (1.0 + np.exp(-logits))

    quantized = quantize_weights_static(model.true_weights.reshape(-1, 1))

    def int8(features: np.ndarray) -> np.ndarray:
        logits = quantized_matmul(features, quantized).ravel() + model.bias
        return 1.0 / (1.0 + np.exp(-logits))

    keep = max(1, model.num_features // 4)
    strongest = np.argsort(-np.abs(model.true_weights))[:keep]
    tiny_weights = np.zeros_like(model.true_weights)
    tiny_weights[strongest] = model.true_weights[strongest]

    def tiny(features: np.ndarray) -> np.ndarray:
        logits = features @ tiny_weights + model.bias
        return 1.0 / (1.0 + np.exp(-logits))

    return {
        "full": model.exact_backend(),
        "fp16": fp16,
        "int8": int8,
        "tiny": tiny,
    }


def measure_ladder_quality(
    num_requests: int = 40_000,
    seed: int = 0,
) -> Dict[str, float]:
    """NE damage of each rung versus full service, via the A/B harness.

    Returns ``{rung_name: ne_delta}`` (positive = worse), measured by
    splitting synthetic traffic between the exact backend and each
    degraded variant exactly as the paper's launch gates did.  The full
    rung's delta is its own A/B arm-noise floor — the number the others
    should be read against.
    """
    model = SyntheticCtrModel(seed=seed)
    backends = rung_backends(model)
    control = backends["full"]
    deltas: Dict[str, float] = {}
    for name, backend in backends.items():
        result = run_ab_test(
            model, control, backend,
            num_requests=num_requests, seed=seed + 17,
        )
        deltas[name] = float(result.ne_delta)
    return deltas


def quality_cost_of_run(
    brownout_served: Sequence[Tuple[str, int]],
    ne_deltas: Dict[str, float],
) -> float:
    """Served-traffic-weighted NE damage of a browned-out run.

    ``brownout_served`` is the per-rung serve count from
    :class:`~repro.cluster.simulator.ClusterReport`; the result is the
    mean NE delta a served request suffered — the measured price of the
    availability the ladder bought.
    """
    total = sum(count for _, count in brownout_served)
    if total == 0:
        return 0.0
    cost = sum(
        ne_deltas.get(name, 0.0) * count for name, count in brownout_served
    )
    return cost / total


__all__ = [
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutRung",
    "default_ladder",
    "measure_ladder_quality",
    "quality_cost_of_run",
    "rung_backends",
]
