"""Fault-domain topology: replicas share hosts, racks, power, and ToRs.

The paper's section 5 incidents are *correlated*: a power-domain breaker
does not take out one replica, it takes out every server behind it; a
ToR switch failure partitions a whole rack; a staged firmware rollout
restarts the fleet in waves and a regressed build degrades every host it
reaches.  This module gives the chaos tier the grouping structure those
events need — a static mapping from replica ids to hosts, racks, power
domains, and ToR switches — plus builders that translate each incident
class into the :class:`~repro.cluster.simulator.Injection` schedules the
cluster simulator executes.

Each builder sources its physics from the tier that models it:

* :func:`power_domain_trip` trips only when the domain's projected draw
  actually breaches the provisioned budget from
  :func:`repro.reliability.power.stress_test_budget` — re-deriving the
  budget down (section 5.3) is exactly what makes this failure mode
  possible, so the coupling is the point;
* :func:`thermal_emergency` derives its throttle severity from the
  :mod:`repro.power.thermal` RC network: the slow-factor is the
  frequency cut needed to pull the steady-state junction temperature
  back to the throttle target;
* :func:`firmware_rollout` rides
  :class:`repro.reliability.firmware.RolloutPlan` restart waves, with an
  optional regression that degrades every host the bad build reaches
  until the rollback.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.arch.server import ServerSpec, mtia2i_server
from repro.cluster.simulator import Injection, injection_sort_key
from repro.power.thermal import (
    THROTTLE_TARGET_C,
    ThermalNetwork,
    mtia2i_thermal,
)
from repro.reliability.firmware import RolloutPlan, typical_rollout
from repro.reliability.power import stress_test_budget


@dataclasses.dataclass(frozen=True)
class FaultDomainTopology:
    """Static placement of replicas into nested failure domains.

    Replicas pack onto hosts, hosts into racks (one ToR switch per
    rack), racks into power domains — the standard datacenter hierarchy.
    Replica ids are assigned contiguously, matching the cluster
    simulator's initial spawn order, so topology groups can be handed
    straight to injection builders as target lists.
    """

    replicas: int
    replicas_per_host: int = 2
    hosts_per_rack: int = 4
    racks_per_power_domain: int = 2

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("need at least one replica")
        if self.replicas_per_host <= 0:
            raise ValueError("need at least one replica per host")
        if self.hosts_per_rack <= 0:
            raise ValueError("need at least one host per rack")
        if self.racks_per_power_domain <= 0:
            raise ValueError("need at least one rack per power domain")

    # -- sizes ---------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        return -(-self.replicas // self.replicas_per_host)

    @property
    def num_racks(self) -> int:
        return -(-self.num_hosts // self.hosts_per_rack)

    @property
    def num_power_domains(self) -> int:
        return -(-self.num_racks // self.racks_per_power_domain)

    # -- membership ----------------------------------------------------

    def host_of(self, replica_id: int) -> int:
        self._check(replica_id)
        return replica_id // self.replicas_per_host

    def rack_of(self, replica_id: int) -> int:
        return self.host_of(replica_id) // self.hosts_per_rack

    def power_domain_of(self, replica_id: int) -> int:
        return self.rack_of(replica_id) // self.racks_per_power_domain

    def tor_of(self, replica_id: int) -> int:
        """One ToR switch per rack: losing it partitions the rack."""
        return self.rack_of(replica_id)

    def replicas_on_host(self, host: int) -> Tuple[int, ...]:
        if not (0 <= host < self.num_hosts):
            raise ValueError(f"host {host} outside topology")
        return tuple(
            r for r in range(
                host * self.replicas_per_host,
                min((host + 1) * self.replicas_per_host, self.replicas),
            )
        )

    def replicas_in_rack(self, rack: int) -> Tuple[int, ...]:
        if not (0 <= rack < self.num_racks):
            raise ValueError(f"rack {rack} outside topology")
        return tuple(
            r for r in range(self.replicas) if self.rack_of(r) == rack
        )

    def replicas_in_power_domain(self, domain: int) -> Tuple[int, ...]:
        if not (0 <= domain < self.num_power_domains):
            raise ValueError(f"power domain {domain} outside topology")
        return tuple(
            r for r in range(self.replicas)
            if self.power_domain_of(r) == domain
        )

    def hosts_in_power_domain(self, domain: int) -> Tuple[int, ...]:
        return tuple(sorted({
            self.host_of(r) for r in self.replicas_in_power_domain(domain)
        }))

    def _check(self, replica_id: int) -> None:
        if not (0 <= replica_id < self.replicas):
            raise ValueError(f"replica {replica_id} outside topology")


# ---------------------------------------------------------------------------
# Correlated injection builders
# ---------------------------------------------------------------------------


def host_failure(
    topology: FaultDomainTopology,
    host: int,
    at_s: float,
    duration_s: float,
) -> List[Injection]:
    """One host dies (kernel panic, PSU, operator error) and reboots."""
    if duration_s <= 0:
        raise ValueError("outage duration must be positive")
    targets = topology.replicas_on_host(host)
    return [
        Injection(time_s=at_s, kind="down", targets=targets),
        Injection(time_s=at_s + duration_s, kind="up", targets=targets),
    ]


def rack_failure(
    topology: FaultDomainTopology,
    rack: int,
    at_s: float,
    duration_s: float,
) -> List[Injection]:
    """A whole rack loses power or its uplink: every host goes together."""
    if duration_s <= 0:
        raise ValueError("outage duration must be positive")
    targets = topology.replicas_in_rack(rack)
    return [
        Injection(time_s=at_s, kind="down", targets=targets),
        Injection(time_s=at_s + duration_s, kind="up", targets=targets),
    ]


def network_partition(
    topology: FaultDomainTopology,
    rack: int,
    at_s: float,
    duration_s: float,
) -> List[Injection]:
    """The rack's ToR switch fails: hosts are alive but unreachable.

    Unlike an outage, in-flight work on the far side keeps executing —
    its responses are simply undeliverable until the heal, which is what
    makes partitions nastier than crashes for request accounting.
    """
    if duration_s <= 0:
        raise ValueError("partition duration must be positive")
    targets = topology.replicas_in_rack(rack)
    return [
        Injection(time_s=at_s, kind="partition", targets=targets),
        Injection(time_s=at_s + duration_s, kind="heal", targets=targets),
    ]


def power_domain_trip(
    topology: FaultDomainTopology,
    domain: int,
    at_s: float,
    duration_s: float,
    demand_w_per_server: float,
    server: Optional[ServerSpec] = None,
    budget_w_per_server: Optional[float] = None,
) -> List[Injection]:
    """The domain breaker trips — but only on a genuine budget breach.

    Section 5.3's re-derived rack budgets run closer to the wire: the
    provisioned per-server budget (by default the pre-production
    :func:`~repro.reliability.power.stress_test_budget`, which the
    revision then undercuts) caps the domain, and a synchronized demand
    spike above it opens the breaker for everything behind it.  If the
    offered ``demand_w_per_server`` stays within budget, no injection is
    produced — the trip is sourced from the power model, not asserted.
    """
    if duration_s <= 0:
        raise ValueError("outage duration must be positive")
    if demand_w_per_server <= 0:
        raise ValueError("demand must be positive")
    if budget_w_per_server is None:
        budget_w_per_server = stress_test_budget(server or mtia2i_server())
    if demand_w_per_server <= budget_w_per_server:
        return []  # within budget: the breaker holds
    targets = topology.replicas_in_power_domain(domain)
    return [
        Injection(time_s=at_s, kind="down", targets=targets),
        Injection(time_s=at_s + duration_s, kind="up", targets=targets),
    ]


def thermal_slow_factor(
    power_w: float,
    network: Optional[ThermalNetwork] = None,
    target_c: float = THROTTLE_TARGET_C,
) -> float:
    """Service-time inflation implied by a thermal emergency.

    With the RC chain settled at ``power_w`` the junction sits at
    ``ambient + P * R_total``; if that exceeds the throttle target the
    governor must cut power (≈ frequency) by the ratio that brings the
    junction back to target, and service times stretch by the inverse.
    Returns 1.0 when the package never crosses the target.
    """
    if power_w <= 0:
        raise ValueError("power must be positive")
    network = network or mtia2i_thermal()
    junction_c = network.steady_junction_c(power_w)
    headroom_c = target_c - network.ambient_c
    if junction_c <= target_c or headroom_c <= 0:
        return 1.0
    # Junction rise above ambient is proportional to power; the required
    # power cut is rise/headroom, and throughput scales with power.
    rise_c = junction_c - network.ambient_c
    return rise_c / headroom_c


def thermal_emergency(
    topology: FaultDomainTopology,
    rack: int,
    at_s: float,
    duration_s: float,
    power_w: float = 120.0,
    network: Optional[ThermalNetwork] = None,
) -> List[Injection]:
    """A cooling failure in one rack: shared airflow heats every package.

    The slow-down magnitude comes from the package thermal model — see
    :func:`thermal_slow_factor` — so a power level the heatsink can
    actually reject produces no injection at all.
    """
    if duration_s <= 0:
        raise ValueError("emergency duration must be positive")
    factor = thermal_slow_factor(power_w, network=network)
    if factor <= 1.0:
        return []  # the package holds temperature: nothing to inject
    targets = topology.replicas_in_rack(rack)
    return [
        Injection(time_s=at_s, kind="slow", targets=targets,
                  magnitude=factor),
        Injection(time_s=at_s + duration_s, kind="slow_end", targets=targets),
    ]


def firmware_rollout(
    topology: FaultDomainTopology,
    at_s: float,
    restart_s: float = 2.0,
    wave_gap_s: float = 4.0,
    plan: Optional[RolloutPlan] = None,
    regression_slow: float = 1.0,
    rollback_at_s: Optional[float] = None,
) -> List[Injection]:
    """A staged firmware rollout restarting the fleet in waves.

    Wave sizes honor the plan's restart-safety concurrency cap
    (:meth:`~repro.reliability.firmware.RolloutPlan.restart_waves` over
    the host count); each wave's hosts go down for ``restart_s`` and
    come back ``wave_gap_s`` before the next wave starts.  Timescales
    are compressed from the plan's hours to simulation seconds — the
    *structure* (bounded concurrent restarts, serialized waves) is what
    the scenario exercises.

    With ``regression_slow > 1`` the build is bad: every host that took
    it serves that much slower after restart, until ``rollback_at_s``
    (the emergency-rollback moment) restores the old build — waves
    restarting after the rollback install the fixed build and carry no
    regression.
    """
    if restart_s <= 0 or wave_gap_s <= 0:
        raise ValueError("restart and wave gap must be positive")
    if regression_slow < 1.0:
        raise ValueError("a regression must not speed hosts up")
    plan = plan or typical_rollout()
    host_waves = plan.restart_waves(topology.num_hosts)
    injections: List[Injection] = []
    regressed: List[int] = []
    next_host = 0
    t = at_s
    for wave in host_waves:
        hosts = range(next_host, next_host + wave)
        next_host += wave
        targets: Tuple[int, ...] = tuple(
            r for host in hosts for r in topology.replicas_on_host(host)
        )
        injections.append(Injection(time_s=t, kind="down", targets=targets))
        injections.append(
            Injection(time_s=t + restart_s, kind="up", targets=targets)
        )
        bad_build = rollback_at_s is None or t < rollback_at_s
        if regression_slow > 1.0 and bad_build:
            injections.append(
                Injection(time_s=t + restart_s, kind="slow",
                          targets=targets, magnitude=regression_slow)
            )
            regressed.extend(targets)
        t += wave_gap_s
    if regressed and rollback_at_s is not None:
        injections.append(
            Injection(time_s=rollback_at_s, kind="slow_end",
                      targets=tuple(regressed))
        )
    return injections


def merge_schedules(*schedules: Sequence[Injection]) -> List[Injection]:
    """Combine injection schedules into one deterministically ordered list.

    Same-timestamp events — routine once multi-region schedules are
    merged — are tie-broken by
    :func:`~repro.cluster.simulator.injection_sort_key`: kind declaration
    order (``down`` before its paired ``up``, ``slow`` before
    ``slow_end``, ``partition`` before ``heal`` — a zero-duration event
    nets to recovered), then target tuple, then magnitude.  The key
    covers every ``Injection`` field, so it is a total order and the
    merge is independent of the order its arguments are given in:
    ``merge_schedules(a, b) == merge_schedules(b, a)`` always — the
    property that keeps multi-region schedules seed-stable.
    """
    merged = [injection for schedule in schedules for injection in schedule]
    merged.sort(key=injection_sort_key)
    return merged


__all__ = [
    "FaultDomainTopology",
    "firmware_rollout",
    "host_failure",
    "injection_sort_key",
    "merge_schedules",
    "network_partition",
    "power_domain_trip",
    "rack_failure",
    "thermal_emergency",
    "thermal_slow_factor",
]
