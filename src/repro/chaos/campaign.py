"""The chaos campaign runner: inject, measure, score, compare.

Runs each :class:`~repro.chaos.scenarios.ChaosScenario` through the
cluster simulator twice — defenses off (the tier exactly as the earlier
PRs built it) and defenses on (deadline propagation, retry budget,
backoff, circuit breakers, and the brownout ladder where the scenario
calls for it) — and scores both runs on the serving-fleet health
metrics that matter during an incident:

* **goodput** — requests served within the latency budget, as a
  fraction of offered load, tracked in fixed windows over the run;
* **time to recovery** — how long after the fault clears until windowed
  goodput is back above the recovery threshold;
* **SLO-breach duration** — total time the tier spent below threshold;
* **unavailability** — the fraction of offered requests that never got
  a timely answer (shed, timed out, or served too late);
* **quality cost** — for browned-out runs, the served-traffic-weighted
  NE damage from :func:`repro.chaos.brownout.measure_ladder_quality`.

The headline comparison is the ``retry_storm`` scenario: with defenses
off the storm is *metastable* — goodput stays collapsed long after the
outage that ignited it has cleared — and with defenses on the tier
recovers within seconds.  Both outcomes are pinned as ``sec5_chaos``
goldens in the benchmark suite.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.brownout import (
    BrownoutController,
    default_ladder,
    measure_ladder_quality,
    quality_cost_of_run,
)
from repro.chaos.defense import DefenseConfig, DefenseRuntime
from repro.chaos.domains import FaultDomainTopology
from repro.chaos.scenarios import ChaosScenario, standard_catalog
from repro.cluster.admission import AdmissionConfig
from repro.cluster.service import ServiceModel, default_service_model
from repro.cluster.simulator import ClusterConfig, ClusterReport, run_cluster
from repro.obs.metrics import MetricsRegistry, active
from repro.obs.tracing import TraceWriter
from repro.serving.workload import poisson_stream, with_priorities


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """The fleet and traffic every scenario runs against."""

    replicas: int = 12
    replicas_per_host: int = 2
    hosts_per_rack: int = 2
    racks_per_power_domain: int = 2
    policy: str = "po2"
    utilization: float = 0.75  # offered load / fleet capacity
    duration_s: float = 30.0
    seed: int = 0
    window_s: float = 2.0
    # A serve is "good" if its latency fits this budget (2x the serving
    # SLO: generous enough that a healthy tier scores ~1.0, tight enough
    # that storm-era stale serves score 0).
    goodput_latency_s: float = 0.2
    recovery_threshold: float = 0.95
    # Defended-run defense suite; deadline 0.3 s sits above the storm
    # client's 250 ms timeout so first sends are never dead on arrival.
    defense: DefenseConfig = dataclasses.field(
        default_factory=lambda: DefenseConfig.full(deadline_s=0.3)
    )
    # Priority mix for brownout scenarios (best-effort, normal, critical).
    priority_weights: Tuple[float, ...] = (0.3, 0.5, 0.2)

    def __post_init__(self) -> None:
        if not (0 < self.utilization < 1):
            raise ValueError("utilization must be in (0, 1)")
        if self.duration_s <= 0 or self.window_s <= 0:
            raise ValueError("duration and window must be positive")
        if not (0 < self.recovery_threshold <= 1):
            raise ValueError("recovery threshold must be in (0, 1]")
        if self.goodput_latency_s <= 0:
            raise ValueError("goodput latency budget must be positive")

    def topology(self) -> FaultDomainTopology:
        return FaultDomainTopology(
            replicas=self.replicas,
            replicas_per_host=self.replicas_per_host,
            hosts_per_rack=self.hosts_per_rack,
            racks_per_power_domain=self.racks_per_power_domain,
        )

    def offered_rate_per_s(self, service: ServiceModel) -> float:
        return self.utilization * self.replicas * service.capacity_per_replica()


def smoke_config() -> CampaignConfig:
    """A fast campaign for CI: smaller fleet, shorter run.

    One rack per power domain keeps the power-trip scenario a partial
    outage even at four hosts.
    """
    return CampaignConfig(
        replicas=8, duration_s=18.0, utilization=0.65,
        racks_per_power_domain=1,
    )


@dataclasses.dataclass(frozen=True)
class GoodputWindow:
    """One scoring window: offered arrivals versus timely serves."""

    start_s: float
    offered: int
    good: int

    @property
    def ratio(self) -> float:
        return self.good / self.offered if self.offered else 1.0


@dataclasses.dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario run, scored."""

    scenario: str
    defended: bool
    report: ClusterReport
    windows: Tuple[GoodputWindow, ...]
    fault_at_s: float
    fault_clear_s: float
    goodput: int  # serves within the latency budget, whole run
    post_clear_goodput_ratio: float
    time_to_recovery_s: float  # inf if the tier never recovers
    slo_breach_s: float
    unavailability: float
    quality_cost_ne: float = 0.0

    @property
    def recovered(self) -> bool:
        return math.isfinite(self.time_to_recovery_s)

    def scalars(self) -> Dict[str, float]:
        tag = "defended" if self.defended else "undefended"
        ttr = self.time_to_recovery_s
        return {
            f"{self.scenario}.{tag}.post_clear_goodput": (
                self.post_clear_goodput_ratio
            ),
            f"{self.scenario}.{tag}.time_to_recovery_s": (
                ttr if math.isfinite(ttr) else -1.0
            ),
            f"{self.scenario}.{tag}.slo_breach_s": self.slo_breach_s,
            f"{self.scenario}.{tag}.unavailability": self.unavailability,
        }

    def summary(self) -> str:
        tag = "defended" if self.defended else "undefended"
        ttr = (f"{self.time_to_recovery_s:.1f}s"
               if math.isfinite(self.time_to_recovery_s) else "never")
        return (
            f"{self.scenario:<12} {tag:<11} "
            f"goodput(post-clear)={self.post_clear_goodput_ratio:6.1%} "
            f"ttr={ttr:>6} breach={self.slo_breach_s:5.1f}s "
            f"unavail={self.unavailability:6.2%}"
            + (f" ne_cost={self.quality_cost_ne:+.4f}"
               if self.quality_cost_ne else "")
        )


def _score_windows(
    report: ClusterReport,
    arrivals_s: Sequence[float],
    config: CampaignConfig,
) -> Tuple[GoodputWindow, ...]:
    """Bucket arrivals and timely serves into fixed scoring windows.

    A serve is credited to the window of its *arrival*, so a window's
    ratio asks 'of the demand that landed here, how much got a timely
    answer?' — the question an availability SLO asks, immune to
    late-serve inflation.
    """
    horizon = max(arrivals_s) if arrivals_s else 0.0
    num_windows = max(1, int(math.ceil(horizon / config.window_s)))
    offered = [0] * num_windows
    good = [0] * num_windows
    for arrival in arrivals_s:
        offered[min(int(arrival / config.window_s), num_windows - 1)] += 1
    budget = config.goodput_latency_s
    for time_s, kind, index in report.event_log:
        if kind != "serve":
            continue
        arrival = arrivals_s[index]
        if time_s - arrival <= budget:
            good[min(int(arrival / config.window_s), num_windows - 1)] += 1
    return tuple(
        GoodputWindow(start_s=k * config.window_s,
                      offered=offered[k], good=good[k])
        for k in range(num_windows)
    )


def _score(
    scenario: ChaosScenario,
    defended: bool,
    report: ClusterReport,
    arrivals_s: Sequence[float],
    config: CampaignConfig,
    quality_cost_ne: float,
) -> ScenarioOutcome:
    windows = _score_windows(report, arrivals_s, config)
    scored = [w for w in windows if w.offered > 0]
    post_clear = [w for w in scored if w.start_s >= scenario.fault_clear_s]
    post_ratio = (
        sum(w.good for w in post_clear) / sum(w.offered for w in post_clear)
        if post_clear and sum(w.offered for w in post_clear) else 1.0
    )
    ttr = math.inf
    for window in post_clear:
        if window.ratio >= config.recovery_threshold:
            ttr = max(0.0, window.start_s - scenario.fault_clear_s)
            break
    breach = sum(
        config.window_s for w in scored
        if w.start_s >= scenario.fault_at_s
        and w.ratio < config.recovery_threshold
    )
    goodput = sum(w.good for w in windows)
    unavailability = (
        1.0 - goodput / report.offered if report.offered else 0.0
    )
    return ScenarioOutcome(
        scenario=scenario.name,
        defended=defended,
        report=report,
        windows=windows,
        fault_at_s=scenario.fault_at_s,
        fault_clear_s=scenario.fault_clear_s,
        goodput=goodput,
        post_clear_goodput_ratio=post_ratio,
        time_to_recovery_s=ttr,
        slo_breach_s=breach,
        unavailability=unavailability,
        quality_cost_ne=quality_cost_ne,
    )


def run_scenario(
    scenario: ChaosScenario,
    config: Optional[CampaignConfig] = None,
    defended: bool = False,
    service: Optional[ServiceModel] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[TraceWriter] = None,
    ne_deltas: Optional[Dict[str, float]] = None,
    engine: str = "fast",
) -> ScenarioOutcome:
    """Run one scenario once and score it.

    ``defended=False`` runs the tier exactly as the pre-chaos PRs built
    it (every hook off); ``defended=True`` arms the campaign's defense
    suite, and the brownout ladder too when the scenario asks for it.
    Passing ``ne_deltas`` (from
    :func:`~repro.chaos.brownout.measure_ladder_quality`) prices any
    browned-out serving in NE damage.
    """
    config = config or CampaignConfig()
    service = service or default_service_model()
    topology = config.topology()
    if topology.replicas != config.replicas:
        raise ValueError("topology and campaign replica counts must agree")
    rate = config.offered_rate_per_s(service)
    requests = poisson_stream(
        rate_per_s=rate, duration_s=config.duration_s,
        samples_per_request=64, seed=config.seed,
    )
    brownout = None
    if defended and scenario.use_brownout:
        requests = with_priorities(
            requests, config.priority_weights, seed=config.seed + 1
        )
        brownout = BrownoutController(default_ladder())
    cluster_config = ClusterConfig(
        replicas=config.replicas,
        num_hosts=topology.num_hosts,
        policy=config.policy,
        admission=AdmissionConfig(),
        seed=config.seed,
    )
    report = run_cluster(
        cluster_config, service, requests,
        registry=registry, tracer=tracer,
        defense=DefenseRuntime(config.defense) if defended else None,
        client=scenario.client,
        injections=scenario.injections(topology),
        brownout=brownout,
        engine=engine,
    )
    quality_cost = 0.0
    if brownout is not None and ne_deltas:
        quality_cost = quality_cost_of_run(report.brownout_served, ne_deltas)
    outcome = _score(
        scenario, defended, report,
        [r.arrival_s for r in requests], config, quality_cost,
    )
    obs = active(registry)
    if obs.enabled:
        tag = "defended" if defended else "undefended"
        for key, value in outcome.scalars().items():
            obs.gauge(f"chaos.{key}").set(value)
        obs.counter(f"chaos.{scenario.name}.{tag}.goodput").inc(
            outcome.goodput
        )
    return outcome


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Every scenario, defended and undefended, scored side by side."""

    config: CampaignConfig
    outcomes: Tuple[ScenarioOutcome, ...]

    def outcome(self, scenario: str, defended: bool) -> ScenarioOutcome:
        for candidate in self.outcomes:
            if candidate.scenario == scenario and candidate.defended == defended:
                return candidate
        raise KeyError(f"no outcome for {scenario!r} defended={defended}")

    @property
    def headline(self) -> Tuple[ScenarioOutcome, ScenarioOutcome]:
        """The retry storm, (undefended, defended)."""
        return (self.outcome("retry_storm", False),
                self.outcome("retry_storm", True))

    def scalars(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for outcome in self.outcomes:
            merged.update(outcome.scalars())
        return merged

    def summary(self) -> str:
        lines = [
            "chaos campaign: "
            f"{len({o.scenario for o in self.outcomes})} scenarios, "
            f"replicas={self.config.replicas} "
            f"util={self.config.utilization:.0%} "
            f"duration={self.config.duration_s:.0f}s",
        ]
        lines.extend(o.summary() for o in self.outcomes)
        storm_off, storm_on = self.headline
        verdict = (
            "metastable undefended"
            if not storm_off.recovered else "recovered undefended (!)"
        )
        lines.append(
            f"headline: retry storm {verdict}; defended recovers in "
            f"{storm_on.time_to_recovery_s:.1f}s"
            if storm_on.recovered else
            f"headline: retry storm {verdict}; defended did NOT recover (!)"
        )
        return "\n".join(lines)


def run_campaign(
    config: Optional[CampaignConfig] = None,
    scenarios: Optional[Sequence[ChaosScenario]] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[TraceWriter] = None,
    price_quality: bool = False,
) -> CampaignResult:
    """Run the catalog, defenses off then on, and collect the scores.

    ``price_quality=True`` additionally measures the brownout ladder's
    NE damage through the A/B harness and prices browned-out serving
    with it (skipped by default — it is the campaign's one non-trivial
    extra cost and only affects the ``quality_cost_ne`` column).
    """
    config = config or CampaignConfig()
    scenarios = tuple(scenarios) if scenarios is not None else standard_catalog()
    ne_deltas = measure_ladder_quality() if price_quality else None
    outcomes: List[ScenarioOutcome] = []
    for scenario in scenarios:
        for defended in (False, True):
            outcomes.append(run_scenario(
                scenario, config, defended=defended,
                registry=registry,
                tracer=tracer if defended else None,
                ne_deltas=ne_deltas,
            ))
    return CampaignResult(config=config, outcomes=tuple(outcomes))


__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "GoodputWindow",
    "ScenarioOutcome",
    "run_campaign",
    "run_scenario",
    "smoke_config",
]
