"""Overload defenses: deadlines, retry budgets, backoff, circuit breakers.

The four standard defenses against metastable retry storms, as pure
seedless state machines the cluster simulator consults (any randomness —
backoff jitter — comes from the simulator's own generator, preserving
the one-seed-one-run discipline):

* **deadline propagation** — every request carries an absolute deadline
  (arrival + budget); work past its deadline is dropped at the front
  door and at dequeue instead of burning a replica on an answer nobody
  is waiting for;
* **retry token bucket** — a tier-wide budget on retry traffic, so
  retries can never amplify into a majority of offered load;
* **exponential backoff with jitter** — retried work waits
  ``base * factor^attempt`` (capped), jittered to decorrelate clients;
* **per-replica circuit breakers** — closed → open → half-open: a
  replica that just failed is shielded from traffic for a cooldown, then
  probed with a bounded quota before taking full load again.

Everything here is off unless configured, and a ``DefenseRuntime`` built
from the empty :class:`DefenseConfig` is inert — the simulator treats it
exactly like ``defense=None``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class TokenBucket:
    """A deterministic time-based token bucket.

    Refill is computed from elapsed simulated time at each ``take``, so
    the bucket is a pure function of the call sequence — no wall clocks,
    no background threads.
    """

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1 token")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_s = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def take(self, now_s: float, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens at ``now_s`` if available."""
        if now_s < self._last_s:
            raise ValueError("token bucket time must not run backwards")
        self._tokens = min(
            self.burst, self._tokens + (now_s - self._last_s) * self.rate_per_s
        )
        self._last_s = now_s
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Per-replica circuit-breaker tuning."""

    failure_threshold: int = 1  # consecutive failures that open the breaker
    cooldown_s: float = 2.0  # open -> half-open delay
    probe_quota: int = 2  # dispatches admitted while half-open
    close_after_successes: int = 2  # half-open successes that close it

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown must be positive")
        if self.probe_quota < 1:
            raise ValueError("probe quota must be at least 1")
        if self.close_after_successes < 1:
            raise ValueError("close-after-successes must be at least 1")


class CircuitBreaker:
    """The closed → open → half-open state machine for one replica.

    * **closed** — traffic flows; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — no traffic at all until ``cooldown_s`` has elapsed
      since the trip, at which point the next ``allow`` transitions to
      half-open.
    * **half-open** — at most ``probe_quota`` dispatches are admitted
      (``on_dispatch`` accounts them); ``close_after_successes``
      successful completions close the breaker, any failure re-opens it
      and restarts the cooldown.
    """

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at_s = 0.0
        self._probes_dispatched = 0
        self._probe_successes = 0

    def _enter_half_open(self) -> None:
        self.state = BREAKER_HALF_OPEN
        self._probes_dispatched = 0
        self._probe_successes = 0

    def allow(self, now_s: float) -> bool:
        """Whether a dispatch to this replica is admissible at ``now_s``."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now_s - self._opened_at_s >= self.config.cooldown_s:
                self._enter_half_open()
            else:
                return False
        # Half-open: admit exactly the probe quota.
        return self._probes_dispatched < self.config.probe_quota

    def on_dispatch(self, now_s: float) -> None:
        """Account one admitted dispatch (probe bookkeeping)."""
        if self.state == BREAKER_HALF_OPEN:
            self._probes_dispatched += 1

    def record_success(self, now_s: float) -> None:
        """One request completed successfully on this replica."""
        if self.state == BREAKER_HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.close_after_successes:
                self.state = BREAKER_CLOSED
                self._consecutive_failures = 0
        elif self.state == BREAKER_CLOSED:
            self._consecutive_failures = 0

    def record_failure(self, now_s: float) -> None:
        """The replica failed (fault, injected outage, lost probe)."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_OPEN
            self._opened_at_s = now_s
            return
        self._consecutive_failures += 1
        if (self.state == BREAKER_CLOSED
                and self._consecutive_failures >= self.config.failure_threshold):
            self.state = BREAKER_OPEN
            self._opened_at_s = now_s


@dataclasses.dataclass(frozen=True)
class DefenseConfig:
    """Which defenses are armed, and how.  Everything defaults to off."""

    # Per-request latency budget; None disables deadline propagation.
    deadline_s: Optional[float] = None
    # Tier-wide retry budget; None disables the token bucket.
    retry_tokens_per_s: Optional[float] = None
    retry_token_burst: float = 10.0
    # Exponential backoff for retries; None disables (immediate retry).
    backoff_base_s: Optional[float] = None
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.5  # uniform +/- fraction of the delay
    # Per-replica circuit breakers; None disables.
    breaker: Optional[BreakerConfig] = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.retry_tokens_per_s is not None and self.retry_tokens_per_s <= 0:
            raise ValueError("retry token rate must be positive")
        if self.backoff_base_s is not None and self.backoff_base_s <= 0:
            raise ValueError("backoff base must be positive")
        if self.backoff_factor < 1:
            raise ValueError("backoff factor must be at least 1")
        if not (0 <= self.backoff_jitter < 1):
            raise ValueError("backoff jitter must be in [0, 1)")

    @classmethod
    def full(cls, deadline_s: float = 0.3) -> "DefenseConfig":
        """Every defense armed with production-shaped defaults."""
        return cls(
            deadline_s=deadline_s,
            retry_tokens_per_s=40.0,
            retry_token_burst=20.0,
            backoff_base_s=0.05,
            backoff_factor=2.0,
            backoff_max_s=1.0,
            backoff_jitter=0.5,
            breaker=BreakerConfig(),
        )

    @property
    def inert(self) -> bool:
        """True when no defense is armed at all."""
        return (self.deadline_s is None
                and self.retry_tokens_per_s is None
                and self.backoff_base_s is None
                and self.breaker is None)


class DefenseRuntime:
    """The per-run mutable state behind a :class:`DefenseConfig`.

    One instance per simulated run — breakers and token buckets are
    stateful, so sharing a runtime across runs breaks determinism.
    """

    def __init__(self, config: DefenseConfig) -> None:
        self.config = config
        self._bucket = (
            TokenBucket(config.retry_tokens_per_s, config.retry_token_burst)
            if config.retry_tokens_per_s is not None else None
        )
        self._breakers: Dict[int, CircuitBreaker] = {}
        # Tallies read by the campaign report.
        self.retries_denied = 0
        self.deadline_drops = 0
        self.breaker_rejections = 0

    @property
    def deadline_s(self) -> Optional[float]:
        return self.config.deadline_s

    def past_deadline(self, now_s: float, arrival_s: float) -> bool:
        """Deadline propagation: is this request already dead?"""
        if self.config.deadline_s is None:
            return False
        if now_s > arrival_s + self.config.deadline_s:
            self.deadline_drops += 1
            return True
        return False

    def take_retry_token(self, now_s: float) -> bool:
        """Whether the tier-wide retry budget admits another retry."""
        if self._bucket is None:
            return True
        if self._bucket.take(now_s):
            return True
        self.retries_denied += 1
        return False

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered exponential backoff for retry ``attempt`` (0-based).

        Jitter is drawn from the simulator's seeded generator, so runs
        stay bit-reproducible with defenses armed.
        """
        config = self.config
        if config.backoff_base_s is None:
            return 0.0
        delay = min(
            config.backoff_base_s * config.backoff_factor ** attempt,
            config.backoff_max_s,
        )
        if config.backoff_jitter > 0:
            delay *= 1.0 + config.backoff_jitter * float(rng.uniform(-1.0, 1.0))
        return delay

    def breaker(self, replica_id: int) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self._breakers.get(replica_id)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker)
            self._breakers[replica_id] = breaker
        return breaker

    def replica_allowed(self, replica_id: int, now_s: float) -> bool:
        """Circuit-breaker gate for routing candidates."""
        if self.config.breaker is None:
            return True
        if self.breaker(replica_id).allow(now_s):
            return True
        self.breaker_rejections += 1
        return False

    def on_dispatch(self, replica_id: int, now_s: float) -> None:
        if self.config.breaker is not None:
            self.breaker(replica_id).on_dispatch(now_s)

    def on_replica_success(self, replica_id: int, now_s: float) -> None:
        if self.config.breaker is not None:
            self.breaker(replica_id).record_success(now_s)

    def on_replica_failure(self, replica_id: int, now_s: float) -> None:
        if self.config.breaker is not None:
            self.breaker(replica_id).record_failure(now_s)


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
    "DefenseConfig",
    "DefenseRuntime",
    "TokenBucket",
]
