"""The chaos scenario catalog: section 5 incidents as injection schedules.

Each :class:`ChaosScenario` packages one incident class the paper's
productionization story survives — what fails, when, for how long, and
which client behaviour rides along — as a pure function of the fault
topology, so a scenario plus a seed fully determines a run.  The
catalog (:func:`standard_catalog`):

=====================  ====================================================
scenario               section 5 incident it reproduces
=====================  ====================================================
``single_host``        the baseline fault model: one host wedges (the
                       5.5 deadlock class) and reboots
``rack_loss``          a rack-level outage — every host behind one
                       failure domain goes together
``power_trip``         section 5.3's re-derived rack budgets running
                       close to the wire: a synchronized demand spike
                       breaches the domain budget and the breaker takes
                       the whole domain
``partition``          a ToR switch failure: the rack is alive but
                       unreachable, and in-flight responses are stuck
                       behind the partition
``retry_storm``        the metastable failure mode the overload
                       defenses exist for: a correlated outage plus
                       impatient clients re-sending uncompleted work
``thermal``            a cooling failure: the 5.4-style thermal model
                       says how hard the rack must throttle, and the
                       tier limps instead of dying
``firmware``           a 5.5-style staged rollout carrying a regressed
                       build: bounded restart waves, degraded hosts,
                       emergency rollback
=====================  ====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.chaos.domains import (
    FaultDomainTopology,
    firmware_rollout,
    host_failure,
    merge_schedules,
    network_partition,
    power_domain_trip,
    rack_failure,
    thermal_emergency,
)
from repro.arch.server import mtia2i_server
from repro.cluster.simulator import ClientRetryConfig, Injection
from repro.reliability.firmware import emergency_rollout
from repro.reliability.power import stress_test_budget


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One reproducible incident: injections + client behaviour + timing.

    ``fault_clear_s`` is when the injected trouble is over — recovery
    metrics (time-to-recovery, post-clear goodput) are measured from
    there.  ``build`` maps the campaign's fault topology to the
    injection schedule; ``client`` (if any) is the retry behaviour the
    scenario's clients exhibit; ``use_brownout`` arms the degradation
    ladder in defended runs.
    """

    name: str
    description: str
    paper_ref: str
    fault_at_s: float
    fault_clear_s: float
    build: Callable[[FaultDomainTopology], List[Injection]]
    client: Optional[ClientRetryConfig] = None
    use_brownout: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.fault_at_s <= self.fault_clear_s):
            raise ValueError("need 0 <= fault_at_s <= fault_clear_s")

    def injections(self, topology: FaultDomainTopology) -> List[Injection]:
        return self.build(topology)


# Shared timing: trouble starts after the tier warms up and clears with
# enough run left to observe (or fail to observe) recovery.
_FAULT_AT_S = 8.0

# The storm's clients: impatient (re-send after 250 ms) and persistent
# (no retry cap) — production front-end behaviour, and the load side of
# every metastable-failure story.
STORM_CLIENT = ClientRetryConfig(timeout_s=0.25, max_retries=None)


def _single_host(topology: FaultDomainTopology) -> List[Injection]:
    return host_failure(topology, host=0, at_s=_FAULT_AT_S, duration_s=4.0)


def _rack_loss(topology: FaultDomainTopology) -> List[Injection]:
    return rack_failure(topology, rack=0, at_s=_FAULT_AT_S, duration_s=5.0)


def _power_trip(topology: FaultDomainTopology) -> List[Injection]:
    # A synchronized demand spike 20% above the provisioned per-server
    # budget: the breach magnitude comes from the section 5.3 power
    # model, and the builder refuses to trip within budget.
    budget = stress_test_budget(mtia2i_server())
    return power_domain_trip(
        topology, domain=topology.num_power_domains - 1,
        at_s=_FAULT_AT_S, duration_s=6.0,
        demand_w_per_server=1.2 * budget,
        budget_w_per_server=budget,
    )


def _partition(topology: FaultDomainTopology) -> List[Injection]:
    return network_partition(
        topology, rack=1, at_s=_FAULT_AT_S, duration_s=5.0
    )


def _retry_storm(topology: FaultDomainTopology) -> List[Injection]:
    # A correlated three-host outage: enough lost capacity that queue
    # waits cross the client timeout, and the storm ignites.
    return merge_schedules(*(
        host_failure(topology, host=h, at_s=_FAULT_AT_S, duration_s=4.0)
        for h in range(min(3, topology.num_hosts))
    ))


def _thermal(topology: FaultDomainTopology) -> List[Injection]:
    # A cooling-zone failure spanning two racks: 150 W into the
    # hot-ambient MTIA package settles the junction ~50 C over the
    # throttle target, and every affected package roughly halves its
    # throughput together.
    racks = range(max(0, topology.num_racks - 2), topology.num_racks)
    return merge_schedules(*(
        thermal_emergency(
            topology, rack=rack,
            at_s=_FAULT_AT_S, duration_s=8.0, power_w=150.0,
        )
        for rack in racks
    ))


def _firmware(topology: FaultDomainTopology) -> List[Injection]:
    # An emergency-pace rollout (bounded concurrent restarts) carrying a
    # 1.6x regression; the rollback at t=15 means later waves install
    # the fixed build, and the last wave of a six-host fleet is back up
    # by t=19 — the scenario's clear point.
    return firmware_rollout(
        topology, at_s=_FAULT_AT_S,
        restart_s=1.0, wave_gap_s=2.0,
        plan=emergency_rollout(),
        regression_slow=1.6,
        rollback_at_s=15.0,
    )


def standard_catalog() -> Tuple[ChaosScenario, ...]:
    """The six incident classes plus the headline retry storm."""
    return (
        ChaosScenario(
            name="single_host",
            description="one host wedges and reboots",
            paper_ref="section 5.5 (deadlock-class host hangs)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=_FAULT_AT_S + 4.0,
            build=_single_host,
        ),
        ChaosScenario(
            name="rack_loss",
            description="a full rack outage",
            paper_ref="section 5 (correlated fault domains)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=_FAULT_AT_S + 5.0,
            build=_rack_loss,
        ),
        ChaosScenario(
            name="power_trip",
            description="a power-domain breaker opens on a budget breach",
            paper_ref="section 5.3 (re-derived rack power budgets)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=_FAULT_AT_S + 6.0,
            build=_power_trip,
            use_brownout=True,
        ),
        ChaosScenario(
            name="partition",
            description="a ToR failure partitions one rack",
            paper_ref="section 5 (network fault domains)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=_FAULT_AT_S + 5.0,
            build=_partition,
        ),
        ChaosScenario(
            name="retry_storm",
            description="correlated outage + impatient clients",
            paper_ref="section 5.5 (overload after correlated faults)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=_FAULT_AT_S + 4.0,
            build=_retry_storm,
            client=STORM_CLIENT,
        ),
        ChaosScenario(
            name="thermal",
            description="a cooling failure throttles a rack",
            paper_ref="section 5.4 (thermal management)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=_FAULT_AT_S + 8.0,
            build=_thermal,
            use_brownout=True,
        ),
        ChaosScenario(
            name="firmware",
            description="a staged rollout ships a regressed build",
            paper_ref="section 5.5 (firmware rollout machinery)",
            fault_at_s=_FAULT_AT_S, fault_clear_s=19.0,
            build=_firmware,
        ),
    )


def scenario_by_name(name: str) -> ChaosScenario:
    for scenario in standard_catalog():
        if scenario.name == name:
            return scenario
    names = tuple(s.name for s in standard_catalog())
    raise ValueError(f"unknown scenario {name!r}; choose one of {names}")


__all__ = [
    "STORM_CLIENT",
    "ChaosScenario",
    "scenario_by_name",
    "standard_catalog",
]
