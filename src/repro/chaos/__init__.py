"""Cross-tier fault injection and graceful degradation (section 5).

The chaos tier turns the paper's productionization incidents into
reproducible experiments against the cluster simulator: correlated
fault domains (racks, power domains, ToR switches) sourced from the
power/thermal/firmware models, the standard overload defenses against
metastable retry storms, a measured brownout ladder for degrading
quality before availability, and a scored scenario campaign with a
``python -m repro chaos`` entry point.

Everything plugs into :mod:`repro.cluster` through hooks that are off
by default — with the chaos tier unused, the cluster simulator's event
logs are byte-identical to the pre-chaos tree.
"""

from repro.chaos.brownout import (
    BrownoutConfig,
    BrownoutController,
    BrownoutRung,
    default_ladder,
    measure_ladder_quality,
    quality_cost_of_run,
    rung_backends,
)
from repro.chaos.campaign import (
    CampaignConfig,
    CampaignResult,
    GoodputWindow,
    ScenarioOutcome,
    run_campaign,
    run_scenario,
    smoke_config,
)
from repro.chaos.defense import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
    DefenseConfig,
    DefenseRuntime,
    TokenBucket,
)
from repro.chaos.domains import (
    FaultDomainTopology,
    firmware_rollout,
    host_failure,
    merge_schedules,
    network_partition,
    power_domain_trip,
    rack_failure,
    thermal_emergency,
    thermal_slow_factor,
)
from repro.chaos.scenarios import (
    STORM_CLIENT,
    ChaosScenario,
    scenario_by_name,
    standard_catalog,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerConfig",
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutRung",
    "CampaignConfig",
    "CampaignResult",
    "ChaosScenario",
    "CircuitBreaker",
    "DefenseConfig",
    "DefenseRuntime",
    "FaultDomainTopology",
    "GoodputWindow",
    "STORM_CLIENT",
    "ScenarioOutcome",
    "TokenBucket",
    "default_ladder",
    "firmware_rollout",
    "host_failure",
    "measure_ladder_quality",
    "merge_schedules",
    "network_partition",
    "power_domain_trip",
    "quality_cost_of_run",
    "rack_failure",
    "run_campaign",
    "run_scenario",
    "rung_backends",
    "scenario_by_name",
    "smoke_config",
    "standard_catalog",
    "thermal_emergency",
    "thermal_slow_factor",
]
