"""Model-freshness: real-time weight updates via eager mode (section 3.3).

The paper lists four reasons MTIA 2i supports PyTorch eager mode; the
fourth is that "it enables real-time weight updates, improving model
freshness."  Recommendation quality decays measurably as weights age
(new items/users appear continuously), so the path from trainer to
serving matters:

* **eager path** — updated tensors DMA straight into device memory while
  serving continues; freshness is bounded by transfer time;
* **graph-mode path** — a compiled-graph stack must re-publish: trace and
  compile the graph, validate it, snapshot weights, and swap serving
  instances — minutes, not seconds.
"""

from __future__ import annotations

import dataclasses

from repro.arch.specs import ChipSpec

# A republish on a static-graph stack: re-trace/compile, validate
# numerics, package the snapshot, and drain-swap serving instances.
GRAPH_RECOMPILE_S = 180.0
GRAPH_VALIDATION_S = 120.0
GRAPH_SWAP_S = 60.0


@dataclasses.dataclass(frozen=True)
class FreshnessReport:
    """Time from trainer weight push to updated serving, per path."""

    update_bytes: int
    eager_update_s: float
    graph_republish_s: float

    @property
    def speedup(self) -> float:
        """How much fresher eager serving is."""
        return self.graph_republish_s / self.eager_update_s if self.eager_update_s else 1.0


def weight_update_latency(
    update_bytes: int,
    chip: ChipSpec,
    compression_saved_fraction: float = 0.0,
) -> FreshnessReport:
    """Latency of shipping a weight delta to one serving device.

    The eager path streams the delta over PCIe (optionally through the
    GZIP engine) and swaps pointers between batches; the graph path pays
    the full republish pipeline regardless of delta size.
    """
    if update_bytes < 0:
        raise ValueError("update size must be non-negative")
    if not (0.0 <= compression_saved_fraction < 1.0):
        raise ValueError("saved fraction must be in [0, 1)")
    wire_bytes = update_bytes * (1.0 - compression_saved_fraction)
    transfer = chip.host_link.transfer_time(wire_bytes)
    # Pointer swap happens at a job boundary: one job-replace latency.
    eager = transfer + chip.eager.job_replace_s
    graph = GRAPH_RECOMPILE_S + GRAPH_VALIDATION_S + GRAPH_SWAP_S + transfer
    return FreshnessReport(
        update_bytes=update_bytes,
        eager_update_s=eager,
        graph_republish_s=graph,
    )


def freshness_quality_gain(
    update_interval_s: float, decay_per_hour: float = 0.002
) -> float:
    """Quality retained relative to perfectly fresh weights.

    A simple exponential-staleness model: prediction quality decays by
    ``decay_per_hour`` per hour of average weight age (half the update
    interval).  Used to translate update cadence into the quality terms
    product teams reason about.
    """
    if update_interval_s < 0:
        raise ValueError("interval must be non-negative")
    if not (0 <= decay_per_hour < 1):
        raise ValueError("decay must be a fraction")
    average_age_hours = update_interval_s / 2 / 3600.0
    return (1.0 - decay_per_hour) ** average_age_hours
