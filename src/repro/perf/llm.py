"""LLM prefill/decode feasibility model (paper sections 3.6 and 8).

MTIA 2i was designed before the LLM boom.  The paper evaluates Llama2-7B
(section 3.6) and Llama3-8B (section 8) and finds the same shape: the
compute-bound *prefill* phase meets the 600 ms time-to-first-token
requirement, but the memory-bound *decode* phase — which must stream the
entire weight set from LPDDR for every token — misses the 60 ms/token
latency target.  On HBM GPUs decode easily fits.

This is a first-principles transformer cost model: exact FLOP and byte
counts per phase from the architecture hyperparameters.
"""

from __future__ import annotations

import dataclasses

from repro.arch.specs import ChipSpec
from repro.tensors.dtypes import DType

# Serving requirements quoted in the paper.
TTFT_REQUIREMENT_S = 0.600
DECODE_REQUIREMENT_S = 0.060


@dataclasses.dataclass(frozen=True)
class LlmConfig:
    """Transformer architecture hyperparameters."""

    name: str
    num_layers: int
    hidden_dim: int
    num_heads: int
    num_kv_heads: int
    ffn_dim: int
    vocab_size: int
    dtype: DType = DType.FP16

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_dim // self.num_heads

    @property
    def num_params(self) -> int:
        """Approximate parameter count."""
        attn = self.num_layers * (
            self.hidden_dim * self.hidden_dim  # Q
            + 2 * self.hidden_dim * self.head_dim * self.num_kv_heads  # K, V
            + self.hidden_dim * self.hidden_dim  # O
        )
        ffn = self.num_layers * 3 * self.hidden_dim * self.ffn_dim  # gate/up/down
        embed = 2 * self.vocab_size * self.hidden_dim
        return attn + ffn + embed

    @property
    def weight_bytes(self) -> int:
        """Weight footprint at the serving dtype."""
        return self.num_params * self.dtype.bytes

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes appended per generated token."""
        return (
            2 * self.num_layers * self.num_kv_heads * self.head_dim * self.dtype.bytes
        )


def llama2_7b() -> LlmConfig:
    """Llama2-7B (MHA, 32 layers)."""
    return LlmConfig(
        name="Llama2-7B",
        num_layers=32,
        hidden_dim=4096,
        num_heads=32,
        num_kv_heads=32,
        ffn_dim=11008,
        vocab_size=32000,
    )


def llama3_8b() -> LlmConfig:
    """Llama3-8B (GQA with 8 KV heads, larger vocab)."""
    return LlmConfig(
        name="Llama3-8B",
        num_layers=32,
        hidden_dim=4096,
        num_heads=32,
        num_kv_heads=8,
        ffn_dim=14336,
        vocab_size=128256,
    )


def llama3_70b() -> LlmConfig:
    """Llama3-70B — far beyond MTIA 2i's capability per the paper."""
    return LlmConfig(
        name="Llama3-70B",
        num_layers=80,
        hidden_dim=8192,
        num_heads=64,
        num_kv_heads=8,
        ffn_dim=28672,
        vocab_size=128256,
    )


@dataclasses.dataclass(frozen=True)
class LlmPhaseReport:
    """Latency breakdown of one inference phase."""

    phase: str
    compute_s: float
    weight_stream_s: float
    kv_stream_s: float

    @property
    def latency_s(self) -> float:
        """Phase latency: compute overlaps weight streaming; the slower
        path dominates, KV traffic adds to the memory path."""
        return max(self.compute_s, self.weight_stream_s + self.kv_stream_s)

    @property
    def memory_bound(self) -> bool:
        """Whether the memory path dominates."""
        return self.weight_stream_s + self.kv_stream_s > self.compute_s


def prefill_report(
    config: LlmConfig, chip: ChipSpec, prompt_tokens: int = 2048,
    compute_efficiency: float = 0.6,
) -> LlmPhaseReport:
    """Prefill: process the whole prompt in one pass (compute-bound)."""
    if prompt_tokens <= 0:
        raise ValueError("prompt length must be positive")
    flops = 2.0 * config.num_params * prompt_tokens
    # Attention score/value FLOPs grow quadratically but stay minor at
    # these lengths; include them for honesty.
    attn_flops = (
        4.0 * config.num_layers * prompt_tokens * prompt_tokens * config.hidden_dim
    )
    peak = chip.peak_gemm_flops(config.dtype) * chip.sustained_gemm_fraction
    compute = (flops + attn_flops) / (peak * compute_efficiency)
    weight_stream = config.weight_bytes / chip.dram.bandwidth_bytes_per_s
    return LlmPhaseReport(
        phase="prefill",
        compute_s=compute,
        weight_stream_s=weight_stream,
        kv_stream_s=0.0,
    )


def decode_report(
    config: LlmConfig, chip: ChipSpec, context_tokens: int = 2048, batch: int = 1
) -> LlmPhaseReport:
    """Decode: one token per step — every weight byte streams from DRAM.

    A batch shares the weight stream but the per-token latency target
    still applies to each step.
    """
    if context_tokens < 0 or batch <= 0:
        raise ValueError("invalid decode parameters")
    flops = 2.0 * config.num_params * batch
    peak = chip.peak_gemm_flops(config.dtype) * chip.sustained_gemm_fraction
    compute = flops / (peak * 0.3)  # tiny GEMMs run far from peak
    # SRAM can pin only a sliver of the weights; the rest streams from
    # DRAM each step.
    resident = min(chip.sram.capacity_bytes * 0.8, config.weight_bytes)
    streamed = config.weight_bytes - resident
    weight_stream = streamed / chip.dram.bandwidth_bytes_per_s
    kv_stream = (
        batch * context_tokens * config.kv_bytes_per_token()
        / chip.dram.bandwidth_bytes_per_s
    )
    return LlmPhaseReport(
        phase="decode",
        compute_s=compute,
        weight_stream_s=weight_stream,
        kv_stream_s=kv_stream,
    )


@dataclasses.dataclass(frozen=True)
class LlmFeasibility:
    """The paper's verdict structure for one model on one chip."""

    model: str
    chip: str
    prefill_latency_s: float
    decode_latency_s: float
    prefill_meets_ttft: bool
    decode_meets_latency: bool

    @property
    def viable(self) -> bool:
        """Serving is viable only if both phases meet their targets."""
        return self.prefill_meets_ttft and self.decode_meets_latency


def evaluate_llm(
    config: LlmConfig, chip: ChipSpec, prompt_tokens: int = 2048
) -> LlmFeasibility:
    """Evaluate both phases against the paper's latency requirements."""
    prefill = prefill_report(config, chip, prompt_tokens)
    decode = decode_report(config, chip, context_tokens=prompt_tokens)
    return LlmFeasibility(
        model=config.name,
        chip=chip.name,
        prefill_latency_s=prefill.latency_s,
        decode_latency_s=decode.latency_s,
        prefill_meets_ttft=prefill.latency_s <= TTFT_REQUIREMENT_S,
        decode_meets_latency=decode.latency_s <= DECODE_REQUIREMENT_S,
    )
