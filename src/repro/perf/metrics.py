"""Model-level efficiency metrics built on execution reports."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.arch.server import ServerSpec, gpu_server, mtia2i_server
from repro.perf.executor import ExecutionReport
from repro.tco.model import GPU_COST, MTIA2I_COST, PlatformComparison, compare_platforms


@dataclasses.dataclass(frozen=True)
class ModelEfficiency:
    """Per-chip efficiency summary for one model on one platform."""

    model_name: str
    chip_name: str
    batch: int
    latency_s: float
    throughput_samples_per_s: float
    avg_power_w: float
    flops_per_sample: float

    @property
    def perf_per_watt(self) -> float:
        """Samples per second per watt of chip power."""
        return self.throughput_samples_per_s / self.avg_power_w if self.avg_power_w else 0.0


def efficiency_from_report(report: ExecutionReport) -> ModelEfficiency:
    """Summarize an execution report."""
    return ModelEfficiency(
        model_name=report.model_name,
        chip_name=report.chip_name,
        batch=report.batch,
        latency_s=report.latency_s,
        throughput_samples_per_s=report.throughput_samples_per_s,
        avg_power_w=report.avg_power_w,
        flops_per_sample=report.total_flops / report.batch if report.batch else 0.0,
    )


def compare_reports(
    mtia_report: ExecutionReport,
    gpu_report: ExecutionReport,
    mtia_accelerators_per_model: int = 1,
    gpu_accelerators_per_model: int = 1,
    mtia_srv: Optional[ServerSpec] = None,
    gpu_srv: Optional[ServerSpec] = None,
) -> PlatformComparison:
    """Server-level Perf/TCO and Perf/Watt comparison from two per-chip
    execution reports of the same model."""
    return compare_platforms(
        model_name=mtia_report.model_name,
        mtia_chip_throughput=mtia_report.throughput_samples_per_s,
        gpu_chip_throughput=gpu_report.throughput_samples_per_s,
        mtia_chip_power_w=mtia_report.avg_power_w,
        gpu_chip_power_w=gpu_report.avg_power_w,
        mtia_srv=mtia_srv or mtia2i_server(),
        gpu_srv=gpu_srv or gpu_server(),
        mtia_costs=MTIA2I_COST,
        gpu_costs=GPU_COST,
        mtia_accelerators_per_model=mtia_accelerators_per_model,
        gpu_accelerators_per_model=gpu_accelerators_per_model,
    )
