"""The graph executor: turns (model graph, chip) into latency, hit rates,
throughput, and energy.

This is the performance model's core loop.  For each op in the schedule:

1. the kernel model supplies engine-side times (compute, issue, Local
   Memory staging) and operand re-read factors;
2. the memory hierarchy routes every operand according to its placement,
   measuring LLC hits with a real cache simulation (embedding gathers
   replay a Zipf-skewed index stream);
3. the op's latency is the maximum of the engine time and each memory
   level's streaming time (engines and DMA pipeline against each other),
   plus the job-launch overhead;
4. energy integrates a utilization-scaled power model.

The same executor runs MTIA 1, MTIA 2i, and the GPU baseline — only the
chip spec and the placement policy differ, which is what makes the
cross-platform Perf/TCO comparisons apples-to-apples (section 5.6).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.arch.specs import ChipSpec
from repro.graph.graph import OpGraph
from repro.graph.ops import Op, OpType
from repro.kernels.base import KernelEstimate
from repro.kernels.gemm import GemmVariant
from repro.kernels.registry import estimate_op
from repro.memory.hierarchy import MemoryHierarchy, Placement, partition_for_activations
from repro.memory.scratch import plan_allocation
from repro.tensors.tensor import TensorKind

# Streaming efficiency of LPDDR/HBM with and without DMA prefetch hiding
# the access latency (calibrated so prefetch-optimized DRAM-bound GEMMs
# reach the paper's ">95% of DRAM bandwidth").
DRAM_EFFICIENCY_PREFETCH = 0.96
DRAM_EFFICIENCY_DEMAND = 0.62

# Fraction of the LLC partition effectively available to embedding-row
# caching; the rest churns with dense-weight and spilled-activation
# traffic.  Applied to Che's-approximation capacity for TBE gathers.
TBE_LLC_SHARE = 0.6


@dataclasses.dataclass
class OpProfile:
    """Measured cost breakdown of one op."""

    op_name: str
    op_type: str
    time_s: float
    compute_s: float
    issue_s: float
    dram_s: float
    sram_s: float
    noc_s: float
    host_s: float
    launch_s: float
    bottleneck: str
    dram_bytes: float
    sram_bytes: float
    flops: float


@dataclasses.dataclass
class ExecutionReport:
    """Everything measured from one model execution on one chip."""

    chip_name: str
    model_name: str
    batch: int
    op_profiles: List[OpProfile]
    dense_hit_rate: float
    sparse_hit_rate: float
    activation_buffer_bytes: int
    lls_bytes: int
    llc_bytes: int
    activations_in_lls: bool
    weight_bytes: int
    energy_j: float

    @property
    def latency_s(self) -> float:
        """End-to-end latency of one batch."""
        return sum(p.time_s for p in self.op_profiles)

    @property
    def throughput_samples_per_s(self) -> float:
        """Samples per second at this batch size."""
        return self.batch / self.latency_s if self.latency_s else 0.0

    @property
    def avg_power_w(self) -> float:
        """Average power over the batch."""
        return self.energy_j / self.latency_s if self.latency_s else 0.0

    @property
    def perf_per_watt(self) -> float:
        """Samples per second per watt."""
        return self.throughput_samples_per_s / self.avg_power_w if self.avg_power_w else 0.0

    @property
    def total_flops(self) -> float:
        """FLOPs executed for the batch."""
        return sum(p.flops for p in self.op_profiles)

    @property
    def achieved_flops_per_s(self) -> float:
        """Sustained FLOP/s over the batch."""
        return self.total_flops / self.latency_s if self.latency_s else 0.0

    def bottleneck_histogram(self) -> Dict[str, float]:
        """Share of latency attributed to each bottleneck."""
        histogram: Dict[str, float] = {}
        for profile in self.op_profiles:
            histogram[profile.bottleneck] = (
                histogram.get(profile.bottleneck, 0.0) + profile.time_s
            )
        total = self.latency_s or 1.0
        return {k: v / total for k, v in histogram.items()}


class Executor:
    """Runs op graphs against a chip model."""

    def __init__(
        self,
        chip: ChipSpec,
        gemm_variant: Optional[GemmVariant] = None,
        variant_selector: Optional[Callable[[Op], GemmVariant]] = None,
        zipf_exponent: float = 1.05,
        seed: int = 0,
        host_input_fraction: float = 1.0,
        temperature_c: Optional[float] = None,
    ) -> None:
        self.chip = chip
        self.gemm_variant = gemm_variant
        self.variant_selector = variant_selector
        self.zipf_exponent = zipf_exponent
        self.seed = seed
        self.host_input_fraction = host_input_fraction
        # Junction temperature for the leakage term of the energy model.
        # None evaluates leakage at the chip's reference temperature —
        # exactly the historical constant-idle behaviour.
        self.temperature_c = temperature_c

    # -- placement ---------------------------------------------------------

    def _build_hierarchy(self, graph: OpGraph) -> tuple:
        """Apply the section 4.1 placement policy and return the hierarchy
        plus whether the activation buffer landed in LLS.

        Policy, in order:

        1. size the LLS to hold the activation buffer (liveness-packed);
        2. if the dense FC weights exceed what the remaining LLC can keep
           resident, *pin* as many weight tensors as fit into spare SRAM
           granules — the hardware-cache path cannot hold a cyclically
           streamed working set, but pinned data never gets evicted
           (the same reason the paper pins activations);
        3. everything else: weights/tables cached in LLC over DRAM,
           inputs/outputs over the host link.
        """
        plan = plan_allocation(graph.activation_buffer_requests())
        activation_bytes = plan.peak_bytes
        partition = partition_for_activations(self.chip, activation_bytes)
        activations_in_lls = (
            partition.lls_bytes >= activation_bytes and partition.lls_bytes > 0
        )
        # Weight pinning: if dense weights overflow the LLC, convert spare
        # SRAM into pinned weight space, keeping a floor of LLC for
        # embedding and streaming traffic.
        pinned: set = set()
        if activations_in_lls:
            gran = self.chip.sram_partition_bytes
            min_llc = 2 * gran
            dense_weights = [
                t for t in graph.weights() if t.kind == TensorKind.WEIGHT
            ]
            dense_total = sum(t.num_bytes for t in dense_weights)
            default_llc = partition.llc_bytes
            if dense_total > default_llc * 0.8 and default_llc > min_llc:
                budget = self.chip.sram.capacity_bytes - partition.lls_bytes - min_llc
                used = 0
                for tensor in sorted(dense_weights, key=lambda t: t.num_bytes):
                    if used + tensor.num_bytes <= budget:
                        pinned.add(tensor.uid)
                        used += tensor.num_bytes
                if used:
                    from repro.memory.hierarchy import SramPartition

                    new_lls = _round_up_to(partition.lls_bytes + used, gran)
                    new_lls = min(new_lls, self.chip.sram.capacity_bytes - min_llc)
                    partition = SramPartition(
                        lls_bytes=new_lls,
                        llc_bytes=self.chip.sram.capacity_bytes - new_lls,
                        granularity_bytes=gran,
                    )
        hierarchy = MemoryHierarchy(self.chip, partition)
        target = Placement.LLS if activations_in_lls else Placement.LLC
        for op in graph.ops:
            for tensor in op.outputs:
                if tensor.kind == TensorKind.ACTIVATION:
                    hierarchy.place(tensor, target, reserve=False)
            for tensor in op.inputs:
                if tensor.kind == TensorKind.INPUT:
                    hierarchy.place(tensor, Placement.HOST)
                elif tensor.uid in pinned:
                    hierarchy.place(tensor, Placement.LLS, reserve=False)
                elif tensor.kind in (TensorKind.WEIGHT, TensorKind.EMBEDDING):
                    hierarchy.place(tensor, Placement.LLC)
        # Graph outputs return to the host.
        for tensor in graph.graph_outputs():
            hierarchy.place(tensor, Placement.HOST)
        return hierarchy, activation_bytes, activations_in_lls

    # -- execution -----------------------------------------------------------

    def run(self, graph: OpGraph, batch: int, warmup_runs: int = 1) -> ExecutionReport:
        """Execute the graph and report steady-state behaviour.

        ``warmup_runs`` graph passes prime the LLC first — production
        serving executes the same graph continuously, so steady-state hit
        rates (hot weights resident) are what matters, not cold-cache
        behaviour.  Pass 0 to measure a cold first batch.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        if warmup_runs < 0:
            raise ValueError("warmup_runs must be non-negative")
        graph.validate_schedule()
        hierarchy, activation_bytes, in_lls = self._build_hierarchy(graph)
        rng = np.random.default_rng(self.seed)
        for _ in range(warmup_runs):
            for op in graph.ops:
                estimate = self._estimate(op)
                self._op_traffic(op, hierarchy, estimate, rng)
        profiles: List[OpProfile] = []
        energy = 0.0
        sparse_hits = sparse_total = 0
        sim_hits = sim_samples = 0
        dense_hits_before = hierarchy.llc.stats.hits if hierarchy.llc else 0
        dense_total_before = hierarchy.llc.stats.accesses if hierarchy.llc else 0
        for op in graph.ops:
            estimate = self._estimate(op)
            traffic, tbe_stats = self._op_traffic(op, hierarchy, estimate, rng)
            if tbe_stats is not None:
                sparse_hits += tbe_stats["scaled_hits"]
                sparse_total += tbe_stats["total_rows"]
                sim_hits += tbe_stats["sim_hits"]
                sim_samples += tbe_stats["sim_samples"]
            profile = self._profile_op(op, estimate, traffic)
            profiles.append(profile)
            energy += self._op_energy(profile)
        if hierarchy.llc:
            dense_hits = hierarchy.llc.stats.hits - dense_hits_before
            dense_total = hierarchy.llc.stats.accesses - dense_total_before
        else:
            dense_hits = dense_total = 0
        # The dense LLC counters include the *simulated* TBE accesses;
        # subtract the simulation counts to report the dense-network hit
        # rate on its own.
        dense_hits -= sim_hits
        dense_total -= sim_samples
        return ExecutionReport(
            chip_name=self.chip.name,
            model_name=graph.name,
            batch=batch,
            op_profiles=profiles,
            dense_hit_rate=dense_hits / dense_total if dense_total > 0 else 1.0,
            sparse_hit_rate=sparse_hits / sparse_total if sparse_total > 0 else 0.0,
            activation_buffer_bytes=activation_bytes,
            lls_bytes=hierarchy.partition.lls_bytes,
            llc_bytes=hierarchy.partition.llc_bytes,
            activations_in_lls=in_lls,
            weight_bytes=graph.weight_bytes(),
            energy_j=energy,
        )

    def _estimate(self, op: Op) -> KernelEstimate:
        variant = None
        if self.variant_selector is not None and op.op_type is OpType.FC:
            variant = self.variant_selector(op)
        elif self.gemm_variant is not None:
            variant = self.gemm_variant
        return estimate_op(op, self.chip, gemm_variant=variant)

    def _op_traffic(self, op, hierarchy, estimate, rng):
        """Route the op's operands through the hierarchy; returns the
        accumulated traffic and, for TBE ops, (hits, total) row stats."""
        from repro.memory.hierarchy import Traffic

        traffic = Traffic()
        tbe_stats = None
        writebacks_before = (
            hierarchy.llc.stats.bytes_written_back if hierarchy.llc else 0
        )
        grid_side = max(1, int(round(math.sqrt(self.chip.num_pes))))
        if op.op_type is OpType.TBE:
            tables = [t for t in op.inputs if t.kind == TensorKind.EMBEDDING]
            if tables:
                gathered, tbe_stats = self._tbe_gather_traffic(op, tables, hierarchy, rng)
                traffic += gathered
        seen = set()
        for tensor in op.inputs:
            if tensor.uid in seen:
                continue
            seen.add(tensor.uid)
            if op.op_type is OpType.TBE and tensor.kind == TensorKind.EMBEDDING:
                continue  # handled above
            is_weight = tensor.kind in (TensorKind.WEIGHT, TensorKind.EMBEDDING)
            factor = (
                estimate.weight_read_factor if is_weight else estimate.activation_read_factor
            )
            moved = hierarchy.read(tensor)
            replication = 1.0
            if is_weight and not estimate.broadcast_weights:
                # Without hardware broadcast reads each PE column fetches
                # its own copy of the shared weight tile.
                replication = float(grid_side)
            scaled = _scale_traffic(moved, factor, noc_scale=factor * replication)
            # A host-resident operand crosses PCIe exactly once; tiling
            # re-reads are served from on-chip staging after that.
            scaled.host_bytes = moved.host_bytes
            traffic += scaled
        for tensor in op.outputs:
            moved = hierarchy.write(tensor)
            traffic += _scale_traffic(moved, estimate.output_write_factor)
        if hierarchy.llc:
            # Dirty LLC evictions (activations spilled from SRAM) write
            # back to DRAM — the cost the paper avoids by pinning the
            # activation buffer in LLS and hinting no-reuse tensors.
            traffic.dram_bytes += (
                hierarchy.llc.stats.bytes_written_back - writebacks_before
            )
        if self.host_input_fraction != 1.0:
            traffic.host_bytes *= self.host_input_fraction
        return traffic, tbe_stats

    def _tbe_gather_traffic(self, op, tables, hierarchy, rng):
        """Convert the Zipf-skewed row gather into byte traffic.

        The steady-state LLC hit rate comes from Che's characteristic-
        time approximation (:mod:`repro.memory.che`) — replaying enough
        accesses through the cache simulator to reach steady state for
        multi-gigabyte tables is infeasible, and Che's approximation is
        near-exact for independent-reference Zipf traffic.  The tables
        compete with dense-weight traffic for LLC capacity, modelled by
        the ``TBE_LLC_SHARE`` of the cache partition.
        """
        from repro.memory.che import tbe_llc_hit_rate
        from repro.memory.hierarchy import Traffic

        total_rows = max(1, op.attrs["total_rows"])
        num_tables = max(1, op.attrs["num_tables"])
        row_bytes = max(1, tables[0].shape[1] * tables[0].dtype.bytes)
        if hierarchy.llc is not None:
            hit_rate = tbe_llc_hit_rate(
                num_rows_per_table=tables[0].shape[0],
                num_tables=num_tables,
                row_bytes=row_bytes,
                llc_bytes_for_tbe=int(hierarchy.partition.llc_bytes * TBE_LLC_SHARE),
                block_bytes=hierarchy.block_bytes,
                zipf_exponent=self.zipf_exponent,
            )
        else:
            hit_rate = 0.0
        total_bytes = float(total_rows * row_bytes)
        traffic = Traffic(
            sram_bytes=total_bytes,  # every row passes through SRAM/fill
            dram_bytes=total_bytes * (1.0 - hit_rate),
            noc_bytes=total_bytes,
        )
        stats = {
            "scaled_hits": int(round(hit_rate * total_rows)),
            "total_rows": total_rows,
            "sim_hits": 0,
            "sim_samples": 0,
        }
        return traffic, stats

    def _profile_op(self, op, estimate, traffic) -> OpProfile:
        chip = self.chip
        compute_s = estimate.compute_s / chip.sustained_gemm_fraction
        dram_eff = DRAM_EFFICIENCY_PREFETCH if estimate.prefetch else DRAM_EFFICIENCY_DEMAND
        dram_s = traffic.dram_bytes / (chip.dram.bandwidth_bytes_per_s * dram_eff)
        sram_s = traffic.sram_bytes / chip.sram.bandwidth_bytes_per_s
        noc_s = traffic.noc_bytes / chip.noc_bandwidth_bytes_per_s
        host_s = traffic.host_bytes / chip.host_link.bandwidth_bytes_per_s
        launch_s = (
            chip.eager.job_replace_s
            if chip.eager.broadcast_work_queues
            else chip.eager.job_launch_s
        )
        times = {
            "compute": compute_s,
            "issue": estimate.issue_s,
            "local_memory": estimate.local_memory_s,
            "dram": dram_s,
            "sram": sram_s,
            "noc": noc_s,
            "host": host_s,
        }
        bottleneck = max(times, key=times.get)
        # Overlap model: the dominant component sets the floor; the rest
        # is hidden according to the chip's pipelining quality.  Issue and
        # Local Memory staging run concurrently with the engines by
        # construction, so only compute and the off-PE memory levels
        # participate in the exposed remainder.
        overlappable = (compute_s, dram_s, sram_s, noc_s, host_s)
        exposed = (1.0 - chip.overlap_factor) * (sum(overlappable) - max(overlappable))
        op_time = max(times.values()) + exposed + launch_s
        return OpProfile(
            op_name=op.name,
            op_type=op.op_type.value,
            time_s=op_time,
            compute_s=compute_s,
            issue_s=estimate.issue_s,
            dram_s=dram_s,
            sram_s=sram_s,
            noc_s=noc_s,
            host_s=host_s,
            launch_s=launch_s,
            bottleneck=bottleneck,
            dram_bytes=traffic.dram_bytes,
            sram_bytes=traffic.sram_bytes,
            flops=op.flops(),
        )

    def _op_energy(self, profile: OpProfile) -> float:
        chip = self.chip
        leakage = chip.leakage_power_w(self.temperature_c)
        dynamic = chip.typical_watts * (1.0 - chip.idle_power_fraction)
        busy = profile.compute_s / profile.time_s if profile.time_s else 0.0
        busy = min(1.0, busy)
        return profile.time_s * (leakage + dynamic * busy)


def _round_up_to(value: int, granule: int) -> int:
    return (value + granule - 1) // granule * granule


def _scale_traffic(traffic, factor: float, noc_scale: Optional[float] = None):
    from repro.memory.hierarchy import Traffic

    return Traffic(
        local_memory_bytes=traffic.local_memory_bytes * factor,
        sram_bytes=traffic.sram_bytes * factor,
        dram_bytes=traffic.dram_bytes * factor,
        host_bytes=traffic.host_bytes * factor,
        noc_bytes=traffic.noc_bytes * (noc_scale if noc_scale is not None else factor),
    )
