"""Execution-trace export in Chrome trace-event format.

Turns an :class:`ExecutionReport` into a ``chrome://tracing`` /
Perfetto-compatible JSON timeline: one lane for the dominant engine of
each op, with the per-level memory times attached as arguments.  This is
the profiling view performance engineers use to see where a model's
batch time goes — the same workflow the paper's co-design loop ran on
real hardware traces.

The document itself is assembled by the unified writer in
:mod:`repro.obs.tracing` (shared with the fleet-resilience timeline);
``trace_metadata`` and ``write_trace_json`` are re-exported from there
for backwards compatibility.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.tracing import TraceWriter, trace_metadata, write_trace_json
from repro.perf.executor import ExecutionReport

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "summarize_trace",
    "trace_metadata",
    "write_trace_json",
]

# Lane assignment: group ops by their bottleneck resource.
_LANES = {
    "compute": 1,
    "issue": 2,
    "local_memory": 3,
    "sram": 4,
    "dram": 5,
    "noc": 6,
    "host": 7,
}


def to_chrome_trace(report: ExecutionReport) -> Dict:
    """Build a Chrome trace-event JSON object from a report.

    Ops are laid out back-to-back on the wall-clock track (the executor's
    schedule is sequential at op granularity); each event carries the
    cost breakdown so hovering shows why the op took that long.
    """
    writer = TraceWriter(f"{report.chip_name}: {report.model_name}")
    for label, tid in _LANES.items():
        writer.lane(f"bottleneck: {label}", tid=tid)
    cursor_us = 0.0
    for index, profile in enumerate(report.op_profiles):
        duration_us = profile.time_s * 1e6
        writer.complete(
            name=profile.op_name,
            cat=profile.op_type,
            ts=round(cursor_us, 3),
            dur=round(duration_us, 3),
            tid=_LANES.get(profile.bottleneck, 0),
            args={
                "bottleneck": profile.bottleneck,
                "compute_us": round(profile.compute_s * 1e6, 3),
                "issue_us": round(profile.issue_s * 1e6, 3),
                "dram_us": round(profile.dram_s * 1e6, 3),
                "sram_us": round(profile.sram_s * 1e6, 3),
                "noc_us": round(profile.noc_s * 1e6, 3),
                "host_us": round(profile.host_s * 1e6, 3),
                "launch_us": round(profile.launch_s * 1e6, 3),
                "dram_bytes": int(profile.dram_bytes),
                "flops": profile.flops,
                "schedule_index": index,
            },
        )
        cursor_us += duration_us
    return writer.document(
        other_data={
            "chip": report.chip_name,
            "model": report.model_name,
            "batch": report.batch,
            "latency_us": round(report.latency_s * 1e6, 3),
            "throughput_samples_per_s": round(report.throughput_samples_per_s, 1),
            "dense_hit_rate": round(report.dense_hit_rate, 4),
            "sparse_hit_rate": round(report.sparse_hit_rate, 4),
        },
    )


def write_chrome_trace(report: ExecutionReport, path: str) -> None:
    """Write the trace JSON to ``path`` (open it in Perfetto or
    chrome://tracing)."""
    write_trace_json(to_chrome_trace(report), path)


def summarize_trace(report: ExecutionReport, top: int = 5) -> str:
    """A text digest: total time, bottleneck shares, and the costliest ops."""
    lines = [
        f"{report.model_name} on {report.chip_name}: "
        f"{report.latency_s * 1e3:.3f} ms/batch "
        f"({report.throughput_samples_per_s:,.0f} samples/s)",
        "bottleneck shares: "
        + ", ".join(
            f"{name}={share:.0%}"
            for name, share in sorted(
                report.bottleneck_histogram().items(), key=lambda kv: -kv[1]
            )
        ),
        f"top {top} ops by time:",
    ]
    ranked = sorted(report.op_profiles, key=lambda p: -p.time_s)[:top]
    for profile in ranked:
        lines.append(
            f"  {profile.op_name:32} {profile.time_s * 1e6:10.1f} us "
            f"[{profile.bottleneck}]"
        )
    return "\n".join(lines)
