"""Roofline analysis utilities.

The roofline model bounds attainable throughput by
``min(peak_flops, arithmetic_intensity * bandwidth)``.  MTIA 2i's
unconventional memory hierarchy gives it *two* memory rooflines — a high
SRAM roof (2.7 TB/s) and a low LPDDR roof (204.8 GB/s, a 13x gap) — which
is the quantitative heart of section 3.6: models whose working sets fit
in SRAM ride the high roof; ones that spill fall off a cliff.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.arch.specs import ChipSpec
from repro.tensors.dtypes import DType


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the roofline."""

    name: str
    arithmetic_intensity: float  # FLOPs per byte
    attainable_flops: float
    bound: str  # "compute" | "sram" | "dram"


def attainable(
    intensity_flops_per_byte: float,
    peak_flops: float,
    bandwidth_bytes_per_s: float,
) -> float:
    """Classic roofline: min(peak, intensity * bandwidth)."""
    if intensity_flops_per_byte < 0:
        raise ValueError("intensity must be non-negative")
    return min(peak_flops, intensity_flops_per_byte * bandwidth_bytes_per_s)


def ridge_point(peak_flops: float, bandwidth_bytes_per_s: float) -> float:
    """Intensity where the memory roof meets the compute roof."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    return peak_flops / bandwidth_bytes_per_s


def dual_roofline(
    chip: ChipSpec,
    intensity_flops_per_byte: float,
    sram_resident_fraction: float,
    dtype: DType = DType.FP16,
) -> RooflinePoint:
    """Attainable FLOPS when a fraction of traffic is served from SRAM.

    ``sram_resident_fraction`` is the byte fraction hitting SRAM; the
    rest streams from DRAM.  The effective bandwidth is the harmonic
    combination (both transfers happen for the same FLOPs).
    """
    if not (0.0 <= sram_resident_fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    peak = chip.peak_gemm_flops(dtype)
    sram_bw = chip.sram.bandwidth_bytes_per_s
    dram_bw = chip.dram.bandwidth_bytes_per_s
    miss = 1.0 - sram_resident_fraction
    effective_bw = 1.0 / (sram_resident_fraction / sram_bw + miss / dram_bw) if miss or sram_resident_fraction else dram_bw
    flops = attainable(intensity_flops_per_byte, peak, effective_bw)
    if flops >= peak * 0.999:
        bound = "compute"
    elif miss * effective_bw / dram_bw > sram_resident_fraction * effective_bw / sram_bw:
        bound = "dram"
    else:
        bound = "sram"
    return RooflinePoint(
        name=chip.name,
        arithmetic_intensity=intensity_flops_per_byte,
        attainable_flops=flops,
        bound=bound,
    )


def sram_cliff(
    chip: ChipSpec, intensity_flops_per_byte: float, dtype: DType = DType.FP16
) -> float:
    """Slowdown factor between fully-SRAM-resident and fully-DRAM-resident
    execution at a given intensity — the 'performance drops sharply as
    models exceed the SRAM capacity' effect (section 3.6)."""
    high = dual_roofline(chip, intensity_flops_per_byte, 1.0, dtype).attainable_flops
    low = dual_roofline(chip, intensity_flops_per_byte, 0.0, dtype).attainable_flops
    return high / low if low else float("inf")


def sweep(
    chip: ChipSpec,
    intensities: List[float],
    sram_resident_fraction: float = 1.0,
    dtype: DType = DType.FP16,
) -> List[RooflinePoint]:
    """Roofline points across a range of intensities."""
    return [
        dual_roofline(chip, ai, sram_resident_fraction, dtype) for ai in intensities
    ]
