"""Performance model: executor, roofline, LLM feasibility, metrics."""

from repro.perf.executor import (
    DRAM_EFFICIENCY_DEMAND,
    DRAM_EFFICIENCY_PREFETCH,
    ExecutionReport,
    Executor,
    OpProfile,
)
from repro.perf.llm import (
    DECODE_REQUIREMENT_S,
    TTFT_REQUIREMENT_S,
    LlmConfig,
    LlmFeasibility,
    LlmPhaseReport,
    decode_report,
    evaluate_llm,
    llama2_7b,
    llama3_70b,
    llama3_8b,
    prefill_report,
)
from repro.perf.freshness import (
    FreshnessReport,
    freshness_quality_gain,
    weight_update_latency,
)
from repro.perf.metrics import (
    ModelEfficiency,
    compare_reports,
    efficiency_from_report,
)
from repro.perf.trace import summarize_trace, to_chrome_trace, write_chrome_trace
from repro.perf.roofline import (
    RooflinePoint,
    attainable,
    dual_roofline,
    ridge_point,
    sram_cliff,
    sweep,
)

__all__ = [
    "DECODE_REQUIREMENT_S",
    "DRAM_EFFICIENCY_DEMAND",
    "DRAM_EFFICIENCY_PREFETCH",
    "ExecutionReport",
    "Executor",
    "FreshnessReport",
    "freshness_quality_gain",
    "weight_update_latency",
    "LlmConfig",
    "LlmFeasibility",
    "LlmPhaseReport",
    "ModelEfficiency",
    "OpProfile",
    "RooflinePoint",
    "TTFT_REQUIREMENT_S",
    "attainable",
    "compare_reports",
    "decode_report",
    "dual_roofline",
    "efficiency_from_report",
    "evaluate_llm",
    "llama2_7b",
    "llama3_70b",
    "llama3_8b",
    "prefill_report",
    "ridge_point",
    "sram_cliff",
    "summarize_trace",
    "sweep",
    "to_chrome_trace",
    "write_chrome_trace",
]
