"""Sections 3.6 / 8: MTIA 2i's complexity wall, and the next generation.

Paper claims measured here:

* §3.6: "2 GF/sample is unattainable for MTIA 2i because GEMMs become
  DRAM bandwidth-bound" — §8 adds that beyond some complexity it "is no
  longer cost effective to use MTIA 2i", hitting the limit sooner than a
  GPU with HBM.  Measured: on a ~2 GF/sample DHEN model, MTIA 2i spends
  most of its time on LPDDR weight streaming, sustains a small fraction
  of peak FLOPS, and loses the replay Perf/TCO comparison — the first
  model class where the GPU wins.
* §8: "MTIA 2i can handle HSTU-based ranking models (>10 GFLOPS/sample)
  efficiently at low batch sizes" — HSTU's weight-light ragged attention
  stays compute-dense, so a >10 GF/request model serves within latency
  at batch 16-32.
* §8/§9: a projected next generation (3x FLOPS, 2x SRAM, next-LPDDR)
  moves the wall: the same 2 GF/sample model's throughput multiplies.
"""

from conftest import once

from repro.arch import gpu_spec, mtia2i_spec, mtia_nextgen_spec
from repro.core.evaluation import MTIA_SERVING_EFFICIENCY
from repro.models.dhen import DhenConfig, build_dhen
from repro.models.dlrm import EmbeddingBagConfig
from repro.models.hstu import HstuConfig, build_hstu
from repro.perf import Executor
from repro.tco import compare_platforms
from repro.tensors import DType

LATENCY_BUDGET_S = 0.050  # batch-latency budget compatible with 100 ms P99


def _2gf_model(batch: int):
    """A ~2 GFLOPS/sample late-ranking model (the paper's wall)."""
    config = DhenConfig(
        name="wall_2gf",
        batch=batch,
        hidden_dim=6144,
        num_layers=12,
        num_dense_features=1024,
        embeddings=(
            EmbeddingBagConfig(
                num_tables=96, rows_per_table=4_000_000, embed_dim=128,
                pooling_factor=15.0,
            ),
        ),
        fm_features=32,
        mha_heads=8,
    )
    return build_dhen(config)


def _hstu_model(batch: int):
    config = HstuConfig(
        name="hstu_rank",
        batch=batch,
        hidden_dim=1024,
        num_layers=4,
        heads=8,
        mean_seq_len=700,
        max_seq_len=4096,
        num_tables=32,
        rows_per_table=20_000_000,
        embed_dim=256,
    )
    return build_hstu(config)


def _measure():
    chip2i, nextgen, gpu = mtia2i_spec(), mtia_nextgen_spec(), gpu_spec()
    batch = 512
    graph = _2gf_model(batch)
    mf = graph.flops_per_sample(batch) / 1e6
    now = Executor(chip2i).run(graph, batch, warmup_runs=1)
    future = Executor(nextgen).run(_2gf_model(batch), batch, warmup_runs=1)
    gpu_rep = Executor(gpu).run(_2gf_model(1024), 1024, warmup_runs=1)
    comparison = compare_platforms(
        "wall_2gf",
        mtia_chip_throughput=now.throughput_samples_per_s * MTIA_SERVING_EFFICIENCY,
        gpu_chip_throughput=gpu_rep.throughput_samples_per_s,
        mtia_chip_power_w=now.avg_power_w,
        gpu_chip_power_w=gpu_rep.avg_power_w,
        mtia_accelerators_per_model=2,
        gpu_accelerators_per_model=2,
    )
    dram_share = now.bottleneck_histogram().get("dram", 0.0)
    effective_fraction = now.achieved_flops_per_s / chip2i.peak_gemm_flops(DType.FP16)
    hstu = {}
    for hstu_batch in (16, 32):
        hstu_graph = _hstu_model(hstu_batch)
        gf = hstu_graph.flops_per_sample(hstu_batch) / 1e9
        report = Executor(chip2i).run(hstu_graph, hstu_batch, warmup_runs=1)
        hstu_eff = report.achieved_flops_per_s / chip2i.peak_gemm_flops(DType.FP16)
        hstu[hstu_batch] = (gf, report.latency_s, hstu_eff)
    return {
        "mf": mf,
        "now": now,
        "future": future,
        "comparison": comparison,
        "dram_share": dram_share,
        "effective_fraction": effective_fraction,
        "hstu": hstu,
    }


def test_sec8_limits_and_nextgen(benchmark, record):
    result = once(benchmark, _measure)
    now, future = result["now"], result["future"]
    comparison = result["comparison"]
    lines = [
        f"~2 GF/sample DHEN model ({result['mf']:.0f} MF/sample, batch 512):",
        f"  MTIA 2i: {now.throughput_samples_per_s:,.0f} samples/s, "
        f"{result['dram_share']:.0%} of time on LPDDR, "
        f"{result['effective_fraction']:.1%} of peak FLOPS sustained",
        f"  replay Perf/TCO vs GPU: {comparison.perf_per_tco_ratio:.2f}x "
        "(~parity: the cost-effectiveness crossover lands at ~2 GF/sample, "
        "matching section 8's 'at least 2 GFLOPS/sample' headroom claim)",
        f"  projected next-gen: {future.throughput_samples_per_s:,.0f} samples/s "
        f"({future.throughput_samples_per_s / now.throughput_samples_per_s:.1f}x)",
        "",
        "HSTU ranking (>10 GF/request) at low batch on MTIA 2i (section 8):",
    ]
    for batch, (gf, latency, eff) in sorted(result["hstu"].items()):
        lines.append(
            f"  batch {batch:>3}: {gf:5.1f} GF/request, latency {latency * 1e3:6.1f} ms, "
            f"{eff:.0%} of peak FLOPS"
        )
    # The wall: DRAM-bound, far below peak, and the Perf/TCO advantage is
    # gone — the crossover sits right at ~2 GF/sample, consistent with
    # section 8's claim of headroom up to "at least 2 GFLOPS/sample".
    assert result["mf"] > 1500
    assert result["dram_share"] > 0.5
    assert result["effective_fraction"] < 0.5  # vs >0.9 for SRAM-resident models
    assert 0.7 <= comparison.perf_per_tco_ratio <= 1.15
    # Next generation moves the wall substantially.
    assert future.throughput_samples_per_s > 1.8 * now.throughput_samples_per_s
    # HSTU: >10 GF/request served within the latency budget at low batch,
    # at healthy compute density (the 'efficiently' claim).
    for batch, (gf, latency, eff) in result["hstu"].items():
        assert gf > 10
        assert latency <= LATENCY_BUDGET_S * 2
        assert eff > 0.10
    record("sec8_limits_and_nextgen", "\n".join(lines))
