"""Section 3.3: fast eager mode — job launch under 1 us.

Paper: the Control Core's broadcast Work Queues plus per-PE Work Queue
Engines cut PE job launch time by as much as 80%, launching jobs in
under 1 us and replacing jobs in under 0.5 us; eager mode becomes viable
even for inference-time host-bound operators.
"""

from repro.arch import mtia1_spec, mtia2i_spec
from repro.pe import eager_launch_timeline, eager_viable, launch_reduction
from repro.perf import weight_update_latency


def _measure():
    new, old = mtia2i_spec(), mtia1_spec()
    job_times = [10e-6] * 200  # a 200-op eager-mode model
    return {
        "freshness": weight_update_latency(2 << 30, new),
        "launch_new": new.eager.job_launch_s,
        "replace_new": new.eager.job_replace_s,
        "launch_old": old.eager.job_launch_s,
        "reduction": launch_reduction(new.eager, old.eager),
        "timeline_new": eager_launch_timeline(job_times, new.eager),
        "timeline_old": eager_launch_timeline(job_times, old.eager),
        "viable_new": eager_viable(new, 10e-6),
        "viable_old": eager_viable(old, 10e-6),
    }


def test_sec33_eager_launch(benchmark, record):
    result = benchmark(_measure)
    lines = [
        f"MTIA 2i job launch:   {result['launch_new'] * 1e6:.2f} us (paper: < 1 us)",
        f"MTIA 2i job replace:  {result['replace_new'] * 1e6:.2f} us (paper: < 0.5 us)",
        f"MTIA 1 job launch:    {result['launch_old'] * 1e6:.2f} us",
        f"launch-time reduction: {result['reduction']:.0%} (paper: 'as much as 80%')",
        f"200-op eager overhead: MTIA 2i "
        f"{result['timeline_new'].overhead_fraction:.1%} vs MTIA 1 "
        f"{result['timeline_old'].overhead_fraction:.1%}",
        f"eager viable at 10 us/op: MTIA 2i {result['viable_new']}, "
        f"MTIA 1 {result['viable_old']}",
        f"real-time weight update (2 GiB delta): eager "
        f"{result['freshness'].eager_update_s:.2f} s vs graph republish "
        f"{result['freshness'].graph_republish_s / 60:.0f} min "
        "(the model-freshness motivation)",
    ]
    assert result["launch_new"] < 1e-6
    assert result["replace_new"] < 0.5e-6
    assert 0.75 <= result["reduction"] <= 0.85
    assert result["viable_new"] and not result["viable_old"]
    assert result["timeline_new"].overhead_fraction < 0.06
    assert result["freshness"].speedup > 1000
    record("sec33_eager_launch", "\n".join(lines))
