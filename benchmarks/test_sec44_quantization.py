"""Section 4.4: limited use of quantization in production.

Paper claims measured here:

* row-wise dynamic activation quantization + static weight quantization
  matches FP16 quality (per-tensor does not);
* the DPE's 2x INT8 speedup erodes to ~1.6x net for large compute-bound
  FCs (2048 x 2048 x 2048) once (de)quantization overhead is paid;
* only a few large layers gain, so end-to-end improvements are often
  marginal (a few percent) for whole models.
"""

import dataclasses

import numpy as np

from repro.arch import mtia2i_spec
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.quant import (
    fc_quantization_report,
    fp16_matmul_error,
    plan_model_quantization,
    quantization_error,
)
from repro.tensors import GemmShape


def _measure():
    chip = mtia2i_spec()
    rng = np.random.default_rng(0)
    x = rng.normal(0, 1, size=(256, 512)) * np.exp(rng.normal(0, 1.2, size=(256, 1)))
    w = rng.normal(0, 0.05, size=(512, 256))
    quality = {
        "rowwise": quantization_error(x, w, "rowwise"),
        "per_tensor": quantization_error(x, w, "tensor"),
        "per_group_32": quantization_error(x, w, "group:32"),
        "fp16": fp16_matmul_error(x, w),
    }
    big = fc_quantization_report(GemmShape(2048, 2048, 2048), chip)
    small = fc_quantization_report(GemmShape(256, 512, 512), chip)
    graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=1024))
    plan = plan_model_quantization(graph, chip)
    return quality, big, small, plan


def test_sec44_quantization(benchmark, record):
    quality, big, small, plan = benchmark(_measure)
    lines = [
        "matmul relative error vs FP32 (skewed-row activations):",
        f"  FP16         {quality['fp16']:.5f}",
        f"  INT8 rowwise {quality['rowwise']:.5f}  (paper: comparable to FP16)",
        f"  INT8 group32 {quality['per_group_32']:.5f}",
        f"  INT8 tensor  {quality['per_tensor']:.5f}  (rejected granularity)",
        "",
        f"2048x2048x2048 FC: raw DPE speedup {big.raw_speedup:.2f}x, "
        f"net {big.net_speedup:.2f}x (paper: ~1.6x)",
        f"256x512x512 FC: net {small.net_speedup:.2f}x -> "
        f"worthwhile: {small.worthwhile}",
        f"whole-model plan: {len(plan.quantized_layers)} layers selected, "
        f"end-to-end speedup {plan.end_to_end_speedup:.2f}x "
        "(paper: often a few percent)",
    ]
    assert quality["rowwise"] < quality["per_group_32"] < quality["per_tensor"]
    assert quality["rowwise"] < 0.02
    assert 1.45 <= big.net_speedup <= 1.75
    assert big.raw_speedup > 1.9
    assert not small.worthwhile
    assert 1.0 <= plan.end_to_end_speedup <= 1.4
    record("sec44_quantization", "\n".join(lines))
