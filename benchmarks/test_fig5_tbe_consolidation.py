"""Figure 5: consolidating TBE instances improves throughput (section 6).

Paper: consolidating the weighted and unweighted TBE instances into one
job halved the remote-job count; measured P99 request latency dropped
13 ms (99 ms -> 86 ms), entirely from the merge path, and throughput at
the SLO improved significantly — with identical PE-grid execution time.
"""

from conftest import once

from repro.serving import (
    CoalescingConfig,
    ModelJobProfile,
    coalesce,
    max_throughput_under_slo,
    poisson_stream,
    schedule_batches,
)

PROFILE = ModelJobProfile(
    remote_time_s=0.005,
    merge_time_s=0.009,
    remote_jobs_per_batch=2,
    dispatch_overhead_s=0.001,
    merge_submission_delay_s=0.0008,
)
COALESCING = CoalescingConfig(
    window_s=0.025, max_parallel_windows=4, max_batch_samples=1024
)


def _run():
    requests = poisson_stream(
        rate_per_s=100, duration_s=60, samples_per_request=256, seed=3
    )
    batches = coalesce(requests, COALESCING)
    separate = schedule_batches(batches, PROFILE)
    merged = schedule_batches(batches, PROFILE.consolidated())
    slo_separate = max_throughput_under_slo(
        PROFILE, COALESCING, duration_s=30.0, iterations=6
    )
    slo_merged = max_throughput_under_slo(
        PROFILE.consolidated(), COALESCING, duration_s=30.0, iterations=6
    )
    return separate, merged, slo_separate, slo_merged


def test_fig5_tbe_consolidation(benchmark, record, record_json):
    separate, merged, slo_separate, slo_merged = once(benchmark, _run)
    p99_sep = separate.latency_percentile(99)
    p99_con = merged.latency_percentile(99)
    tput_gain = (
        slo_merged.served_samples_per_s / slo_separate.served_samples_per_s - 1
    )
    lines = [
        f"{'configuration':24} {'P99 latency':>12} {'SLO throughput':>15}",
        f"{'separate TBE jobs':24} {p99_sep * 1e3:9.1f} ms "
        f"{slo_separate.served_samples_per_s:12.0f}/s",
        f"{'consolidated TBE jobs':24} {p99_con * 1e3:9.1f} ms "
        f"{slo_merged.served_samples_per_s:12.0f}/s",
        "",
        f"P99 improvement: {(p99_sep - p99_con) * 1e3:.1f} ms "
        "(paper: 13 ms, 99 -> 86 ms)",
        f"SLO-throughput gain: {tput_gain:+.1%} (paper: 'significant improvement')",
    ]
    # Shape checks: same band as the paper's figures.
    assert 0.080 <= p99_sep <= 0.140  # near the 99 ms the paper measured
    assert p99_con < p99_sep
    assert 0.005 <= p99_sep - p99_con <= 0.030  # ~13 ms improvement band
    assert tput_gain > 0.02
    # Identical PE-grid time in both configurations.
    consolidated = PROFILE.consolidated()
    assert (
        consolidated.remote_time_s * consolidated.remote_jobs_per_batch
        == PROFILE.remote_time_s * PROFILE.remote_jobs_per_batch
    )
    record("fig5_tbe_consolidation", "\n".join(lines))
    record_json("fig5_tbe_consolidation", {
        "p99_separate_s": p99_sep,
        "p99_consolidated_s": p99_con,
        "p99_improvement_s": p99_sep - p99_con,
        "slo_throughput_gain": tput_gain,
        "slo_samples_per_s_consolidated": slo_merged.served_samples_per_s,
    })
