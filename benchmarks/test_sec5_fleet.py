"""Global fleet headline: the region-outage capacity study.

Paper: section 5's productionization story scaled to the fleet's real
deployment unit — regions.  The ROADMAP question this regenerates: how
many hosts per region does it take to serve 4M users at the P99 SLO
*through a full region outage*?  The ``sec5_fleet`` goldens pin the
study's verdict: the quiet-day minimum (4 replicas/region), the
outage-surviving minimum with probe-driven failover and capacity spill
(5 replicas/region — a 25% overprovision, the price of region-loss
tolerance), and the undefended result that no swept size holds the SLO
when the LB keeps sending a dead region its traffic.
"""

from conftest import once

from repro.fleet_global import run_capacity_study


def _run():
    return run_capacity_study()


def test_sec5_fleet(benchmark, record, record_json):
    study = once(benchmark, _run)

    lines = [study.summary(), ""]

    # The acceptance shape: undefended breaches at every size, defended
    # holds at some size, and the quiet-day baseline is cheaper.
    assert study.undefended_replicas is None
    assert study.defended_replicas is not None
    assert study.baseline_replicas is not None
    assert study.baseline_replicas < study.defended_replicas
    assert study.overprovision_fraction > 0.0

    verdict = study.point(study.defended_replicas)
    # Undefended loses the dead region's traffic wholesale; defended
    # failover bounds the loss to roughly the probe-detection window.
    assert verdict.undefended.loss_fraction > 0.15
    assert verdict.defended.loss_fraction <= study.max_loss_fraction
    assert verdict.defended.spilled_served > 0
    assert verdict.defended.p99_latency_s <= study.p99_slo_s
    dead = verdict.defended.regions[0]
    assert dead.detection_lag_s < 2.0
    lines.append(
        f"detection lag {dead.detection_lag_s:.2f}s; spilled "
        f"{verdict.defended.spill_fraction:.1%} of global traffic at "
        f"{verdict.defended.p99_latency_s * 1e3:.1f} ms global P99"
    )

    # Conservation held globally on every arm of every point.
    for point in study.points:
        for report in (point.baseline, point.undefended, point.defended):
            assert (report.served + report.shed + report.timed_out
                    + report.spilled_served == report.offered)

    record("sec5_fleet", "\n".join(lines))
    scalars = dict(study.scalars())
    scalars["detection_lag_s"] = dead.detection_lag_s
    record_json("sec5_fleet", scalars)
