"""Section 3.3: instruction-issue fixes take GEMMs past 92% of peak.

Paper: initial kernels without the new custom instructions were
bottlenecked by the custom-instruction issue rate, 'resulting in lower
out-of-the-box efficiency, particularly for smaller GEMM shapes'; with
multi-context instructions and auto-increment offsets, '>92% of peak
FLOPS for GEMM shapes such as 2K x 2K'.
"""

from repro.arch import mtia2i_spec
from repro.kernels import estimate_gemm, gemm_efficiency, naive_variant
from repro.tensors import DType, GemmShape

SHAPES = [
    GemmShape(128, 128, 128),
    GemmShape(256, 256, 256),
    GemmShape(512, 512, 512),
    GemmShape(1024, 1024, 1024),
    GemmShape(2048, 2048, 2048),
    GemmShape(4096, 4096, 4096),
]


def _sweep():
    chip = mtia2i_spec()
    rows = []
    for shape in SHAPES:
        tuned = gemm_efficiency(shape, chip)
        naive = gemm_efficiency(shape, chip, variant=naive_variant())
        naive_est = estimate_gemm(shape, chip, DType.FP16, naive_variant())
        rows.append((shape, tuned, naive, naive_est.issue_bound))
    return rows


def test_sec33_gemm_efficiency(benchmark, record, record_json):
    rows = benchmark(_sweep)
    lines = [f"{'shape':>18} {'tuned eff':>10} {'naive eff':>10} {'naive issue-bound':>18}"]
    for shape, tuned, naive, issue_bound in rows:
        lines.append(
            f"{str(shape):>18} {tuned:10.1%} {naive:10.1%} {str(issue_bound):>18}"
        )
    by_shape = {str(shape): (tuned, naive, issue_bound) for shape, tuned, naive, issue_bound in rows}
    # The paper's claim: >92% for 2K x 2K with the new instructions.
    assert by_shape["2048x2048x2048"][0] > 0.92
    # Out of the box, well below peak, and issue-bound on small shapes.
    assert by_shape["2048x2048x2048"][1] < 0.6
    assert by_shape["512x512x512"][2]  # naive small GEMM is issue-bound
    # Small shapes run further from peak even when tuned.
    assert by_shape["128x128x128"][0] < by_shape["4096x4096x4096"][0]
    record("sec33_gemm_efficiency", "\n".join(lines))
    record_json("sec33_gemm_efficiency", {
        "tuned_eff_2048": by_shape["2048x2048x2048"][0],
        "naive_eff_2048": by_shape["2048x2048x2048"][1],
        "tuned_eff_128": by_shape["128x128x128"][0],
        "tuned_eff_4096": by_shape["4096x4096x4096"][0],
    })
