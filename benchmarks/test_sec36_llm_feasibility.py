"""Sections 3.6 / 8: LLM serving feasibility on MTIA 2i.

Paper: for Llama2-7B, prefill meets the 600 ms time-to-first-token
requirement but decode fails the 60 ms/token requirement (both MHA and
FFN limited by LPDDR bandwidth); section 8 reports the same shape for
Llama3-8B, and 70B/405B-class models are out of scope entirely.  On the
HBM GPU both phases pass easily.
"""

from repro.arch import gpu_spec, mtia2i_spec
from repro.perf import evaluate_llm, llama2_7b, llama3_70b, llama3_8b


def _sweep():
    rows = []
    for model in (llama2_7b(), llama3_8b(), llama3_70b()):
        for chip in (mtia2i_spec(), gpu_spec()):
            rows.append(evaluate_llm(model, chip))
    return rows


def test_sec36_llm_feasibility(benchmark, record, record_json):
    rows = benchmark(_sweep)
    lines = [f"{'model':12} {'chip':16} {'prefill':>9} {'decode':>9} {'viable':>7}"]
    verdicts = {}
    for verdict in rows:
        verdicts[(verdict.model, verdict.chip)] = verdict
        lines.append(
            f"{verdict.model:12} {verdict.chip:16} "
            f"{verdict.prefill_latency_s * 1e3:7.0f}ms "
            f"{verdict.decode_latency_s * 1e3:7.1f}ms {str(verdict.viable):>7}"
        )
    mtia = mtia2i_spec().name
    gpu = gpu_spec().name
    # Llama2-7B on MTIA 2i: prefill passes, decode fails (section 3.6).
    v7 = verdicts[("Llama2-7B", mtia)]
    assert v7.prefill_meets_ttft and not v7.decode_meets_latency
    # Llama3-8B repeats the shape (section 8).
    v8 = verdicts[("Llama3-8B", mtia)]
    assert v8.prefill_meets_ttft and not v8.decode_meets_latency
    # 70B-class is out of reach on MTIA 2i.
    assert not verdicts[("Llama3-70B", mtia)].viable
    # The GPU serves the small models fine.
    assert verdicts[("Llama2-7B", gpu)].viable
    assert verdicts[("Llama3-8B", gpu)].viable
    record("sec36_llm_feasibility", "\n".join(lines))
    record_json("sec36_llm_feasibility", {
        "llama2_7b_mtia_prefill_s": v7.prefill_latency_s,
        "llama2_7b_mtia_decode_s": v7.decode_latency_s,
        "llama3_8b_mtia_prefill_s": v8.prefill_latency_s,
        "llama3_8b_mtia_decode_s": v8.decode_latency_s,
    })
