"""Section 4.2: exploiting locality across the stack.

Paper claims measured here:

* sparse (embedding) accesses: caching keeps 40-60% in SRAM;
* dense networks: >95% of accesses served from SRAM;
* the DRAM-bound 512 x 26592 x 2048 GEMM (109 MB weights): the
  broadcast-read + prefetch algorithm improved latency 45% and reached
  >95% of DRAM bandwidth;
* sibling transpose-FC fusion: up to 15% model-level gain;
* delaying the in-batch broadcast: up to 2x footprint reduction.
"""

import dataclasses

from conftest import once

from repro.arch import mtia2i_spec
from repro.core.casestudy import CaseStudyModelConfig, build_case_study_model
from repro.graph import OpGraph, fc, transpose
from repro.graph.passes import defer_broadcast, fuse_sibling_transpose_fc
from repro.kernels import GemmVariant, Stationarity
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import Executor
from repro.tensors import model_input, weight


def _hit_rates():
    """Sparse hit rate on a production-scale model (HC2's 96 GB of
    tables); dense hit rate on an SRAM-resident model — the paper's
    claims are for those respective regimes."""
    from repro.models import hc2

    big = hc2()
    sparse_report = Executor(mtia2i_spec()).run(big.graph(), big.batch, warmup_runs=1)
    dense_graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=1024))
    dense_report = Executor(mtia2i_spec()).run(dense_graph, 1024, warmup_runs=2)
    return sparse_report, dense_report


def _big_gemm(variant):
    """The section 4.2 shape with activations already on chip (the paper
    pre-loads them into LLS); only the 109 MB weight streams from LPDDR."""
    from repro.graph import layernorm

    x = model_input(512, 26592, name="acts_in")
    graph = OpGraph(name="big_gemm")
    staged = graph.add(layernorm(x, name="stage_in"))  # producer -> LLS
    w = weight(26592, 2048, name="big_w")
    graph.add(fc(staged.output, w, name="fc_512x26592x2048"))
    chip = mtia2i_spec()
    report = Executor(chip, gemm_variant=variant).run(graph, 512, warmup_runs=0)
    profile = [p for p in report.op_profiles if p.op_name.startswith("fc")][0]
    dram_bw_utilization = (
        profile.dram_bytes / profile.time_s / chip.dram.bandwidth_bytes_per_s
    )
    return profile.time_s, dram_bw_utilization


def _sibling_fusion_gain():
    """A transposed output feeding four sibling FCs inside a model (the
    section 4.2 pattern): fusing keeps the transposed intermediate out of
    LLS/LLC."""
    from repro.graph import concat

    x = model_input(8192, 2048, name="x")
    graph = OpGraph(name="siblings")
    t = graph.add(transpose(x, name="t"))
    outs = []
    for i in range(4):
        op = graph.add(fc(t.output, weight(8192, 256, name=f"w{i}"), name=f"fc{i}"))
        outs.append(op.output)
    joined = graph.add(concat(outs, axis=1, name="join"))
    graph.add(fc(joined.output, weight(1024, 64, name="head_w"), name="head"))
    chip = mtia2i_spec()
    plain = Executor(chip).run(graph, 8192, warmup_runs=1)
    fused = Executor(chip).run(fuse_sibling_transpose_fc(graph), 8192, warmup_runs=1)
    return plain.latency_s / fused.latency_s - 1


def _broadcast_footprint():
    """A broadcast-dominated early merge network — the model class where
    delaying the user-side broadcast cut the footprint up to 2x."""
    from repro.graph import broadcast, layernorm as ln_op

    def build(deferred):
        users = model_input(128, 4096, name="users")
        graph = OpGraph(name="ibb_model")
        b = graph.add(broadcast(users, factor=8, name="ibb"))
        current = b.output
        for i in range(3):
            op = fc(current, weight(4096, 4096, name=f"uw{i}"), name=f"ufc{i}")
            op.attrs["user_side"] = True
            graph.add(op)
            current = op.output
        graph.add(fc(current, weight(4096, 64, name="head_w"), name="head"))
        if deferred:
            graph = defer_broadcast(graph)
        return graph

    return build(False).peak_activation_bytes(), build(True).peak_activation_bytes()


def _all():
    sparse_report, dense_report = _hit_rates()
    optimized = GemmVariant(
        stationarity=Stationarity.WEIGHT, broadcast_weights=True, prefetch=True
    )
    unoptimized = GemmVariant(
        stationarity=Stationarity.WEIGHT, broadcast_weights=False, prefetch=False,
        double_buffer=False,
    )
    fast_latency, fast_bw = _big_gemm(optimized)
    slow_latency, slow_bw = _big_gemm(unoptimized)
    fusion_gain = _sibling_fusion_gain()
    eager_bytes, deferred_bytes = _broadcast_footprint()
    return {
        "sparse_hit": sparse_report.sparse_hit_rate,
        "dense_hit": dense_report.dense_hit_rate,
        "gemm_improvement": slow_latency / fast_latency - 1,
        "gemm_bw": fast_bw,
        "fusion_gain": fusion_gain,
        "footprint_ratio": eager_bytes / deferred_bytes,
    }


def test_sec42_locality(benchmark, record):
    result = once(benchmark, _all)
    lines = [
        f"sparse SRAM hit rate: {result['sparse_hit']:.0%} (paper: 40-60%)",
        f"dense SRAM hit rate:  {result['dense_hit']:.0%} (paper: >95%)",
        f"512x26592x2048 GEMM: broadcast+prefetch improves latency "
        f"{result['gemm_improvement']:+.0%} (paper: +45%) and reaches "
        f"{result['gemm_bw']:.0%} of DRAM bandwidth (paper: >95%)",
        f"sibling transpose-FC fusion: {result['fusion_gain']:+.1%} "
        "(paper: up to 15%)",
        f"delayed broadcast footprint reduction: "
        f"{result['footprint_ratio']:.2f}x (paper: up to 2x)",
    ]
    assert 0.35 <= result["sparse_hit"] <= 0.75
    assert result["dense_hit"] > 0.95
    assert 0.25 <= result["gemm_improvement"] <= 0.8
    assert result["gemm_bw"] > 0.85
    assert 0.05 <= result["fusion_gain"] <= 0.30
    assert result["footprint_ratio"] > 1.5
    record("sec42_locality", "\n".join(lines))
