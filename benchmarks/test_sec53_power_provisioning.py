"""Section 5.3: reducing provisioned power.

Paper: after six months in production, the rack power budget was reduced
by nearly 40% versus the initial stress-test-based estimate, using the
higher of (a) an experiment holding all 24 accelerators at the P90 of
the largest models' peak production throughput and (b) the P90 power of
fully-utilized production servers.
"""

from repro.arch import mtia2i_server
from repro.reliability import PAPER_REDUCTION_FRACTION, provisioning_study


def test_sec53_power_provisioning(benchmark, record):
    outcome = benchmark(provisioning_study, mtia2i_server())
    lines = [
        f"initial stress-test rack budget: {outcome.initial_budget_w:,.0f} W/server",
        f"prong 1 (P90 experiment):        {outcome.experiment_budget_w:,.0f} W/server",
        f"prong 2 (P90 fleet telemetry):   {outcome.fleet_budget_w:,.0f} W/server",
        f"revised budget (max of prongs):  {outcome.revised_budget_w:,.0f} W/server",
        f"reduction: {outcome.reduction_fraction:.0%} "
        f"(paper: ~{PAPER_REDUCTION_FRACTION:.0%})",
    ]
    assert outcome.revised_budget_w == max(
        outcome.experiment_budget_w, outcome.fleet_budget_w
    )
    assert 0.30 <= outcome.reduction_fraction <= 0.50
    # The revised budget still covers the server's typical draw.
    assert outcome.revised_budget_w > mtia2i_server().typical_power_watts * 0.7
    record("sec53_power_provisioning", "\n".join(lines))
