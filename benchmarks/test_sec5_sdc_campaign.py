"""Sections 5.1/5.2/5.6 closed loop: the SDC injection campaign.

Paper: §5.1 adopts inline ECC after a three-pronged risk assessment,
§5.2 ships a 1.35 GHz overclock whose margin tail is the silent-
corruption population, and §5.6 gates launches on normalized entropy.
Measured here: bit-level faults injected across five sites of the real
quantized serving path, versus the protection ladder none → ECC →
ECC+ABFT → full — coverage, silent NE-impacting residue, detection
latency, and throughput overhead, plus the derived fault parameters the
section 5.5 resilience simulator consumes.
"""

from conftest import once

from repro.sdc import (
    CampaignConfig,
    run_campaign,
    sdc_fault_rates,
    triple_flip_escape_rate,
)


def _measure():
    config = CampaignConfig(trials=400, requests=8000, seed=0)
    result = run_campaign(config)
    return config, result


def test_sec5_sdc_campaign(benchmark, record, record_json):
    config, result = once(benchmark, _measure)
    escape = triple_flip_escape_rate(samples=400, seed=0)
    lines = [
        f"{config.trials} injections x {config.requests} requests, "
        f"clean NE {result.clean_ne:.4f}, "
        f"impact threshold |dNE| > {config.ne_threshold:g}",
        "fault mix: " + ", ".join(
            f"{site.value}={count}"
            for site, count in result.site_counts.items()
        ),
        f"SEC-DED triple-flip silent escape: {escape:.0%}",
        "",
        result.table(),
        "",
    ]
    for summary in result.profiles:
        rates = sdc_fault_rates(summary, screening=config.screening)
        lines.append(
            f"{summary.profile.name:<10} -> resilience sdc family: "
            f"{rates.sdc_per_device_hour:.2e}/device-hour, "
            f"blast window {rates.sdc_blast_window_s:,.1f} s"
        )
    ratio = result.undetected_impacting_ratio()
    lines.append(
        f"undetected NE-impacting, none vs ecc+abft: {ratio:.0f}x fewer"
    )

    assert escape > 0.9
    assert ratio >= 10
    assert result.summary_for("full").undetected_ne_impacting == 0
    coverages = [s.coverage for s in result.profiles]
    assert coverages == sorted(coverages)
    record("sec5_sdc_campaign", "\n".join(lines))
    ecc_abft = result.summary_for("ecc+abft")
    record_json("sec5_sdc_campaign", {
        "clean_ne": result.clean_ne,
        "undetected_impacting_ratio": ratio,
        "triple_flip_escape_rate": escape,
        "full_coverage": result.summary_for("full").coverage,
        "ecc_abft_coverage": ecc_abft.coverage,
        "ecc_abft_undetected_ne_impacting": float(
            ecc_abft.undetected_ne_impacting
        ),
    })
