"""Section 4.3: keeping up with model evolution.

Paper claims measured here:

* **Jagged tensors** for sequence embeddings: skewed history lengths,
  dense<->jagged conversion, jagged math — the operators the RISC-V
  vector core handles because jagged data-level parallelism is limited.
* **HSTU ragged attention**: the bias gather runs piecewise through the
  SIMD Engine's limited LUT memory, so its cost scales with the bias
  table size.
* **LayerNorm (3 steps) and Softmax (5 steps)**: pipelined across the
  cores; Softmax with a small inner dimension pays an extra transpose to
  keep the SIMD lanes full.
"""

import numpy as np

from repro.arch import mtia2i_spec
from repro.kernels import (
    LAYERNORM_PASSES,
    SOFTMAX_PASSES,
    estimate_hstu_attention,
    estimate_layernorm,
    estimate_softmax,
)
from repro.models.hstu import HstuConfig
from repro.pe import RiscvVectorConfig, mtia2i_simd_config
from repro.tensors import DType, JaggedTensor, jagged_softmax, jagged_sum_pool


def _measure():
    chip = mtia2i_spec()
    # Jagged batch with the paper's skewed history distribution.
    config = HstuConfig(
        name="probe", batch=64, hidden_dim=256, num_layers=1, heads=4,
        mean_seq_len=128, max_seq_len=1024, num_tables=4,
        rows_per_table=100_000, embed_dim=64,
    )
    lengths = config.sample_seq_lengths()
    skew = max(lengths) / float(np.median(lengths))
    rng = np.random.default_rng(0)
    jagged = JaggedTensor.from_rows([rng.normal(size=(l, 64)) for l in lengths])
    pooled = jagged_sum_pool(jagged)
    normalized = jagged_softmax(jagged)

    # Vector core vs SIMD Engine throughput (the flexibility trade).
    vector = RiscvVectorConfig(frequency_hz=chip.frequency_hz)
    simd = mtia2i_simd_config()
    vector_rate = vector.elements_per_s(DType.FP16)
    simd_rate = simd.elements_per_s(DType.FP16)

    # HSTU bias gather: cost grows with the bias table exceeding LUT
    # memory (piecewise loads).
    small_bias = estimate_hstu_attention(lengths, 4, 64, chip, bias_table_bytes=16 << 10)
    big_bias = estimate_hstu_attention(lengths, 4, 64, chip, bias_table_bytes=4 << 20)

    # Softmax small-inner-dim transpose penalty; LayerNorm 3 vs Softmax 5.
    ln = estimate_layernorm(8192, 512, chip)
    sm_wide = estimate_softmax(8192, 512, chip)
    sm_narrow = estimate_softmax(8192 * 16, 32, chip)  # same element count
    return {
        "skew": skew,
        "pooled_shape": pooled.shape,
        "softmax_sums": float(np.max(np.abs(
            np.array([normalized.row(i).sum(axis=0) for i in range(8)]) - 1.0
        ))),
        "vector_vs_simd": simd_rate / vector_rate,
        "bias_penalty": big_bias.compute_s / small_bias.compute_s,
        "ln_s": ln.compute_s,
        "sm_wide_s": sm_wide.compute_s,
        "sm_narrow_s": sm_narrow.compute_s,
    }


def test_sec43_model_evolution(benchmark, record):
    result = benchmark(_measure)
    lines = [
        f"user-history skew (max/median length): {result['skew']:.1f}x "
        "(ragged attention exists for this)",
        f"jagged sum-pool output: {result['pooled_shape']} "
        f"(segment softmax max |sum-1| = {result['softmax_sums']:.1e})",
        f"SIMD Engine vs RISC-V vector throughput: "
        f"{result['vector_vs_simd']:.1f}x (vector core trades speed for ISA "
        "generality on jagged ops)",
        f"HSTU bias gather, 4 MiB table vs LUT-resident: "
        f"{result['bias_penalty']:.2f}x attention time (piecewise LUT loads)",
        f"LayerNorm ({LAYERNORM_PASSES} steps): {result['ln_s'] * 1e6:.0f} us; "
        f"Softmax ({SOFTMAX_PASSES} steps): {result['sm_wide_s'] * 1e6:.0f} us; "
        f"Softmax with 32-wide inner dim: {result['sm_narrow_s'] * 1e6:.0f} us "
        "(extra transpose)",
    ]
    assert result["skew"] > 2.0  # skewed distribution
    assert result["softmax_sums"] < 1e-9  # jagged softmax is exact
    assert result["vector_vs_simd"] > 1.5  # SIMD Engine is the fast path
    assert result["bias_penalty"] > 1.02  # piecewise gather costs
    assert result["sm_wide_s"] > result["ln_s"]  # 5 passes vs 3
    assert result["sm_narrow_s"] > result["sm_wide_s"]  # transpose penalty
    record("sec43_model_evolution", "\n".join(lines))
