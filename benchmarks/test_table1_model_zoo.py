"""Table 1: production model classes — size and complexity.

Paper-reported coordinates:

| Model type      | Model size | Complexity                 |
|-----------------|-----------:|----------------------------|
| Retrieval       | 50-100 GB  | 0.001-0.01 GFLOPS/sample   |
| Early stage     | 100-300 GB | 0.01-0.1 GFLOPS/sample     |
| Late stage      | 100-300 GB | 0.2-2 GFLOPS/sample        |
| HSTU retrieval  | 1 TB       | 10 GFLOPS/request          |
| HSTU ranking    | 2 TB       | 80 GFLOPS/request          |

plus "90% of model size is embeddings".
"""

from repro.models import table1_models, table1_row

BANDS = {
    "retrieval": ((50, 110), (0.001, 0.01)),
    "early_stage": ((100, 300), (0.01, 0.1)),
    "late_stage": ((100, 300), (0.2, 2.0)),
    "hstu_retrieval": ((800, 1300), (5, 20)),
    "hstu_ranking": ((1600, 2600), (40, 120)),
}


def test_table1_model_zoo(benchmark, record):
    """Regenerate Table 1 from the synthetic zoo."""
    rows = benchmark(lambda: [table1_row(m) for m in table1_models()])
    lines = [f"{'model type':16} {'size GB':>9} {'GF/sample':>10} {'emb %':>6}"]
    for row in rows:
        lines.append(
            f"{row.model_type:16} {row.model_size_gb:9.1f} "
            f"{row.gflops_per_sample:10.3f} {row.embedding_fraction:6.1%}"
        )
        size_band, flops_band = BANDS[row.model_type]
        assert size_band[0] <= row.model_size_gb <= size_band[1], row
        assert flops_band[0] <= row.gflops_per_sample <= flops_band[1], row
        assert row.embedding_fraction > 0.9
    record("table1_model_zoo", "\n".join(lines))
