"""Section 5.5: real-time firmware updates mitigating silicon issues.

Paper: a subtle Control-Core/NoC/PCIe-ordering deadlock hit ~1% of
servers under saturating stress tests and ~0.1% of production servers on
susceptible models; a firmware update relocating the Control Core's
memory from host to device SRAM eliminated it.  Rollout machinery:
3 builds/day, 23 fleet-wide releases in 2024, 18-day typical rollout,
~3 h emergency, ~1 h with overridden policies.
"""

from conftest import once

from repro.serving import PoolState, inject_device_faults
from repro.reliability import (
    BUILDS_PER_DAY,
    PAPER_RELEASES_PER_YEAR,
    SystemState,
    apply_firmware_mitigation,
    deadlock_incidence,
    emergency_rollout,
    has_deadlock,
    override_rollout,
    staged_detection,
    typical_rollout,
)


def _measure():
    stress = SystemState(
        pe_utilization=1.0, pcie_queue_depth=8, control_core_reads_host_memory=True
    )
    stress_deadlocks = has_deadlock(stress)
    mitigated_deadlocks = has_deadlock(apply_firmware_mitigation(stress))
    # Stress testing drives every server to 100% PE utilization; only the
    # PCIe queue-depth condition gates the hit rate (~1%).
    stress_rate = deadlock_incidence(
        num_servers=100_000, high_load_fraction=1.0,
        deep_queue_probability=0.01, seed=2,
    )
    production_rate = deadlock_incidence(
        num_servers=100_000, high_load_fraction=0.08,
        deep_queue_probability=0.013, seed=2,
    )
    detection = staged_detection(issue_incidence=production_rate, seed=4)
    # Serving-tier impact of the production incidence on a model's pool.
    pool = PoolState(devices=400, device_throughput=100_000, offered_load=28e6)
    impact = inject_device_faults(pool, production_rate)
    return (
        stress_deadlocks,
        mitigated_deadlocks,
        stress_rate,
        production_rate,
        detection,
        impact,
    )


def test_sec55_firmware(benchmark, record):
    stress, mitigated, stress_rate, production_rate, detection, impact = once(
        benchmark, _measure
    )
    lines = [
        f"deadlock under saturating stress: {stress}; after firmware "
        f"mitigation (Control-Core memory -> SRAM): {mitigated}",
        f"stress-test incidence:   {stress_rate:.2%} of servers (paper: ~1%)",
        f"production incidence:    {production_rate:.2%} of servers (paper: ~0.1%)",
        f"staged rollout detects it at stage {detection.detected_at_stage!r} "
        f"with {detection.servers_exposed:,} servers exposed "
        f"(of {detection.fleet_servers:,})",
        f"rollout wall times: typical {typical_rollout().total_days:.0f} days "
        f"(paper: 18), emergency {emergency_rollout().total_hours:.1f} h "
        f"(paper: 3), override {override_rollout().total_hours:.1f} h (paper: 1)",
        f"build cadence: {BUILDS_PER_DAY}/day; "
        f"{PAPER_RELEASES_PER_YEAR} fleet releases in 2024 "
        "(vs 1-2/year for third-party GPUs)",
        f"serving impact of the production incidence on a 400-device pool: "
        f"{impact.devices_lost} replica(s) wedged, queueing delay "
        f"x{impact.latency_amplification:.3f} (SLO at risk: {impact.slo_at_risk} "
        "— tolerable, but compounding until the firmware fix lands)",
    ]
    assert stress and not mitigated
    assert 0.005 <= stress_rate <= 0.02
    assert 0.0005 <= production_rate <= 0.002
    assert detection.detected_at_stage is not None
    assert 14 <= typical_rollout().total_days <= 22
    assert emergency_rollout().total_hours <= 4
    assert override_rollout().total_hours <= 1.2
    assert impact.devices_lost >= 1
    assert not impact.slo_at_risk  # 0.1% alone does not break serving
    record("sec55_firmware", "\n".join(lines))
