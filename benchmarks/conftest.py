"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
regenerated rows are written to ``benchmarks/out/<name>.txt`` (and
echoed to stdout) so the paper-versus-measured comparison in
EXPERIMENTS.md can be refreshed from the artifacts; the headline
*scalars* are additionally written to ``benchmarks/out/<name>.json``
via ``record_json`` so ``python -m repro bench`` can aggregate them
into ``BENCH_results.json`` and diff runs against each other.

Both artifact kinds are deterministic: text ends with exactly one
trailing newline, JSON is sorted-key/fixed-indent, so two identical
runs produce byte-identical files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs.bench import dump_json, normalize_text, write_scalars

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture()
def record():
    """Write a regenerated table/figure to the benchmark output dir."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(normalize_text(text))
        print(f"\n=== {name} ===\n{text}")

    return _record


@pytest.fixture()
def record_json():
    """Write a benchmark's key scalars to ``out/<name>.json``.

    ``scalars`` must be a flat mapping of finite ints/floats — the
    machine-readable counterpart of the ``record`` table, consumed by
    ``python -m repro bench``.
    """

    def _record_json(name: str, scalars) -> None:
        document_path = write_scalars(OUT_DIR, name, scalars)
        print(f"\n=== {name}.json ===\n"
              f"{dump_json({'scalars': dict(scalars)})}"
              f"-> {document_path}")

    return _record_json


def once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function exactly once (no calibration)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
