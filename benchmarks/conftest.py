"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
regenerated rows are written to ``benchmarks/out/<name>.txt`` (and
echoed to stdout) so the paper-versus-measured comparison in
EXPERIMENTS.md can be refreshed from the artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture()
def record():
    """Write a regenerated table/figure to the benchmark output dir."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _record


def once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function exactly once (no calibration)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
