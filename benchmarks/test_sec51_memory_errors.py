"""Section 5.1: trade-offs in handling memory errors.

Paper: 24% of a 1,700-server sample exhibited ECC errors, typically one
card per server; the injection tool found TBE indices, TBE rows, and
specific FP weight bits cause NaNs/corruptions with high probability;
software hashing was too expensive; products could not absorb the error
volume; ECC was enabled despite a 10-15% throughput penalty.
"""

import dataclasses

from conftest import once

from repro.arch import mtia2i_spec
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import Executor
from repro.reliability import (
    ECC_THROUGHPUT_PENALTY,
    EccDecisionInputs,
    ErrorRegion,
    decide_ecc,
    hashing_integrity_overhead,
    sample_fleet_errors,
    sensitivity_study,
)


def _measure():
    fleet = sample_fleet_errors(seed=7)
    injection = sensitivity_study(trials_per_region=150, seed=5)
    decision = decide_ecc(
        EccDecisionInputs(
            server_error_fraction=fleet.affected_fraction,
            uncorrected_failure_rate=injection.failure_rate(
                injection.most_sensitive()
            ),
            anomaly_budget_per_day=50.0,
            errors_per_affected_server_per_day=20.0,
            fleet_servers=10_000,
        )
    )
    # End-to-end ECC throughput penalty on a DRAM-hungry model.
    config = dataclasses.replace(small_dlrm(), batch=2048)
    config = dataclasses.replace(
        config,
        embeddings=(
            dataclasses.replace(
                config.embeddings[0], num_tables=64, rows_per_table=4_000_000,
                pooling_factor=32,
            ),
        ),
    )
    with_ecc = Executor(mtia2i_spec(ecc_enabled=True)).run(
        build_dlrm(config), 2048, warmup_runs=1
    )
    without = Executor(mtia2i_spec(ecc_enabled=False)).run(
        build_dlrm(config), 2048, warmup_runs=1
    )
    penalty = 1 - with_ecc.throughput_samples_per_s / without.throughput_samples_per_s
    hashing = hashing_integrity_overhead(
        region_bytes=8 << 30, accesses_per_s=5, hash_bytes_per_s=10e9
    )
    return fleet, injection, decision, penalty, hashing


def test_sec51_memory_errors(benchmark, record):
    fleet, injection, decision, penalty, hashing = once(benchmark, _measure)
    lines = [
        f"fleet telemetry: {fleet.affected_fraction:.0%} of {fleet.servers} servers "
        f"with errors (paper: 24% of 1,700), "
        f"{fleet.mean_errored_cards_per_affected_server:.2f} cards/affected",
        "injection failure rates (non-benign outcomes):",
    ]
    for region in ErrorRegion:
        lines.append(f"  {region.value:16}: {injection.failure_rate(region):.0%}")
    lines += [
        f"software hashing overhead: {hashing:.0%} of device time (rejected)",
        f"ECC decision: enable = {decision.enable_ecc}",
        f"measured end-to-end ECC penalty on a DRAM-bound model: {penalty:.1%} "
        f"(paper: {ECC_THROUGHPUT_PENALTY[0]:.0%}-{ECC_THROUGHPUT_PENALTY[1]:.0%})",
    ]
    assert 0.20 <= fleet.affected_fraction <= 0.28
    assert injection.most_sensitive() is ErrorRegion.TBE_INDICES
    assert injection.failure_rate(ErrorRegion.TBE_INDICES) > 0.6
    assert decision.enable_ecc
    assert hashing > 0.5
    assert 0.05 <= penalty <= 0.16  # 10-15% for fully DRAM-bound models
    record("sec51_memory_errors", "\n".join(lines))
