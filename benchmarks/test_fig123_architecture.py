"""Figures 1-3: architecture and software-stack structure.

These figures are block diagrams with no measured data; the benchmark
verifies the model's topology matches them — the 8x8 PE grid on a
non-blocking NoC (Figure 1), the PE's processors and six fixed-function
units (Figure 2), and the PyTorch-first software stack layering
(Figure 3) — and renders the textual equivalents.
"""

from repro.arch import (
    PE_FIXED_FUNCTION_UNITS,
    PE_PROCESSORS,
    SOFTWARE_STACK_LAYERS,
    describe_chip,
    describe_pe,
    describe_software_stack,
    mtia2i_spec,
)


def test_fig123_architecture(benchmark, record):
    chip = mtia2i_spec()
    text = benchmark(
        lambda: "\n\n".join(
            [describe_chip(chip), describe_pe(chip), describe_software_stack()]
        )
    )
    # Figure 1: 8x8 grid, crossbar-connected SRAM + memory controllers.
    assert chip.num_pes == 64
    assert "8x8" in text
    # Figure 2: two RISC-V cores and six fixed-function units per PE.
    assert len(PE_PROCESSORS) == 2
    assert len(PE_FIXED_FUNCTION_UNITS) == 6
    for unit in PE_FIXED_FUNCTION_UNITS:
        assert unit in text
    # Figure 3: PyTorch 2.0 -> Triton -> runtime -> driver -> firmware.
    assert SOFTWARE_STACK_LAYERS[0].startswith("PyTorch 2.0")
    assert "Triton" in SOFTWARE_STACK_LAYERS[1]
    assert "driver" in SOFTWARE_STACK_LAYERS[3].lower()
    record("fig123_architecture", text)
