"""Section 5.2: overclocking at scale.

Paper: a study of ~3,000 chips x 10 tests at 1.1/1.25/1.35 GHz found a
negligible pass-rate decrease, so the fleet shipped at 1.35 GHz (a 23%
increase over the 1.1 GHz design point), yielding 5-20% end-to-end
throughput improvements in offline replay across models.
"""

import dataclasses

from conftest import once

from repro.arch import mtia2i_spec
from repro.models import figure6_models
from repro.perf import Executor
from repro.reliability import (
    PAPER_STUDY_CHIPS,
    STUDY_FREQUENCIES_HZ,
    overclock_throughput_gain,
    run_overclocking_study,
)


def _measure():
    study = run_overclocking_study(num_chips=PAPER_STUDY_CHIPS, seed=11)
    slow_chip = mtia2i_spec(frequency_hz=1.1e9)
    fast_chip = mtia2i_spec()
    gains = {}
    for model in figure6_models()[:5] + [figure6_models()[6]]:
        graph = model.graph()
        slow = Executor(slow_chip).run(model.graph(), model.batch, warmup_runs=1)
        fast = Executor(fast_chip).run(model.graph(), model.batch, warmup_runs=1)
        gains[model.name] = overclock_throughput_gain(slow, fast)
    return study, gains


def test_sec52_overclocking(benchmark, record):
    study, gains = once(benchmark, _measure)
    lines = ["pass rates over 3,000 chips x 10 tests:"]
    for frequency in STUDY_FREQUENCIES_HZ:
        lines.append(
            f"  {frequency / 1e9:.2f} GHz: {study.overall_pass_rate(frequency):.3%}"
        )
    drop = study.pass_rate_drop(STUDY_FREQUENCIES_HZ[0], STUDY_FREQUENCIES_HZ[-1])
    lines.append(f"pass-rate drop 1.10 -> 1.35 GHz: {drop:.3%} (paper: negligible)")
    lines.append("\nend-to-end throughput gain from 1.10 -> 1.35 GHz (replay):")
    for name, gain in gains.items():
        lines.append(f"  {name:5}: {gain:+.1%}")
    lines.append("(paper: 5-20% across evaluated models)")
    assert 0 <= drop < 0.005
    assert all(0.02 <= g <= 0.25 for g in gains.values())
    spread = max(gains.values()) - min(gains.values())
    assert spread > 0.02  # model-dependent, as the paper's range implies
    record("sec52_overclocking", "\n".join(lines))
