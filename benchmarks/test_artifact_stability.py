"""The benchmark artifacts are byte-stable across identical runs.

Two invocations of the ``record`` / ``record_json`` fixtures with the
same payload must produce byte-identical files — text ends with exactly
one trailing newline regardless of what the caller passed, and JSON is
sorted-key/fixed-indent.  This is what makes ``BENCH_results.json``
diffable run-over-run.
"""

import conftest


def _with_out_dir(monkeypatch, tmp_path):
    monkeypatch.setattr(conftest, "OUT_DIR", tmp_path)


def test_record_text_byte_stable(record, monkeypatch, tmp_path):
    _with_out_dir(monkeypatch, tmp_path)
    record("stability", "row 1\nrow 2")
    first = (tmp_path / "stability.txt").read_bytes()
    record("stability", "row 1\nrow 2")
    assert (tmp_path / "stability.txt").read_bytes() == first
    assert first.endswith(b"2\n")
    assert not first.endswith(b"\n\n")


def test_record_normalizes_trailing_newlines(record, monkeypatch, tmp_path):
    _with_out_dir(monkeypatch, tmp_path)
    record("bare", "text")
    record("padded", "text\n\n\n")
    assert (tmp_path / "bare.txt").read_bytes() == b"text\n"
    assert (tmp_path / "padded.txt").read_bytes() == b"text\n"


def test_record_json_byte_stable_across_key_order(
    record_json, monkeypatch, tmp_path
):
    _with_out_dir(monkeypatch, tmp_path)
    record_json("stability", {"beta": 2.0, "alpha": 1.0})
    first = (tmp_path / "stability.json").read_bytes()
    record_json("stability", {"alpha": 1.0, "beta": 2.0})
    assert (tmp_path / "stability.json").read_bytes() == first
    assert first.endswith(b"}\n")
