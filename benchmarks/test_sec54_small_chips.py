"""Section 5.4: advantages of smaller chips for inference.

Paper: production showed an *additional* 5-90% Perf/TCO and Perf/Watt
gain over offline replay, because capacity must buffer highly variable
user load and is allocated in whole-device quanta — larger, underutilized
devices waste more.  Measured here: the utilization gap between
provisioning a diurnal load with 85 W MTIA chips versus 700 W-class
GPUs, across service sizes.
"""

import numpy as np

from repro.fleet import production_gain, production_utilization


def _sweep():
    mtia_tput, gpu_tput = 100_000.0, 350_000.0
    rows = []
    for gpu_equivalents in (0.15, 0.3, 0.5, 1, 2, 4, 8, 32):
        load = gpu_equivalents * gpu_tput
        mtia_util = production_utilization(mtia_tput, load)
        gpu_util = production_utilization(gpu_tput, load)
        gain = production_gain(mtia_tput, gpu_tput, load)
        rows.append((gpu_equivalents, mtia_util, gpu_util, gain))
    return rows


def test_sec54_small_chips(benchmark, record):
    rows = benchmark(_sweep)
    lines = [
        f"{'service size':>12} {'MTIA util':>10} {'GPU util':>9} {'prod gain':>10}"
    ]
    gains = []
    for size, mtia_util, gpu_util, gain in rows:
        gains.append(gain)
        lines.append(
            f"{size:>10.1f}x {mtia_util.mean_utilization:10.0%} "
            f"{gpu_util.mean_utilization:9.0%} {gain:10.2f}x"
        )
    lines.append(
        "\nproduction gain = MTIA/GPU utilization ratio under peak-"
        "provisioned diurnal load (paper: 5% to 90% extra Perf/TCO)"
    )
    # Small and mid-size services show the gain; it shrinks at scale.
    assert max(gains) >= 1.2
    assert max(gains) <= 4.0
    assert gains[-1] <= gains[0]  # granularity matters less at scale
    # Gains in (or spanning) the paper's 5-90% band for several sizes.
    in_band = [g for g in gains if 1.03 <= g <= 1.9]
    assert len(in_band) >= 3
    record("sec54_small_chips", "\n".join(lines))
