"""Section 4.1: autotuning — ANN kernel lookup and request coalescing.

Paper: the performance database with approximate-nearest-neighbour
search 'reduced FC tuning time by up to 1000x while achieving kernel
performance within 5% of exhaustive FC tuning'; coalescing autotuning
typically reaches '>95% requests per batch'.
"""

from conftest import once

from repro.arch import mtia2i_spec
from repro.autotune import compare_tuners, tune_coalescing
from repro.serving import ModelJobProfile
from repro.tensors import GemmShape


def _measure():
    chip = mtia2i_spec()
    training = [
        GemmShape(m, k, n)
        for m in (128, 512, 2048, 8192)
        for k in (256, 1024, 4096)
        for n in (128, 512, 2048)
    ]
    queries = [
        GemmShape(700, 1700, 800),
        GemmShape(3000, 600, 2000),
        GemmShape(512, 26592, 2048),
        GemmShape(150, 300, 150),
        GemmShape(4096, 2048, 1024),
    ]
    tuner = compare_tuners(training, queries, chip)
    coalescing = tune_coalescing(
        ModelJobProfile(
            remote_time_s=0.002, merge_time_s=0.004, remote_jobs_per_batch=2,
            dispatch_overhead_s=0.0005,
        ),
        max_batch_samples=1024,
        windows_s=(0.005, 0.015, 0.030),
        parallel_windows=(2, 4),
    )
    return tuner, coalescing


def test_sec41_autotune(benchmark, record, record_json):
    tuner, coalescing = once(benchmark, _measure)
    best = coalescing.best
    lines = [
        f"FC tuning: exhaustive {tuner.exhaustive_evaluations} kernel "
        f"measurements vs ANN {tuner.ann_evaluations} -> "
        f"{tuner.evaluation_speedup:.0f}x fewer (paper: up to 1000x)",
        f"ANN quality gap: mean {tuner.mean_quality_gap:+.2%}, "
        f"max {tuner.max_quality_gap:+.2%} (paper: within 5%)",
        f"coalescing winner: window {best.config.window_s * 1e3:.0f} ms x "
        f"{best.config.max_parallel_windows} parallel -> fill "
        f"{best.outcome.mean_fill_fraction:.0%} at P99 "
        f"{best.outcome.p99_latency_s * 1e3:.0f} ms "
        "(paper: >95% requests per batch)",
    ]
    assert tuner.evaluation_speedup >= 500  # 'up to 1000x' order
    assert tuner.mean_quality_gap <= 0.05
    assert best.outcome.mean_fill_fraction > 0.6
    assert best.outcome.meets_slo
    record("sec41_autotune", "\n".join(lines))
    record_json("sec41_autotune", {
        "evaluation_speedup": tuner.evaluation_speedup,
        "mean_quality_gap": tuner.mean_quality_gap,
        "max_quality_gap": tuner.max_quality_gap,
        "best_fill_fraction": best.outcome.mean_fill_fraction,
        "best_p99_latency_s": best.outcome.p99_latency_s,
    })
