"""Section 3.3: ANS weight compression and the GZIP PCIe engine.

Paper: lossless ANS compression achieves up to a 50% ratio on weights,
but FP16 data does not compress efficiently (one reason adoption was
limited); the host-link GZIP engine runs at up to 25 GB/s and benefits
retrieval models that move large volumes over PCIe.
"""

from repro.arch import mtia2i_spec
from repro.compression import (
    ans_decode,
    ans_encode,
    fp16_weight_bytes,
    gzip_ratio,
    int8_weight_bytes,
    link_transfer,
)


def _measure():
    int8 = int8_weight_bytes(400_000)
    fp16 = fp16_weight_bytes(200_000)
    encoded_int8 = ans_encode(int8)
    encoded_fp16 = ans_encode(fp16)
    assert ans_decode(encoded_int8) == int8  # lossless
    assert ans_decode(encoded_fp16) == fp16
    chip = mtia2i_spec()
    # Retrieval payloads (candidate features) compress well with GZIP.
    payload = (b"\x00\x01\x02\x03" * 64 + b"\x00" * 192) * 4096
    transfer = link_transfer(
        len(payload) * 64, chip.host_link, gzip_ratio(payload)
    )
    return encoded_int8, encoded_fp16, transfer, gzip_ratio(payload)


def test_sec33_compression(benchmark, record):
    encoded_int8, encoded_fp16, transfer, payload_ratio = benchmark(_measure)
    lines = [
        f"ANS on INT8 weights: {encoded_int8.compression_ratio():.1%} saved "
        "(paper: up to 50%)",
        f"ANS on FP16 weights: {encoded_fp16.compression_ratio():.1%} saved "
        "(paper: 'does not compress efficiently')",
        f"GZIP PCIe on retrieval payload ({payload_ratio:.0%} compressible): "
        f"{transfer.speedup:.2f}x effective-link speedup, "
        f"{transfer.effective_bandwidth / 1e9:.0f} GB/s effective",
    ]
    assert 0.35 <= encoded_int8.compression_ratio() <= 0.55
    assert encoded_fp16.compression_ratio() < 0.15
    assert transfer.speedup > 1.2
    record("sec33_compression", "\n".join(lines))
