"""Section 5 chaos headline: the metastable retry storm, off vs on.

Paper: section 5's productionization story is surviving correlated
trouble — host hangs and firmware regressions (5.5), re-derived power
budgets running close to the wire (5.3), thermal emergencies (5.4).
Measured here: the two scenario pairs the ``sec5_chaos`` goldens pin.
The retry storm — a correlated three-host outage plus impatient
clients — is *metastable* with defenses off (post-clear goodput stays
collapsed after the outage clears, the tier never recovers) and
recovers within the first post-clear window with deadlines, retry
budgets, backoff, and circuit breakers armed.  The power-domain trip
shows the brownout ladder trading quality for availability: the
defended run's unavailability drops ~25x versus undefended.
"""

from conftest import once

from repro.chaos import CampaignConfig, run_scenario, scenario_by_name

PAIRED_SCENARIOS = ("retry_storm", "power_trip")


def _run():
    config = CampaignConfig()
    outcomes = {}
    for name in PAIRED_SCENARIOS:
        scenario = scenario_by_name(name)
        for defended in (False, True):
            outcomes[(name, defended)] = run_scenario(
                scenario, config, defended=defended
            )
    return config, outcomes


def test_sec5_chaos(benchmark, record, record_json):
    config, outcomes = once(benchmark, _run)

    storm_off = outcomes[("retry_storm", False)]
    storm_on = outcomes[("retry_storm", True)]
    trip_off = outcomes[("power_trip", False)]
    trip_on = outcomes[("power_trip", True)]

    lines = [
        f"chaos scenarios: replicas={config.replicas} "
        f"util={config.utilization:.0%} duration={config.duration_s:.0f}s "
        f"seed={config.seed}",
        "",
    ]
    lines.extend(o.summary() for o in outcomes.values())
    lines.append("")
    lines.append(
        "headline: undefended retry storm is metastable "
        f"(post-clear goodput {storm_off.post_clear_goodput_ratio:.1%}, "
        "never recovers); defended recovers in "
        f"{storm_on.time_to_recovery_s:.1f}s"
    )
    lines.append(
        "brownout: power-trip unavailability "
        f"{trip_off.unavailability:.2%} -> {trip_on.unavailability:.2%} "
        "with the degradation ladder armed"
    )

    # The acceptance shape: metastable off, recovered on.
    assert not storm_off.recovered
    assert storm_off.post_clear_goodput_ratio < 0.5
    assert storm_on.recovered
    assert storm_on.time_to_recovery_s <= 2.0
    assert storm_on.post_clear_goodput_ratio >= config.recovery_threshold
    # Brownout converts an availability hit into a quality hit.
    assert trip_on.unavailability < trip_off.unavailability / 5
    # Conservation held in every run (ClusterReport enforces it too).
    for outcome in outcomes.values():
        report = outcome.report
        assert report.served + report.shed + report.timed_out == report.offered

    record("sec5_chaos", "\n".join(lines))
    scalars = {}
    for outcome in outcomes.values():
        scalars.update(outcome.scalars())
    record_json("sec5_chaos", scalars)
