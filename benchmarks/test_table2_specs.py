"""Table 2: MTIA 2i versus MTIA 1 specifications.

Regenerates the spec table from the chip models and checks the paper's
generation-over-generation narrative: >3x peak FLOPS, >3x (3.38x) SRAM
bandwidth, 3.3x NoC bandwidth, 2x DRAM capacity, and the effective
~1.4x DRAM bandwidth figure.
"""

import pytest

from repro.arch import mtia1_spec, mtia2i_spec, spec_ratio
from repro.tensors import DType
from repro.units import fmt_bandwidth, fmt_bytes, fmt_flops


def test_table2_specs(benchmark, record):
    new, old = mtia2i_spec(ecc_enabled=False), mtia1_spec()
    ratios = benchmark(spec_ratio, new, old)

    lines = [f"{'':28} {'MTIA 2i':>22} {'MTIA 1':>22} {'ratio':>7}"]

    def row(label, value_new, value_old, fmt, ratio_key=None):
        ratio = ratios.get(ratio_key, value_new / value_old if value_old else 0)
        lines.append(f"{label:28} {fmt(value_new):>22} {fmt(value_old):>22} {ratio:7.2f}")

    row("frequency", new.frequency_hz, old.frequency_hz,
        lambda v: f"{v / 1e9:.2f} GHz", "frequency")
    row("GEMM INT8", new.peak_gemm_flops(DType.INT8), old.peak_gemm_flops(DType.INT8),
        fmt_flops, "gemm_flops")
    row("GEMM FP16", new.peak_gemm_flops(DType.FP16), old.peak_gemm_flops(DType.FP16),
        fmt_flops)
    row("local memory / PE", new.local_memory.capacity_bytes,
        old.local_memory.capacity_bytes, fmt_bytes, "local_memory_capacity")
    row("on-chip SRAM", new.sram.capacity_bytes, old.sram.capacity_bytes,
        fmt_bytes, "sram_capacity")
    row("SRAM bandwidth", new.sram.bandwidth_bytes_per_s, old.sram.bandwidth_bytes_per_s,
        fmt_bandwidth, "sram_bandwidth")
    row("NoC bandwidth", new.noc_bandwidth_bytes_per_s, old.noc_bandwidth_bytes_per_s,
        fmt_bandwidth, "noc_bandwidth")
    row("LPDDR5 capacity", new.dram.capacity_bytes, old.dram.capacity_bytes,
        fmt_bytes, "dram_capacity")
    row("LPDDR5 bandwidth", new.dram.bandwidth_bytes_per_s,
        old.dram.bandwidth_bytes_per_s, fmt_bandwidth, "dram_bandwidth")
    row("host link", new.host_link.bandwidth_bytes_per_s,
        old.host_link.bandwidth_bytes_per_s, fmt_bandwidth, "host_link_bandwidth")
    row("TDP", new.tdp_watts, old.tdp_watts, lambda v: f"{v:.0f} W")

    # The paper's headline ratios.
    assert ratios["gemm_flops"] > 3.0
    assert ratios["sram_bandwidth"] > 3.0
    assert ratios["noc_bandwidth"] == pytest.approx(3.3, rel=0.05)
    assert ratios["dram_capacity"] == pytest.approx(2.0)
    # Raw LPDDR spec ratio is 1.16x; the paper's ~1.4x is effective
    # bandwidth (controller efficiency + ECC handling improvements).
    assert 1.1 <= ratios["dram_bandwidth"] * 1.25 <= 1.6
    # Table 2's exact numbers.
    assert new.peak_gemm_flops(DType.INT8) == pytest.approx(354e12)
    assert new.peak_gemm_flops(DType.INT8, sparse=True) == pytest.approx(708e12)
    assert old.peak_gemm_flops(DType.INT8) == pytest.approx(102.4e12)

    record("table2_specs", "\n".join(lines))
