"""Learned performance surrogates with exact verification (section 4.1).

The verified-surrogate counterpart of the ANN tuning benchmark: a
pure-numpy regressor stack trained on seeded exact cost-model traces
ranks the full kernel-variant catalog per shape, the exact model
re-measures only the predicted top-k, and the deployed variant is
always exact-evaluated.  The benchmark pins the three claims that make
the pattern trustworthy:

* accuracy — holdout MAPE of the learned predictor (golden-pinned);
* soundness — the verified top-k search recovers the exhaustive argmin
  kernel time on every section 4.1 query shape;
* speed — one surrogate sweep point costs >=100x less wall time than
  one exact cost-model evaluation (asserted here; the measured ratio
  goes to the text artifact, not the scalar JSON, because wall time is
  machine-dependent).
"""

import time

from conftest import once

from repro.arch import mtia2i_spec
from repro.autotune import exhaustive_tune, measure_variant, surrogate_tune
from repro.kernels.gemm import default_variants
from repro.obs.metrics import MetricsRegistry
from repro.surrogate import train_gemm_surrogate
from repro.tensors.tensor import GemmShape

N_SAMPLES = 6000
SEED = 0
TOP_K = 16

# The section 4.1 tuning query shapes (matching test_sec41_autotune's
# sweep): mid/large ranking FCs, a TBE-adjacent skinny GEMM, a small
# shape, and a large square-ish one.
QUERY_SHAPES = (
    (700, 1700, 800),
    (3000, 600, 2000),
    (512, 26592, 2048),
    (150, 300, 150),
    (4096, 2048, 1024),
)


def _run():
    chip = mtia2i_spec()
    surrogate, reports = train_gemm_surrogate(
        chip, n_samples=N_SAMPLES, seed=SEED, include_energy=True
    )
    variants = default_variants()
    registry = MetricsRegistry()

    matches = 0
    rows = []
    for mkn in QUERY_SHAPES:
        shape = GemmShape(*mkn)
        gold = exhaustive_tune(shape, chip, variants=variants)
        verified = surrogate_tune(
            shape, chip, surrogate, variants=variants, top_k=TOP_K,
            registry=registry,
        )
        match = abs(verified.kernel_time_s - gold.kernel_time_s) <= (
            1e-12 * gold.kernel_time_s
        )
        matches += match
        rows.append((mkn, gold, verified, match))

    # Wall-clock per point: exact cost model vs one factorized sweep.
    shapes = [GemmShape(*mkn) for mkn in QUERY_SHAPES]
    started = time.perf_counter()
    for shape in shapes:
        for variant in variants:
            measure_variant(shape, variant, chip)
    exact_s = time.perf_counter() - started
    mkns = [(s.m, s.k, s.n) for s in shapes]
    surrogate.predict_time_grid(mkns, variants)  # warm the variant cache
    fast_s = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        surrogate.predict_time_grid(mkns, variants)
        fast_s = min(fast_s, time.perf_counter() - started)
    points = len(shapes) * len(variants)
    return surrogate, reports, registry, rows, matches, exact_s, fast_s, points


def test_sec41_surrogate(benchmark, record, record_json):
    (surrogate, reports, registry, rows, matches, exact_s, fast_s,
     points) = once(benchmark, _run)

    latency = reports["latency"]
    energy = reports["energy"]
    speedup = exact_s / fast_s
    counters = registry.snapshot()["counters"]

    lines = [
        f"GEMM surrogate: {N_SAMPLES} seeded exact traces, "
        f"{latency.n_train} train / {latency.n_holdout} holdout",
        f"{'target':>8}  {'MAPE':>7}  {'P95 rel':>8}  {'max rel':>8}",
    ]
    for name, report in (("latency", latency), ("energy", energy)):
        lines.append(
            f"{name:>8}  {report.mape_holdout:7.2%}  "
            f"{report.p95_rel_error_holdout:8.2%}  "
            f"{report.max_rel_error_holdout:8.2%}"
        )
    lines.append("")
    lines.append(f"verified tuning, top-{TOP_K} of {points // len(rows)} "
                 f"variants exact-measured:")
    for mkn, gold, verified, match in rows:
        lines.append(
            f"  {str(mkn):>20}  exact {gold.kernel_time_s * 1e6:8.2f} us  "
            f"verified {verified.kernel_time_s * 1e6:8.2f} us  "
            f"{'match' if match else 'MISS'}"
        )
    lines.append("")
    lines.append(
        f"per-point wall cost over the {points}-point sweep: exact "
        f"{exact_s / points * 1e6:.2f} us, surrogate "
        f"{fast_s / points * 1e9:.1f} ns ({speedup:.0f}x)"
    )

    # Accuracy: the issue's <=10% holdout MAPE bar, with wide margin.
    assert latency.mape_holdout <= 0.10
    assert energy.mape_holdout <= 0.10
    assert latency.p95_rel_error_holdout <= 0.10
    # Soundness: every query shape recovers the exhaustive argmin time,
    # and every deployed time came from the exact model (top-k evals).
    assert matches == len(QUERY_SHAPES)
    for _, _, verified, _ in rows:
        assert verified.evaluations == TOP_K
    assert counters["surrogate.kernel.exact_evals"] == TOP_K * len(rows)
    # Speed: >=100x cheaper per evaluation than the exact kernel model.
    assert speedup >= 100.0, f"surrogate sweep only {speedup:.0f}x faster"

    record("sec41_surrogate", "\n".join(lines))
    # Deterministic scalars only — the wall-clock ratio stays in the
    # text artifact and the assertion above.
    record_json("sec41_surrogate", {
        "holdout_mape_latency": latency.mape_holdout,
        "holdout_mape_energy": energy.mape_holdout,
        "p95_rel_error_latency": latency.p95_rel_error_holdout,
        "verified_argmin_match": matches / len(QUERY_SHAPES),
        "eval_reduction": points / len(rows) / TOP_K,
        "train_rows": float(latency.n_train + latency.n_holdout),
    })
