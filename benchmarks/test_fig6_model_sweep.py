"""Figure 6 + the headline claim: Perf/Watt and Perf/TCO across nine
production models (section 7), averaging a ~44% TCO reduction (section 1).

Paper shape: the highest efficiency lands on LC models (LC1 and LC5),
the lowest on HC models (HC2 and HC4); every launched model beats the
GPU on Perf/TCO; Perf/Watt is the harder metric; the fleet-wide average
TCO reduction is 44%.
"""

import numpy as np
from conftest import once

from repro.core import evaluate_model
from repro.models import figure6_models


def _sweep():
    return [(m, evaluate_model(m)) for m in figure6_models()]


def test_fig6_model_sweep(benchmark, record):
    results = once(benchmark, _sweep)
    lines = [
        f"{'model':5} {'MF/sample':>9} {'batch':>6} {'accel':>5} "
        f"{'Perf/TCO':>8} {'Perf/Watt':>9}  (replay PPT/PPW)"
    ]
    ppt = {}
    ppw = {}
    for model, evaluation in results:
        mf = model.graph().flops_per_sample(model.batch) / 1e6
        ppt[model.name] = evaluation.production_perf_per_tco
        ppw[model.name] = evaluation.production_perf_per_watt
        lines.append(
            f"{model.name:5} {mf:9.0f} {model.batch:>6} {model.accelerators:>5} "
            f"{evaluation.production_perf_per_tco:8.2f} "
            f"{evaluation.production_perf_per_watt:9.2f}  "
            f"({evaluation.replay.perf_per_tco_ratio:.2f}/"
            f"{evaluation.replay.perf_per_watt_ratio:.2f})"
        )
    mean_ppt = float(np.mean(list(ppt.values())))
    mean_ppw = float(np.mean(list(ppw.values())))
    reduction = 1.0 - 1.0 / mean_ppt
    lines += [
        "",
        f"mean Perf/TCO {mean_ppt:.2f}x, mean Perf/Watt {mean_ppw:.2f}x",
        f"average TCO reduction: {reduction:.1%} (paper: 44%)",
    ]

    # Shape assertions from section 7's narrative.
    # Highest efficiency on LC1 and LC5 among the LC models; HC1 (the
    # most-optimized HC model) may tie them, as its compute-bound GEMMs
    # are MTIA-ideal.
    lc_ranked = sorted(
        [n for n in ppt if n.startswith("LC")], key=ppt.get, reverse=True
    )
    assert set(lc_ranked[:2]) == {"LC1", "LC5"}
    assert max(ppt.values()) <= ppt["LC1"] * 1.05
    # Lowest efficiency on HC models, HC2/HC4 at the bottom.
    worst_two = sorted(ppt, key=ppt.get)[:2]
    assert set(worst_two) <= {"HC2", "HC3", "HC4"}
    assert "HC4" in worst_two
    assert all(v > 0.9 for v in ppt.values())  # MTIA wins everywhere
    # Headline: ~44% average TCO reduction.
    assert 0.35 <= reduction <= 0.55
    # Perf/Watt is harder than Perf/TCO (section 7's closing remark).
    assert mean_ppw < mean_ppt
    record("fig6_model_sweep", "\n".join(lines))
