"""Automated model-chip co-design search (section 6 forward look).

The "MTIA 3" proposal generator: seeded annealing chains explore the
chip design grid at surrogate fidelity, successive-halving rungs
promote the Pareto-best survivors through exact device and serving
evaluation, and the reported front carries only exact-evaluated points
plus the MTIA 1 / MTIA 2i anchors.  The benchmark pins the claims the
subsystem rests on:

* every point on the returned front is exact-evaluated (the verified
  pattern at subsystem scale);
* the sanity anchor holds — MTIA 2i dominates MTIA 1 on all three
  objectives, recovering the generational step the paper reports;
* a seeded rerun reproduces the result bit for bit;
* the surrogate rung pays: candidates scored per exact evaluation
  spent stays well above 1.
"""

from conftest import once

from repro.codesign import (
    SearchConfig,
    front_table,
    proposal_summary,
    result_scalars,
    run_codesign_search,
    smoke_space,
)
from repro.models import figure6_models
from repro.obs.metrics import MetricsRegistry

SEED = 0
MODELS = ("LC1", "LC3", "HC1")
CONFIG = SearchConfig(
    seed=SEED, iterations=40, device_rung_keep=10, serving_rung_keep=5,
    train_chips=10,
)
DURATION_S = 4.0


def _search(registry=None):
    models = [m for m in figure6_models() if m.name in MODELS]
    return run_codesign_search(
        smoke_space(), models, CONFIG, duration_s=DURATION_S,
        registry=registry,
    )


def _run():
    registry = MetricsRegistry()
    result = _search(registry)
    rerun = _search()
    return result, rerun, registry


def test_sec6_codesign(benchmark, record, record_json):
    result, rerun, registry = once(benchmark, _run)

    # The verified pattern: nothing on the front is a prediction.
    assert result.front
    assert result.all_front_exact
    assert all(e.fidelity == "serving" for e in result.front)
    # Sanity anchor: the real generational step is recovered.
    assert result.mtia2_dominates_mtia1
    # Bit-for-bit seeded determinism, the whole result object.
    assert rerun == result
    # The surrogate rung buys a real reduction in exact evaluations.
    assert result.eval_reduction >= 2.0
    assert result.candidates_scored <= result.space_size
    # The proposal exists and beats the MTIA 2i anchor on perf.
    assert result.proposal is not None
    assert result.proposal.perf > result.anchors[1].perf
    counters = registry.snapshot()["counters"]
    assert counters["codesign.evals.serving"] == len(
        result.serving_evals
    ) + len(result.anchors)

    text = "\n".join([
        front_table(result),
        "",
        proposal_summary(result),
        "",
        f"seeded rerun bit-for-bit identical: {rerun == result}",
    ])
    record("sec6_codesign", text)
    record_json("sec6_codesign", result_scalars(result))
