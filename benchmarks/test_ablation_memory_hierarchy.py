"""Ablation: MTIA 2i's memory-hierarchy design choices (section 3.6).

The paper's central bet is a large SRAM + LPDDR instead of HBM.  This
ablation re-runs the performance model with the design knobs moved:

* **SRAM capacity sweep** (128 / 256 / 512 MB): the deployed 256 MB is
  past the knee for LC models, while HC models would still gain — the
  'increase peak FLOPS [and SRAM] for future generations' direction of
  section 8.
* **Counterfactual HBM** (2 TB/s off-chip): HC models speed up strongly
  and Llama decode becomes viable — quantifying exactly what the
  LPDDR cost saving gives up, as section 3.6/8 discuss.
"""

import dataclasses

from conftest import once

from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import MemoryLevelSpec
from repro.models import hc3, lc1
from repro.perf import DECODE_REQUIREMENT_S, Executor, evaluate_llm, llama2_7b
from repro.units import GB, MiB, TB


def _with_sram(chip, capacity_bytes):
    sram = dataclasses.replace(chip.sram, capacity_bytes=capacity_bytes)
    return dataclasses.replace(chip, sram=sram)


def _with_hbm(chip):
    hbm = MemoryLevelSpec(
        name="hbm_counterfactual",
        capacity_bytes=chip.dram.capacity_bytes,
        bandwidth_bytes_per_s=2 * TB,
        access_latency_s=400e-9,
    )
    return dataclasses.replace(chip, dram=hbm)


def _measure():
    base = mtia2i_spec()
    results = {"sram": {}, "hbm": {}}
    for capacity in (128 * MiB, 256 * MiB, 512 * MiB):
        row = {}
        for model in (lc1(), hc3()):
            chip = _with_sram(base, capacity)
            report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
            row[model.name] = report.throughput_samples_per_s
        results["sram"][capacity] = row
    for model in (lc1(), hc3()):
        lpddr = Executor(base).run(model.graph(), model.batch, warmup_runs=1)
        hbm = Executor(_with_hbm(base)).run(model.graph(), model.batch, warmup_runs=1)
        results["hbm"][model.name] = (
            lpddr.throughput_samples_per_s,
            hbm.throughput_samples_per_s,
        )
    results["llm_lpddr"] = evaluate_llm(llama2_7b(), base)
    results["llm_hbm"] = evaluate_llm(llama2_7b(), _with_hbm(base))
    return results


def test_ablation_memory_hierarchy(benchmark, record):
    results = once(benchmark, _measure)
    lines = ["SRAM capacity sweep (per-chip samples/s):",
             f"{'SRAM':>8} {'LC1':>12} {'HC3':>12}"]
    for capacity, row in sorted(results["sram"].items()):
        lines.append(
            f"{capacity // (1 << 20):>6}MB {row['LC1']:12,.0f} {row['HC3']:12,.0f}"
        )
    lines.append("\nLPDDR vs counterfactual HBM (2 TB/s):")
    for name, (lpddr, hbm) in results["hbm"].items():
        lines.append(
            f"  {name}: {lpddr:,.0f} -> {hbm:,.0f} samples/s ({hbm / lpddr:.2f}x)"
        )
    llm_l, llm_h = results["llm_lpddr"], results["llm_hbm"]
    lines.append(
        f"\nLlama2-7B decode: LPDDR {llm_l.decode_latency_s * 1e3:.0f} ms "
        f"(viable: {llm_l.viable}) vs HBM {llm_h.decode_latency_s * 1e3:.0f} ms "
        f"(viable: {llm_h.viable})"
    )

    sram = results["sram"]
    # LC1 fits at every size — the sweep barely moves it.
    lc_gain = sram[512 * (1 << 20)]["LC1"] / sram[128 * (1 << 20)]["LC1"]
    assert lc_gain < 1.5
    # HC3 keeps gaining with SRAM — its weights do not fit.
    hc_gain = sram[512 * (1 << 20)]["HC3"] / sram[128 * (1 << 20)]["HC3"]
    assert hc_gain > lc_gain
    assert sram[512 * (1 << 20)]["HC3"] >= sram[256 * (1 << 20)]["HC3"] * 0.99
    # HBM rescues HC3 far more than LC1, and makes decode viable.
    lc_hbm = results["hbm"]["LC1"][1] / results["hbm"]["LC1"][0]
    hc_hbm = results["hbm"]["HC3"][1] / results["hbm"]["HC3"][0]
    assert hc_hbm > lc_hbm
    assert hc_hbm > 1.5
    assert not llm_l.decode_meets_latency and llm_h.decode_meets_latency
    record("ablation_memory_hierarchy", "\n".join(lines))
