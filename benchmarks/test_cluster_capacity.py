"""Cluster capacity planning: hosts vs QPS at the P99 SLO (sections 4-5).

The fleet-level provisioning artifact: for each front-door routing
policy, the replicas a ranking model needs to hold its P99 SLO across
offered request rates, plus the two policy-ordering shapes the golden
values pin — power-of-two-choices beating round-robin on tail latency
at high utilization, and locality-aware routing eliminating cross-host
embedding traffic that queue-blind JSQ pays for.
"""

from conftest import once

from repro.cluster import (
    capacity_sweep,
    default_service_model,
    locality_comparison,
    policy_comparison,
)

QPS_POINTS = (100.0, 200.0, 300.0)
TARGET_UTILIZATION = 0.85


def _run():
    service = default_service_model()
    sweep = capacity_sweep(service, qps_points=QPS_POINTS, duration_s=30.0)
    tails = policy_comparison(
        service, target_utilization=TARGET_UTILIZATION, duration_s=60.0
    )
    shards = locality_comparison(service, duration_s=60.0)
    return service, sweep, tails, shards


def test_cluster_capacity(benchmark, record, record_json):
    service, sweep, tails, shards = once(benchmark, _run)

    po2 = tails["po2"]
    round_robin = tails["round_robin"]
    jsq_sharded = shards["jsq"]
    locality = shards["locality"]

    lines = [sweep.table(), ""]
    lines.append(
        f"{'policy':14} {'P99 latency':>12} {'utilization':>12}"
        f"  (identical traffic, {TARGET_UTILIZATION:.0%} target)"
    )
    for name, report in tails.items():
        lines.append(
            f"{name:14} {report.p99_latency_s * 1e3:9.1f} ms "
            f"{report.utilization:11.0%}"
        )
    lines.append("")
    lines.append(
        f"cross-host embedding traffic: jsq "
        f"{jsq_sharded.cross_host_fraction:.1%} vs locality-aware "
        f"{locality.cross_host_fraction:.1%}"
    )

    # Shape checks — the two orderings the issue pins as golden.
    assert all(report.utilization >= 0.80 for report in tails.values())
    assert po2.p99_latency_s < round_robin.p99_latency_s
    assert locality.cross_host_fraction < jsq_sharded.cross_host_fraction
    assert jsq_sharded.cross_host_fraction > 0.5
    assert locality.cross_host_fraction < 0.05
    # Queue-aware policies never need more replicas than round-robin.
    for qps in QPS_POINTS:
        rr_needed = sweep.point("round_robin", qps).replicas
        assert sweep.point("po2", qps).replicas <= rr_needed
        assert sweep.point("jsq", qps).replicas <= rr_needed
    # Conservation held in every run (ClusterReport enforces it too).
    for report in list(tails.values()) + list(shards.values()):
        assert report.served + report.shed == report.offered

    record("cluster_capacity", "\n".join(lines))
    scalars = dict(sweep.scalars())
    scalars.update({
        "mean_service_s": service.mean_service_s,
        "p99_round_robin_s": round_robin.p99_latency_s,
        "p99_po2_s": po2.p99_latency_s,
        "p99_jsq_s": tails["jsq"].p99_latency_s,
        "cross_host_fraction_jsq": jsq_sharded.cross_host_fraction,
        "cross_host_fraction_locality": locality.cross_host_fraction,
    })
    record_json("cluster_capacity", scalars)
