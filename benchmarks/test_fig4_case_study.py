"""Figure 4: the case-study model's Perf/TCO journey (section 6).

Paper: continuous optimization took a key ranking model from ~50% of the
GPU baseline's Perf/TCO to ~180%, with +2% Perf/Watt, over eight months
during which the model grew from 140 to 940 MFLOPS/sample.

Measured here: the staged journey (each stage exercising the named
mechanism).  Shape checks: the initial port is far below parity; kernel
tuning + fusions is the largest single gain; model evolution resets the
curve; the rejected change dips; IBB deferral and TBE consolidation
recover it; the launched configuration beats the GPU on Perf/TCO with
near-parity Perf/Watt.
"""

from conftest import once

from repro.core.casestudy import run_case_study


def test_fig4_case_study(benchmark, record, record_json):
    stages = once(benchmark, run_case_study)
    lines = [
        f"{'month':>5}  {'variant':7}  {'stage':36}  {'Perf/TCO':>8}  {'Perf/Watt':>9}"
    ]
    for stage in stages:
        lines.append(
            f"{stage.month:>5}  {stage.variant:7}  {stage.label:36}  "
            f"{stage.perf_per_tco:8.2f}  {stage.perf_per_watt:9.2f}"
        )
    by_label = {s.label: s for s in stages}
    first, last = stages[0], stages[-1]

    # Starts well below parity (paper: ~0.5x).
    assert first.perf_per_tco < 0.8
    # Ends clearly above parity (paper: ~1.8x; measured lands lower
    # because our synthetic HC3 is more weight-streaming-bound — see
    # EXPERIMENTS.md).
    assert last.perf_per_tco > 1.3
    assert last.perf_per_tco > 2.2 * first.perf_per_tco
    # Final Perf/Watt near parity (paper: +2%).
    assert 0.9 <= last.perf_per_watt <= 1.35

    # The rejected model change dips below the adopted alternative.
    evolved = by_label["model evolves to 940 MF/sample"]
    rejected = by_label["rejected: 3x remote inputs"]
    assert rejected.perf_per_tco < evolved.perf_per_tco

    # IBB deferral recovers ~17% throughput (paper: 17%).
    deferred = by_label["deferred In-Batch Broadcast"]
    ibb_gain = deferred.mtia_throughput / evolved.mtia_throughput - 1
    assert 0.08 <= ibb_gain <= 0.25
    lines.append(f"\nIBB deferral throughput gain: {ibb_gain:+.1%} (paper: +17%)")
    lines.append(
        f"journey: {first.perf_per_tco:.2f}x -> {last.perf_per_tco:.2f}x "
        "(paper: ~0.5x -> ~1.8x)"
    )
    record("fig4_case_study", "\n".join(lines))
    record_json("fig4_case_study", {
        "initial_perf_per_tco": first.perf_per_tco,
        "final_perf_per_tco": last.perf_per_tco,
        "final_perf_per_watt": last.perf_per_watt,
        "ibb_throughput_gain": ibb_gain,
    })
