"""Sections 5.2-5.3, time domain: DVFS with thermal feedback, per-chip
power capping, budget re-derivation, and power-limited capacity.

Paper: the overclocking study shipped the fleet at 1.35 GHz for 5-20%
end-to-end gains; the rack budget was re-derived from two production P90
measurements for a ~40% reduction, with fine-grained allocation across
24 small chips smoothing load spikes.  Here the same claims are replayed
with the loop closed — governed frequencies, RC-network junction
temperatures, leakage feedback, and the cluster tier coupled to the
power budget.
"""

from conftest import once

from repro.cluster import default_service_model
from repro.models import figure6_models
from repro.power import (
    calibrate_throughput,
    capping_study,
    overclock_with_thermal_feedback,
    power_limited_capacity_sweep,
    time_domain_provisioning,
)


def _measure():
    # Throughput-vs-frequency calibrated by the executor on a ranking
    # model (memory traffic does not scale with clock).
    curve = calibrate_throughput(figure6_models()[0])
    dvfs = overclock_with_thermal_feedback(
        curve, num_chips=24, duration_s=600.0, seed=0
    )
    capping = capping_study(duration_s=300.0, seed=0)
    provisioning = time_domain_provisioning(
        num_servers=20, duration_s=300.0, seed=0
    )
    sweep = power_limited_capacity_sweep(
        default_service_model(),
        server_budgets_w=(1400.0, 2000.0, 2300.0, 2600.0),
        replicas=12,
        duration_s=10.0,
        seed=0,
    )
    return curve, dvfs, capping, provisioning, sweep


def test_sec52_sec53_power(benchmark, record, record_json):
    curve, dvfs, capping, provisioning, sweep = once(benchmark, _measure)

    lines = ["governed DVFS (24 chips, RC thermal feedback, shared airflow):"]
    lines.append(
        f"  fleet gain over 1.10 GHz design point: mean {dvfs.mean_gain:+.1%} "
        f"(min {dvfs.min_gain:+.1%}, max {dvfs.max_gain:+.1%})"
    )
    lines.append(
        f"  mean governed frequency {dvfs.mean_frequency_hz / 1e9:.3f} GHz, "
        f"peak junction {dvfs.peak_junction_c:.1f} C, "
        f"{dvfs.thermal_throttles} thermal throttle events"
    )
    lines.append("  (paper: 5-20% end-to-end gain at 1.35 GHz)")

    lines.append("\nserver power capping at equal budget "
                 f"({capping.budget_w:.0f} W accelerator budget):")
    for outcome in (capping.per_chip, capping.server_level):
        lines.append(
            f"  {outcome.policy:12} p99 deficit {outcome.p99_deficit:6.2%}  "
            f"delivered {outcome.delivered_fraction:.2%}  "
            f"cap violations {outcome.cap_violation_fraction:.1%}"
        )
    lines.append("  (paper: fine-grained allocation smooths load spikes)")

    lines.append("\nrack budget re-derivation (time-domain telemetry):")
    lines.append(
        f"  initial (stress) {provisioning.initial_budget_w:7.0f} W -> "
        f"revised {provisioning.revised_budget_w:7.0f} W "
        f"({provisioning.reduction_fraction:.0%} reduction; paper: ~40%)"
    )

    lines.append("\npower-limited capacity at the P99 SLO:")
    for line in sweep.table().splitlines():
        lines.append(f"  {line}")
    lines.append(f"  knee: {sweep.knee_budget_w:.0f} W "
                 "(watts past the full ladder buy nothing)")

    # Acceptance bands from the paper.
    assert 0.05 <= dvfs.mean_gain <= 0.20
    assert dvfs.thermal_throttles > 0
    assert capping.per_chip.p99_deficit < capping.server_level.p99_deficit
    assert capping.per_chip.cap_violation_fraction == 0.0
    assert 0.30 <= provisioning.reduction_fraction <= 0.50
    qps = [p.max_qps for p in sweep.points]
    assert all(a <= b + 1e-9 for a, b in zip(qps, qps[1:]))
    assert sweep.points[-1].max_qps > sweep.points[0].max_qps
    top = curve.frequencies_hz[-1]
    assert curve.relative(top) <= top / curve.frequencies_hz[0] + 1e-9

    record("sec52_sec53_power", "\n".join(lines))
    record_json("sec52_sec53_power", {
        "dvfs_mean_gain": dvfs.mean_gain,
        "dvfs_mean_frequency_ghz": dvfs.mean_frequency_hz / 1e9,
        "dvfs_peak_junction_c": dvfs.peak_junction_c,
        "per_chip_p99_deficit": capping.per_chip.p99_deficit,
        "server_level_p99_deficit": capping.server_level.p99_deficit,
        "provisioning_reduction_fraction": provisioning.reduction_fraction,
        "sweep_knee_budget_w": sweep.knee_budget_w,
        "sweep_max_qps": sweep.points[-1].max_qps,
    })
