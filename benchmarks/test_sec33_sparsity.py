"""Section 3.3: 2:4 weight sparsity — potential 2x, unused in production.

Paper: the DPE's 2:4 sparsity "could potentially double effective FLOPS.
However ... sparsity must apply to the largest weight matrices, which
are often used in the most critical layers that impact model quality.
Many of our models lack sufficient sparsity in these matrices, leading
to accuracy degradation.  Therefore, this feature is not yet widely used
in production."

Measured here: the hardware speedup is real (2x on the DPE), but
magnitude-pruning dense-trained weights discards ~25% of weight mass and
fails the launch-quality A/B gate; only sparsity-aware-trained weights
prune acceptably.
"""

import numpy as np

from repro.arch import mtia2i_spec
from repro.fleet import SyntheticCtrModel, run_ab_test
from repro.kernels import estimate_gemm
from repro.quant import (
    prune_2_4,
    satisfies_2_4,
    sparse_trained_weights,
    sparsity_impact,
)
from repro.tensors import DType, GemmShape


def _measure():
    chip = mtia2i_spec()
    shape = GemmShape(2048, 2048, 2048)
    dense_est = estimate_gemm(shape, chip, DType.FP16)
    sparse_est = estimate_gemm(shape, chip, DType.FP16, sparse=True)
    speedup = dense_est.compute_s / sparse_est.compute_s

    rng = np.random.default_rng(0)
    dense_trained = rng.normal(0, 0.05, size=(1024, 512))
    impact_dense = sparsity_impact(dense_trained)
    impact_sparse = sparsity_impact(sparse_trained_weights(1024, 512))

    # Model-quality gate: serve predictions through a pruned logit path.
    model = SyntheticCtrModel(num_features=64, seed=5)

    def pruned_backend(logits: np.ndarray) -> np.ndarray:
        # Approximate the pruned model: logits recomputed with 2:4-pruned
        # feature weights (drops half the weights' groups' small entries).
        return logits * (1 - impact_dense.pruned_mass_fraction)

    ab = run_ab_test(
        model,
        control=model.exact_backend(),
        treatment=model.backend_with(pruned_backend),
        num_requests=100_000,
    )
    return speedup, impact_dense, impact_sparse, ab


def test_sec33_sparsity(benchmark, record):
    speedup, impact_dense, impact_sparse, ab = benchmark(_measure)
    lines = [
        f"DPE 2:4 sparse GEMM speedup: {speedup:.2f}x (paper: potential 2x)",
        "",
        "pruning a dense-trained 1024x512 FC weight:",
        f"  natural sparsity:        {impact_dense.natural_sparsity:.1%}",
        f"  weight mass discarded:   {impact_dense.pruned_mass_fraction:.1%}",
        f"  output error:            {impact_dense.relative_output_error:.1%} "
        f"-> acceptable: {impact_dense.acceptable()}",
        "pruning a sparsity-aware-trained weight:",
        f"  output error:            {impact_sparse.relative_output_error:.1%} "
        f"-> acceptable: {impact_sparse.acceptable(0.05)}",
        "",
        f"A/B gate with pruned serving path: NE delta {ab.ne_delta:+.4f} "
        f"-> quality parity: {ab.quality_parity()}",
        "(paper: accuracy degradation -> feature not widely used)",
    ]
    assert speedup > 1.9  # the hardware delivers its 2x
    assert impact_dense.natural_sparsity < 0.1  # dense models lack sparsity
    assert impact_dense.pruned_mass_fraction > 0.15
    assert not impact_dense.acceptable()  # quality loss too high
    assert impact_sparse.relative_output_error < impact_dense.relative_output_error
    assert not ab.quality_parity()  # the launch gate rejects it
    assert satisfies_2_4(prune_2_4(np.random.default_rng(1).normal(size=(64, 8))))
    record("sec33_sparsity", "\n".join(lines))
