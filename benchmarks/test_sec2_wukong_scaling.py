"""Section 2: late-stage ranking spans >60x complexity (Wukong scaling).

Paper: "Wukong extends DHEN by scaling models across two orders of
magnitude ... significant diversity in complexity and size remains among
late-stage ranking models in production, with over 60x variation."
Section 3.6 adds the consequence: performance drops sharply once a
model's working set exceeds SRAM.

Measured here: a Wukong-style scaling sweep (one scale knob growing
width, depth, and embeddings together) spans >60x FLOPs/sample, and
MTIA 2i's sustained-FLOPS fraction falls off exactly where the dense
weights outgrow the SRAM — the efficiency cliff that defines the chip's
sweet spot.
"""

import dataclasses

from conftest import once

from repro.arch import mtia2i_spec
from repro.models import build_wukong, scaling_sweep
from repro.perf import Executor


def _all_sram_counterfactual(chip):
    """The same chip with off-chip memory as fast as its SRAM — the
    ceiling a model would reach if nothing ever spilled."""
    fast_dram = dataclasses.replace(
        chip.dram, bandwidth_bytes_per_s=chip.sram.bandwidth_bytes_per_s
    )
    return dataclasses.replace(chip, dram=fast_dram)


def _sweep():
    chip = mtia2i_spec()
    ideal_chip = _all_sram_counterfactual(chip)
    rows = []
    for config in scaling_sweep(scales=(1.0, 4.0, 16.0, 64.0)):
        graph = build_wukong(config)
        mf = graph.flops_per_sample(config.batch) / 1e6
        dense_mb = (graph.weight_bytes() - graph.embedding_bytes()) / 1e6
        report = Executor(chip).run(graph, config.batch, warmup_runs=1)
        ideal = Executor(ideal_chip).run(build_wukong(config), config.batch, warmup_runs=1)
        retention = (
            report.throughput_samples_per_s / ideal.throughput_samples_per_s
        )
        rows.append((config.scale, mf, dense_mb, retention,
                     report.throughput_samples_per_s))
    return rows


def test_sec2_wukong_scaling(benchmark, record):
    rows = once(benchmark, _sweep)
    lines = [
        f"{'scale':>6} {'MF/sample':>10} {'dense MB':>9} {'vs all-SRAM':>11} "
        f"{'samples/s':>12}"
    ]
    for scale, mf, dense_mb, retention, throughput in rows:
        lines.append(
            f"{scale:>6g} {mf:>10.0f} {dense_mb:>9.0f} {retention:>11.0%} "
            f"{throughput:>12,.0f}"
        )
    flops = [r[1] for r in rows]
    retention = [r[3] for r in rows]
    lines.append(
        f"\ncomplexity range: {flops[-1] / flops[0]:.0f}x "
        "(paper: two orders of magnitude; >60x among production models); "
        "'vs all-SRAM' = throughput retained relative to a counterfactual "
        "chip whose off-chip memory matches SRAM bandwidth"
    )
    # The sweep really spans the published range.
    assert flops[-1] / flops[0] > 60
    # While dense weights fit on chip (scales 1-4, <300 MB) most of the
    # all-SRAM ceiling is retained (the residual gap is the sparse TBE
    # tail, which always spills); once they outgrow the 256 MB SRAM
    # (scales 16+), performance 'drops sharply' as section 3.6 says.
    fitting = [r for (scale, mf, mb, r, t) in rows if mb <= 300]
    spilling = [r for (scale, mf, mb, r, t) in rows if mb > 300]
    assert min(fitting) > 0.7
    assert max(spilling) < 0.6
    assert min(fitting) - max(spilling) > 0.15  # a sharp drop, not a slope
    record("sec2_wukong_scaling", "\n".join(lines))
