"""Section 5.6: large-scale A/B testing in live production.

Paper: the same trained model is served on MTIA 2i and GPUs with traffic
split between them; comparisons cover business metrics, normalized
entropy, and prediction-value distributions.  The tests confirmed
comparable model quality.  Measured here: the harness on a synthetic CTR
model — the MTIA-numerics path (FP16 with LUT-approximated sigmoid)
passes the parity gate; a deliberately broken backend fails it.
"""

import numpy as np

from repro.fleet import SyntheticCtrModel, run_ab_test
from repro.pe import lut_approximation


def _measure():
    model = SyntheticCtrModel(num_features=64, seed=3)

    def mtia_numerics(logits: np.ndarray) -> np.ndarray:
        # FP16 accumulate + the SIMD Engine's LUT sigmoid, inverted back
        # to logits so the harness's sigmoid reproduces the LUT output.
        fp16_logits = logits.astype(np.float16).astype(np.float64)
        probs = lut_approximation("sigmoid", fp16_logits)
        probs = np.clip(probs, 1e-9, 1 - 1e-9)
        return np.log(probs / (1 - probs))

    parity = run_ab_test(
        model,
        control=model.exact_backend(),
        treatment=model.backend_with(mtia_numerics),
        num_requests=200_000,
    )
    broken = run_ab_test(
        model,
        control=model.exact_backend(),
        treatment=model.backend_with(lambda x: 1.5 * x + 0.8),
        num_requests=200_000,
    )
    return parity, broken


def test_sec56_ab_testing(benchmark, record):
    parity, broken = benchmark(_measure)
    lines = [
        "MTIA-numerics backend (FP16 + LUT sigmoid) vs FP32 control:",
        f"  NE delta {parity.ne_delta:+.5f}, KS {parity.prediction_ks:.4f}, "
        f"revenue proxy x{parity.revenue_proxy_ratio:.4f} -> "
        f"parity: {parity.quality_parity()}",
        "systematically-biased backend (negative control):",
        f"  NE delta {broken.ne_delta:+.5f}, KS {broken.prediction_ks:.4f} -> "
        f"parity: {broken.quality_parity()}",
        "(paper: A/B tests confirmed comparable model quality on MTIA 2i)",
    ]
    assert parity.quality_parity()
    assert abs(parity.revenue_proxy_ratio - 1.0) < 0.02
    assert not broken.quality_parity()
    assert broken.treatment_ne > broken.control_ne
    record("sec56_ab_testing", "\n".join(lines))
