"""Ablation: what each co-design mechanism contributes.

Stacks the section 3.3/4.1/4.2 mechanisms one at a time on the same
model and measures the cumulative throughput, isolating:

1. advanced custom instructions (multi-context + auto-increment),
2. DMA prefetch + hardware broadcast reads,
3. LLS activation pinning (versus all-LLC placement),
4. graph passes (fusion + liveness scheduling),
5. the 1.1 -> 1.35 GHz overclock.

Also ablates the LLC replacement policy (random versus LRU) on a
weight-streaming model — the cyclic-thrash pathology that motivates
non-LRU replacement in large last-level caches.
"""

import dataclasses

from conftest import once

from repro.arch.mtia import mtia2i_spec
from repro.core import optimize_graph
from repro.kernels import GemmVariant, naive_variant
from repro.memory import SetAssociativeCache
from repro.models import hc1
from repro.perf import Executor
from repro.units import GHZ, KiB, MiB

_BATCH = 2048


def _model():
    # HC1: the compute-heavy, revenue-critical model class where kernel
    # quality matters most.
    return hc1().graph()


def _stack():
    design_clock = mtia2i_spec(frequency_hz=1.1 * GHZ)
    deployed = mtia2i_spec()
    stages = []

    def run(label, chip, variant, graph):
        report = Executor(chip, gemm_variant=variant).run(graph, _BATCH, warmup_runs=1)
        stages.append((label, report.throughput_samples_per_s))
        return report

    base_graph = _model()
    run("naive kernels @1.1GHz", design_clock, naive_variant(), base_graph)
    run("+ advanced instructions", design_clock,
        dataclasses.replace(naive_variant(), use_advanced_instructions=True),
        _model())
    run("+ prefetch & broadcast reads", design_clock, GemmVariant(), _model())
    run("+ graph passes", design_clock, GemmVariant(), optimize_graph(_model()))
    run("+ overclock 1.35GHz", deployed, GemmVariant(), optimize_graph(_model()))
    return stages


def _replacement_ablation():
    """Cyclic weight streaming through LRU versus random replacement."""
    rates = {}
    working_set_blocks = 6000  # ~384 MB of weight blocks
    for policy in ("lru", "random"):
        cache = SetAssociativeCache(
            capacity_bytes=192 * MiB, block_bytes=64 * KiB,
            associativity=16, replacement=policy,
        )
        for _ in range(3):
            for block in range(working_set_blocks):
                cache.access(("w", block))
        cache.stats.reset()
        for block in range(working_set_blocks):
            cache.access(("w", block))
        rates[policy] = cache.stats.hit_rate
    return rates


def test_ablation_codesign(benchmark, record):
    stages, rates = once(benchmark, lambda: (_stack(), _replacement_ablation()))
    lines = ["cumulative co-design stack (per-chip samples/s):"]
    base = stages[0][1]
    for label, throughput in stages:
        lines.append(f"  {label:32} {throughput:12,.0f}  ({throughput / base:.2f}x)")
    lines.append(
        f"\nLLC replacement on a cyclic 384 MB weight stream: "
        f"LRU {rates['lru']:.0%} hit rate vs random {rates['random']:.0%}"
    )
    throughputs = [t for _, t in stages]
    # Each mechanism helps (or at worst holds); the stack is substantial.
    for before, after in zip(throughputs, throughputs[1:]):
        assert after >= before * 0.98
    assert throughputs[-1] > 1.5 * throughputs[0]
    # LRU collapses on cyclic streams; random replacement does not.
    assert rates["lru"] == 0.0
    assert rates["random"] > 0.0
    record("ablation_codesign", "\n".join(lines))
