"""Tests for the core facade, evaluation pipeline, and case study."""

import dataclasses

import pytest

from repro.core import (
    CaseStudyModelConfig,
    Mtia2iSystem,
    build_case_study_model,
    evaluate_model,
    gpu_shards_for,
    optimize_graph,
)
from repro.graph import OpType
from repro.models import lc1, hc3, small_dlrm
from repro.models.dlrm import build_dlrm


def _builder():
    config = small_dlrm()
    return lambda batch: build_dlrm(dataclasses.replace(config, batch=batch))


class TestOptimizeGraph:
    def test_passes_reduce_launches_and_keep_flops(self):
        graph = _builder()(512)
        optimized = optimize_graph(graph)
        optimized.validate_schedule()
        assert len(optimized.ops) <= len(graph.ops)
        assert optimized.total_flops() == pytest.approx(graph.total_flops(), rel=0.01)


class TestMtia2iSystem:
    def test_deploy_end_to_end(self):
        system = Mtia2iSystem()
        result = system.deploy(_builder(), model_name="small")
        assert result.throughput > 0
        assert result.autotune.shard_plan.num_shards == 1
        assert result.report.activations_in_lls

    def test_kernel_database_persists(self):
        system = Mtia2iSystem()
        system.deploy(_builder(), model_name="first")
        assert len(system.kernel_database) > 0

    def test_gpu_baseline_report(self):
        system = Mtia2iSystem()
        report = system.baseline_gpu_report(_builder(), batch=512)
        assert report.chip_name.startswith("H100")


class TestEvaluationPipeline:
    def test_lc1_mtia_wins(self):
        evaluation = evaluate_model(lc1())
        assert evaluation.production_perf_per_tco > 1.5
        assert evaluation.production_perf_per_watt > 1.0
        assert evaluation.replay.perf_per_tco_ratio > 1.0

    def test_hc3_shape(self):
        """HC3: MTIA wins on Perf/TCO, roughly parity on Perf/Watt."""
        evaluation = evaluate_model(hc3())
        assert evaluation.production_perf_per_tco > 1.0
        assert 0.7 <= evaluation.production_perf_per_watt <= 1.6

    def test_production_gain_in_band(self):
        evaluation = evaluate_model(lc1())
        assert 0.95 <= evaluation.production_gain <= 1.9

    def test_tco_reduction_definition(self):
        evaluation = evaluate_model(lc1())
        expected = 1.0 - 1.0 / evaluation.production_perf_per_tco
        assert evaluation.production_tco_reduction == pytest.approx(expected)

    def test_gpu_sharding_by_capacity(self):
        assert gpu_shards_for(lc1(), evaluate_model.__globals__["default_gpu_spec"]()) == 1
        assert gpu_shards_for(hc3(), evaluate_model.__globals__["default_gpu_spec"]()) >= 2


class TestCaseStudyModel:
    def test_early_variant_around_140mf(self):
        graph = build_case_study_model(
            CaseStudyModelConfig(batch=256, early_stage_version=True)
        )
        mf = graph.flops_per_sample(256) / 1e6
        assert 90 <= mf <= 220

    def test_final_variant_around_940mf(self):
        graph = build_case_study_model(CaseStudyModelConfig(batch=512))
        mf = graph.flops_per_sample(512) / 1e6
        assert 700 <= mf <= 1200

    def test_complexity_grew_about_6_7x(self):
        early = build_case_study_model(
            CaseStudyModelConfig(batch=512, early_stage_version=True)
        ).flops_per_sample(512)
        final = build_case_study_model(CaseStudyModelConfig(batch=512)).flops_per_sample(512)
        assert 4 <= final / early <= 9

    def test_has_ibb_and_mha(self):
        graph = build_case_study_model(CaseStudyModelConfig(batch=512))
        kinds = {op.op_type for op in graph.ops}
        assert OpType.BROADCAST in kinds
        assert OpType.MHA in kinds

    def test_deferred_ibb_reduces_flops(self):
        config = CaseStudyModelConfig(batch=512)
        eager = build_case_study_model(config)
        deferred = build_case_study_model(config, deferred_ibb=True)
        assert deferred.total_flops() < eager.total_flops()

    def test_rejected_change_grows_activations(self):
        base = build_case_study_model(CaseStudyModelConfig(batch=512))
        rejected = build_case_study_model(
            CaseStudyModelConfig(batch=512, remote_input_scale=3.0)
        )
        assert rejected.peak_activation_bytes() > base.peak_activation_bytes()
