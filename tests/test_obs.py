"""Tests for the observability layer: metrics registry + trace writer.

The trace-writer half pins the refactor contract: ``perf.trace`` and
``resilience.trace`` now build their documents through
:class:`repro.obs.tracing.TraceWriter`, and a seeded run must serialise
byte-identically to what the legacy hand-rolled builders produced
(asserted via sha256 of the written file).
"""

import hashlib
import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    TraceError,
    TraceWriter,
    active,
    trace_metadata,
)
from repro.obs.metrics import (
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    _NULL_SERIES,
)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2.5)
        assert registry.counter("a").value == 3.5

    def test_instruments_shared_by_name(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.series("s") is registry.series("s")

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.0)
        gauge.set(7.0)
        assert gauge.value == 7.0
        assert gauge.updates == 2

    def test_series_preserves_order(self):
        series = MetricsRegistry().series("curve")
        series.append(1, 10.0)
        series.append(2, 12.0)
        assert series.points == ((1.0, 10.0), (2.0, 12.0))

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricsRegistry(enabled=False)
        # Identity, not just equality: no allocation per request.
        assert registry.counter("x") is _NULL_COUNTER
        assert registry.counter("y") is _NULL_COUNTER
        assert registry.gauge("x") is _NULL_GAUGE
        assert registry.histogram("x") is _NULL_HISTOGRAM
        assert registry.series("x") is _NULL_SERIES

    def test_null_instruments_record_nothing(self):
        _NULL_COUNTER.inc(100)
        _NULL_GAUGE.set(5.0)
        _NULL_HISTOGRAM.observe(1.0)
        _NULL_SERIES.append(1, 1)
        assert _NULL_COUNTER.value == 0.0
        assert _NULL_GAUGE.value == 0.0
        assert _NULL_HISTOGRAM.count == 0
        assert _NULL_SERIES.points == ()

    def test_active_defaults_to_null_registry(self):
        assert active(None) is NULL_REGISTRY
        registry = MetricsRegistry()
        assert active(registry) is registry
        assert not NULL_REGISTRY.enabled

    def test_snapshot_is_json_able_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(2.0)
        registry.series("s").append(0, 1)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["h"]["count"] == 1


class TestHistogram:
    def test_percentiles_bracket_uniform_data(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for i in range(1, 1001):
            hist.observe(i / 1000.0)  # 1 ms .. 1 s uniform
        # Log-bucket estimates carry ~13% relative error at 10/decade.
        assert hist.p50 == pytest.approx(0.5, rel=0.20)
        assert hist.p95 == pytest.approx(0.95, rel=0.20)
        assert hist.p99 == pytest.approx(0.99, rel=0.20)
        assert hist.min == 0.001
        assert hist.max == 1.0
        assert hist.mean == pytest.approx(0.5005)

    def test_percentiles_clamped_to_observed_range(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(3.0)
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == 3.0

    def test_zeros_land_in_dedicated_bucket(self):
        hist = MetricsRegistry().histogram("h")
        for _ in range(9):
            hist.observe(0.0)
        hist.observe(10.0)
        assert hist.p50 == 0.0
        assert hist.percentile(100) == 10.0

    def test_empty_histogram_is_quiet(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.p99 == 0.0
        assert hist.mean == 0.0
        assert hist.snapshot()["count"] == 0

    def test_percentile_validates_range(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestTraceWriter:
    def test_events_carry_required_fields(self):
        writer = TraceWriter("proc")
        lane = writer.lane("work")
        writer.complete("op", ts=0.0, dur=5.0, tid=lane)
        writer.instant("mark", ts=1.0, tid=lane)
        writer.counter("depth", ts=2.0, values={"d": 3})
        for event in writer.events:
            assert {"ph", "ts", "pid"} <= set(event)
            if event["ph"] in ("X", "i"):
                assert "tid" in event
        instant = [e for e in writer.events if e["ph"] == "i"][0]
        assert instant["s"] in ("g", "p", "t")

    def test_lane_numbering_and_conflicts(self):
        writer = TraceWriter("proc")
        assert writer.lane("a") == 1
        assert writer.lane("b") == 2
        assert writer.lane("a") == 1  # idempotent
        assert writer.lane("pinned", tid=40) == 40
        with pytest.raises(TraceError):
            writer.lane("a", tid=9)

    def test_metadata_precedes_data_events(self):
        writer = TraceWriter("proc", pid=4)
        writer.complete("op", ts=0.0, dur=1.0, tid=writer.lane("l"))
        events = writer.document()["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases[: phases.count("M")] == ["M"] * phases.count("M")
        process = events[0]
        assert process["name"] == "process_name"
        assert process["args"]["name"] == "proc"
        assert all(e["pid"] == 4 for e in events)

    def test_begin_end_nest_per_lane(self):
        writer = TraceWriter("proc")
        lane = writer.lane("l")
        writer.begin("outer", ts=0.0, tid=lane)
        writer.begin("inner", ts=1.0, tid=lane)
        assert writer.open_span_count == 2
        writer.end(ts=2.0, tid=lane)
        writer.end(ts=3.0, tid=lane)
        names = [(e["name"], e["ph"]) for e in writer.events]
        assert names == [
            ("outer", "B"), ("inner", "B"), ("inner", "E"), ("outer", "E"),
        ]

    def test_unbalanced_end_raises(self):
        writer = TraceWriter("proc")
        with pytest.raises(TraceError):
            writer.end(ts=1.0, tid=writer.lane("l"))

    def test_time_travelling_end_raises(self):
        writer = TraceWriter("proc")
        lane = writer.lane("l")
        writer.begin("s", ts=5.0, tid=lane)
        with pytest.raises(TraceError):
            writer.end(ts=4.0, tid=lane)

    def test_document_rejects_unclosed_spans(self):
        writer = TraceWriter("proc")
        writer.begin("s", ts=0.0, tid=writer.lane("l"))
        with pytest.raises(TraceError, match="unclosed"):
            writer.document()

    def test_other_data_round_trip(self, tmp_path):
        writer = TraceWriter("proc")
        writer.complete("op", ts=0.0, dur=1.0, tid=writer.lane("l"))
        path = tmp_path / "t.json"
        writer.write(str(path), other_data={"k": 1})
        loaded = json.loads(path.read_text())
        assert loaded["otherData"] == {"k": 1}
        assert loaded["displayTimeUnit"] == "ms"

    def test_trace_metadata_names_lanes(self):
        meta = trace_metadata("p", {"alpha": 1, "beta": 2})
        assert [m["args"]["name"] for m in meta] == ["p", "alpha", "beta"]


def _sha256(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestTraceByteCompatibility:
    """The unified writer serialises exactly what the legacy builders did."""

    def test_perf_trace_bytes_pinned(self, tmp_path):
        from repro.models import figure6_models
        from repro.perf import Executor, write_chrome_trace
        from repro.arch import mtia2i_spec

        model = next(m for m in figure6_models() if m.name == "LC1")
        report = Executor(mtia2i_spec()).run(
            model.graph(), model.batch, warmup_runs=0
        )
        path = tmp_path / "perf.json"
        write_chrome_trace(report, str(path))
        assert _sha256(path) == (
            "1b895ecab812ffba05de6b6345f443f80ff0575792776790351f8c029b4d96c5"
        )

    def test_resilience_trace_bytes_pinned(self, tmp_path):
        from repro.resilience import write_resilience_trace
        from repro.resilience.simulator import ResilienceConfig, run_resilience

        report = run_resilience(ResilienceConfig(
            devices=24, offered_load=20_000.0, duration_s=7 * 86_400.0,
            seed=7,
        ))
        path = tmp_path / "resilience.json"
        write_resilience_trace(report, str(path))
        assert _sha256(path) == (
            "f91e2172281cce0e08342fce3f160beb35a5c1d1d30df42d57bfb0fd2c4929c5"
        )

    def test_registry_never_steers_the_simulation(self):
        from repro.resilience.simulator import ResilienceConfig, run_resilience

        config = ResilienceConfig(
            devices=16, offered_load=10_000.0, duration_s=86_400.0, seed=11
        )
        bare = run_resilience(config)
        registry = MetricsRegistry()
        observed = run_resilience(config, registry=registry)
        assert [
            (e.time_s, e.kind, e.device_id) for e in bare.events
        ] == [
            (e.time_s, e.kind, e.device_id) for e in observed.events
        ]
        counters = registry.snapshot()["counters"]
        emitted = sum(
            v for k, v in counters.items() if k.startswith("resilience.events.")
        )
        assert emitted == len(bare.events)
