"""Tests for the Wukong scaling-family builder (paper section 2)."""

import pytest

from repro.models import WukongConfig, build_wukong, scaling_sweep


class TestWukongConfig:
    def test_scale_one_baseline(self):
        config = WukongConfig(scale=1.0)
        assert config.hidden_dim == 1024
        assert config.num_layers == 4

    def test_dimensions_grow_together(self):
        small, big = WukongConfig(scale=1.0), WukongConfig(scale=16.0)
        assert big.hidden_dim > small.hidden_dim
        assert big.num_layers > small.num_layers
        assert big.embedding_gib > small.embedding_gib
        assert big.num_tables > small.num_tables

    def test_hidden_dim_aligned(self):
        for scale in (1, 2, 5, 13, 64):
            assert WukongConfig(scale=scale).hidden_dim % 256 == 0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            WukongConfig(scale=0)

    def test_to_dhen_round_trips_name(self):
        config = WukongConfig(scale=4.0)
        assert "x4" in config.to_dhen().name


class TestWukongScaling:
    def test_sweep_spans_two_orders(self):
        """Section 2: scaling across two orders of magnitude, >60x spread."""
        configs = scaling_sweep(scales=(1.0, 64.0))
        flops = [
            build_wukong(c).flops_per_sample(c.batch) for c in configs
        ]
        assert flops[1] / flops[0] > 60

    def test_flops_roughly_linear_in_scale(self):
        configs = scaling_sweep(scales=(1.0, 4.0, 16.0))
        flops = [build_wukong(c).flops_per_sample(c.batch) for c in configs]
        # Each 4x scale step multiplies FLOPs by roughly 4-8x (width^2
        # grows 4x, depth adds a bit more).
        for smaller, larger in zip(flops, flops[1:]):
            assert 3.0 <= larger / smaller <= 9.0

    def test_graphs_valid(self):
        for config in scaling_sweep(scales=(1.0, 4.0)):
            build_wukong(config).validate_schedule()

    def test_embeddings_dominate_at_scale(self):
        graph = build_wukong(WukongConfig(scale=16.0))
        assert graph.embedding_bytes() / graph.weight_bytes() > 0.9
