"""Property-based tests for cluster routing invariants (repro.cluster).

Hypothesis drives the cluster simulator with randomized request
streams, replica counts, policies, and admission caps and checks the
invariants that must hold for *every* input:

* conservation — every offered request reaches exactly one terminal
  outcome: served exactly once, or shed or timed out and counted;
* no spontaneous work — nothing is served that never arrived;
* determinism — one seed fully determines the run, event log included,
  for every routing policy;
* observation transparency — attaching a metrics registry never
  changes the simulation's outcome.
"""

from collections import Counter as TallyCounter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    AdmissionConfig,
    ClusterConfig,
    POLICY_NAMES,
    ServiceModel,
    ShardLocalityMap,
    run_cluster,
)
from repro.obs import MetricsRegistry
from repro.serving import Request

policies = st.sampled_from(POLICY_NAMES)

# Streams as inter-arrival gaps: non-negative, monotone arrivals.
streams = st.lists(
    st.floats(min_value=0.0, max_value=0.05,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)

configs = st.builds(
    dict,
    replicas=st.integers(min_value=1, max_value=6),
    policy=policies,
    seed=st.integers(min_value=0, max_value=2**16),
    per_replica_cap=st.integers(min_value=1, max_value=8),
    fault_rate=st.sampled_from([0.0, 0.0, 200.0]),
    num_shards=st.integers(min_value=1, max_value=4),
)

SERVICE = ServiceModel(mean_service_s=0.02, jitter_sigma=0.4)


def _build_requests(gaps):
    requests = []
    clock = 0.0
    for i, gap in enumerate(gaps):
        clock += gap
        requests.append(Request(arrival_s=clock, samples=8, request_id=i))
    return requests


def _run(gaps, params, registry=None):
    config = ClusterConfig(
        replicas=params["replicas"],
        num_hosts=1,
        policy=params["policy"],
        admission=AdmissionConfig(
            max_outstanding_per_replica=params["per_replica_cap"]
        ),
        fault_rate_per_replica_hour=params["fault_rate"],
        seed=params["seed"],
    )
    locality = (ShardLocalityMap.uniform(params["num_shards"])
                if params["num_shards"] > 1 else None)
    return run_cluster(config, SERVICE, _build_requests(gaps),
                       locality=locality, registry=registry)


@settings(max_examples=150, deadline=None)
@given(gaps=streams, params=configs)
def test_every_request_served_exactly_once_or_shed(gaps, params):
    report = _run(gaps, params)
    served = TallyCounter(
        e for _, kind, e in report.event_log if kind == "serve"
    )
    shed = TallyCounter(
        e for _, kind, e in report.event_log if kind == "shed"
    )
    timed_out = TallyCounter(
        e for _, kind, e in report.event_log if kind == "timeout"
    )
    # Terminal outcomes partition the offered stream.
    assert report.served + report.shed + report.timed_out == report.offered
    assert sum(served.values()) == report.served
    assert sum(shed.values()) == report.shed
    assert sum(timed_out.values()) == report.timed_out
    # Each request reaches exactly one terminal outcome, none invented.
    assert all(count == 1 for count in served.values())
    assert not set(served) & set(shed)
    assert not set(served) & set(timed_out)
    assert not set(shed) & set(timed_out)
    assert (set(served) | set(shed) | set(timed_out)
            == set(range(report.offered)))
    # One latency sample per served request.
    assert len(report.latencies_s) == report.served


@settings(max_examples=100, deadline=None)
@given(gaps=streams, params=configs)
def test_seeded_runs_are_byte_identical(gaps, params):
    assert _run(gaps, params) == _run(gaps, params)


@settings(max_examples=75, deadline=None)
@given(gaps=streams, params=configs)
def test_attached_registry_never_changes_outcome(gaps, params):
    bare = _run(gaps, params)
    observed = _run(gaps, params, registry=MetricsRegistry())
    assert bare == observed


@settings(max_examples=75, deadline=None)
@given(gaps=streams, params=configs)
def test_shedding_respects_admission_cap(gaps, params):
    report = _run(gaps, params)
    # A tier whose replicas never fill their caps sheds nothing; if it
    # shed, some routing attempt must have found every replica at cap
    # (or down) — either way the shed count is explicit in the log.
    shed_events = [e for _, kind, e in report.event_log if kind == "shed"]
    assert len(shed_events) == report.shed
    assert all(0 <= e < report.offered for e in shed_events)


@settings(max_examples=50, deadline=None)
@given(gaps=streams, seed=st.integers(min_value=0, max_value=2**16))
def test_policies_agree_on_conservation_not_on_routing(gaps, seed):
    reports = {
        policy: _run(gaps, dict(replicas=3, policy=policy, seed=seed,
                                per_replica_cap=4, fault_rate=0.0,
                                num_shards=2))
        for policy in POLICY_NAMES
    }
    offered = {r.offered for r in reports.values()}
    assert len(offered) == 1  # identical stream through every policy
    for report in reports.values():
        assert report.served + report.shed + report.timed_out == report.offered
