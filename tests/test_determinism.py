"""Reproducibility: every stochastic entry point, run twice with the same
seed, must produce identical results — and a different seed must actually
change the draw.

The fleet studies (sections 5.1-5.5) are Monte-Carlo models; without
seed discipline their numbers would drift between runs and the paper's
reported bands could not be checked against them.
"""

import numpy as np
import pytest

from repro.fleet import (
    SyntheticCtrModel,
    production_gain,
    production_utilization,
    run_ab_test,
)
from repro.arch import mtia2i_server
from repro.reliability import (
    deadlock_incidence,
    provisioning_study,
    run_overclocking_study,
    sample_fleet_errors,
    sample_production_power,
    sensitivity_study,
    staged_detection,
)
from repro.resilience import (
    FaultRates,
    ResilienceConfig,
    ResiliencePolicies,
    presample_fault_arrivals,
    run_resilience,
)
from repro.serving import (
    CoalescingConfig,
    ModelJobProfile,
    diurnal_load_curve,
    poisson_stream,
    simulate_serving,
)


class TestServingWorkloads:
    def test_poisson_stream(self):
        first = poisson_stream(rate_per_s=200.0, duration_s=5.0, seed=9)
        again = poisson_stream(rate_per_s=200.0, duration_s=5.0, seed=9)
        assert first == again
        other = poisson_stream(rate_per_s=200.0, duration_s=5.0, seed=10)
        assert first != other

    def test_diurnal_load_curve(self):
        first = diurnal_load_curve(1000.0, seed=4)
        again = diurnal_load_curve(1000.0, seed=4)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, diurnal_load_curve(1000.0, seed=5))

    def test_simulate_serving(self):
        profile = ModelJobProfile(0.002, 0.004, 2, dispatch_overhead_s=0.0005)
        config = CoalescingConfig(
            window_s=0.015, max_parallel_windows=4, max_batch_samples=1024
        )
        first = simulate_serving(profile, config, request_rate_per_s=120.0,
                                 duration_s=10.0, seed=6)
        again = simulate_serving(profile, config, request_rate_per_s=120.0,
                                 duration_s=10.0, seed=6)
        assert first == again


class TestReliabilityStudies:
    def test_sample_fleet_errors(self):
        assert sample_fleet_errors(servers=500, seed=3) == sample_fleet_errors(
            servers=500, seed=3
        )

    def test_deadlock_incidence(self):
        assert deadlock_incidence(seed=2) == deadlock_incidence(seed=2)

    def test_staged_detection(self):
        first = staged_detection(issue_incidence=0.0005, seed=8)
        assert first == staged_detection(issue_incidence=0.0005, seed=8)

    def test_run_overclocking_study(self):
        first = run_overclocking_study(num_chips=200, seed=1)
        again = run_overclocking_study(num_chips=200, seed=1)
        assert first == again

    def test_run_overclocking_study_explicit_rng_wins(self):
        """An explicit generator overrides the seed (the
        server_sim convention), consumed in a defined order."""
        first = run_overclocking_study(
            num_chips=200, rng=np.random.default_rng(21), seed=999
        )
        again = run_overclocking_study(
            num_chips=200, rng=np.random.default_rng(21), seed=0
        )
        assert first == again

    def test_run_overclocking_study_default_matches_historical_seed(self):
        """The no-argument call keeps reproducing the pre-seed-threading
        numbers (default_rng(0))."""
        assert run_overclocking_study(num_chips=200) == run_overclocking_study(
            num_chips=200, seed=0
        )

    def test_sensitivity_study(self):
        first = sensitivity_study(trials_per_region=20, seed=5)
        again = sensitivity_study(trials_per_region=20, seed=5)
        assert first.outcomes == again.outcomes

    def test_sample_production_power(self):
        server = mtia2i_server()
        first = sample_production_power(server, seed=7)
        again = sample_production_power(server, seed=7)
        assert np.array_equal(first.values_w, again.values_w)
        other = sample_production_power(server, seed=8)
        assert not np.array_equal(first.values_w, other.values_w)

    def test_provisioning_study(self):
        server = mtia2i_server()
        assert provisioning_study(server, seed=4) == provisioning_study(
            server, seed=4
        )


class TestFleetStudies:
    def test_production_utilization_seed(self):
        first = production_utilization(1000.0, 10_000.0, seed=13)
        again = production_utilization(1000.0, 10_000.0, seed=13)
        assert first == again
        assert first != production_utilization(1000.0, 10_000.0, seed=14)

    def test_production_utilization_explicit_rng_wins(self):
        """An explicit generator overrides the seed and is consumed in a
        defined order, so identical generators mean identical results."""
        first = production_utilization(
            1000.0, 10_000.0, rng=np.random.default_rng(21), seed=999
        )
        again = production_utilization(
            1000.0, 10_000.0, rng=np.random.default_rng(21), seed=0
        )
        assert first == again

    def test_production_utilization_default_matches_historical_seed(self):
        """The no-argument call must keep reproducing the pre-seed-threading
        numbers (default_rng(42))."""
        assert production_utilization(1000.0, 10_000.0) == production_utilization(
            1000.0, 10_000.0, seed=42
        )

    def test_production_gain_seed(self):
        first = production_gain(1000.0, 5000.0, 10_000.0, seed=17)
        again = production_gain(1000.0, 5000.0, 10_000.0, seed=17)
        assert first == again

    def test_run_ab_test(self):
        model = SyntheticCtrModel(seed=0)
        backend = model.exact_backend()
        first = run_ab_test(model, backend, backend, num_requests=5_000, seed=11)
        again = run_ab_test(model, backend, backend, num_requests=5_000, seed=11)
        assert first == again
        assert first != run_ab_test(
            model, backend, backend, num_requests=5_000, seed=12
        )

    def test_run_ab_test_explicit_rng_wins(self):
        """An explicit generator overrides the seed, so the same generator
        state gives the same traffic slice regardless of the seed."""
        model = SyntheticCtrModel(seed=0)
        backend = model.exact_backend()
        first = run_ab_test(
            model, backend, backend, num_requests=5_000,
            rng=np.random.default_rng(3), seed=999,
        )
        again = run_ab_test(
            model, backend, backend, num_requests=5_000,
            rng=np.random.default_rng(3), seed=11,
        )
        assert first == again

    def test_run_ab_test_default_matches_historical_seed(self):
        """The default call keeps reproducing the pre-seed-threading
        traffic (default_rng(11))."""
        model = SyntheticCtrModel(seed=0)
        backend = model.exact_backend()
        assert run_ab_test(
            model, backend, backend, num_requests=5_000
        ) == run_ab_test(model, backend, backend, num_requests=5_000, seed=11)


class TestResilienceDeterminism:
    _RATES = FaultRates(0.01, 0.002, 0.0, 0.05)
    _CONFIG = ResilienceConfig(
        devices=30, offered_load=21_000.0, duration_s=86_400.0,
        metrics_interval_s=1800.0, seed=19,
    )

    def test_presampled_arrivals(self):
        first = presample_fault_arrivals(
            self._RATES, 30, 86_400.0, np.random.default_rng(19)
        )
        again = presample_fault_arrivals(
            self._RATES, 30, 86_400.0, np.random.default_rng(19)
        )
        assert first == again

    def test_full_run_event_log(self):
        first = run_resilience(self._CONFIG, self._RATES,
                               ResiliencePolicies.production())
        again = run_resilience(self._CONFIG, self._RATES,
                               ResiliencePolicies.production())
        assert first.events.to_jsonable() == again.events.to_jsonable()
        assert first.goodput_series == again.goodput_series

    def test_seed_changes_the_schedule(self):
        first = run_resilience(self._CONFIG, self._RATES,
                               ResiliencePolicies.production())
        import dataclasses

        other_config = dataclasses.replace(self._CONFIG, seed=20)
        other = run_resilience(other_config, self._RATES,
                               ResiliencePolicies.production())
        assert first.events.to_jsonable() != other.events.to_jsonable()


@pytest.mark.parametrize("seed", [0, 1])
def test_module_level_rng_not_disturbed(seed):
    """Entry points must use their own generators, never the global numpy
    state — calling one mid-stream must not perturb an unrelated draw."""
    rng = np.random.default_rng(seed)
    before = rng.standard_normal(4).tolist()
    rng = np.random.default_rng(seed)
    _ = rng.standard_normal(2)
    sample_fleet_errors(servers=100, seed=0)
    deadlock_incidence(seed=0)
    after2 = rng.standard_normal(2).tolist()
    assert before[2:] == after2


@pytest.mark.parametrize("seed", [0, 1])
def test_fastsim_entry_points_leave_global_rng_alone(seed):
    """The PR-8 fast engines inherit the same audit: a fast-path
    scheduling run, a cluster run on each queue backend, and a
    trial_map sweep must not touch numpy's global state or the stdlib
    ``random`` module (no ad-hoc ``random.Random`` crept in)."""
    import random as stdlib_random

    from repro.cluster import ClusterConfig, default_service_model
    from repro.cluster.simulator import run_cluster
    from repro.fastsim import trial_map
    from repro.serving.batcher import CoalescingConfig, coalesce
    from repro.serving.scheduler import ModelJobProfile, schedule_batches
    from repro.serving.workload import poisson_stream

    rng = np.random.default_rng(seed)
    before = rng.standard_normal(4).tolist()
    np.random.seed(seed)
    global_before = np.random.random(2).tolist()
    np.random.seed(seed)
    _ = np.random.random(1)
    stdlib_state = stdlib_random.getstate()

    rng = np.random.default_rng(seed)
    _ = rng.standard_normal(2)
    requests = poisson_stream(
        rate_per_s=40.0, duration_s=2.0, samples_per_request=16, seed=0
    )
    batches = coalesce(
        requests,
        CoalescingConfig(
            window_s=0.01, max_parallel_windows=4, max_batch_samples=256
        ),
    )
    schedule_batches(
        batches,
        ModelJobProfile(
            remote_time_s=0.002, merge_time_s=0.004, remote_jobs_per_batch=2
        ),
        engine="fast",
    )
    service = default_service_model()
    for engine in ("fast", "calendar"):
        run_cluster(
            ClusterConfig(replicas=3, seed=0), service, requests,
            engine=engine,
        )
    assert trial_map(abs, [-1, 2, -3]) == [1, 2, 3]

    assert rng.standard_normal(2).tolist() == before[2:]
    assert np.random.random(1).tolist() == global_before[1:]
    assert stdlib_random.getstate() == stdlib_state
