"""Property-based tests for repro.codesign.

Hypothesis drives the contracts the search's determinism and the front's
correctness rest on:

* Pareto soundness — no member of ``pareto_front`` is dominated by any
  input candidate, every non-member is dominated by some member, and
  membership plus output order are independent of insertion order;
* rank selection — ``select_by_rank`` never returns more than asked and
  always includes the whole rank-0 front when it fits;
* derived chips — identity derivation returns the base object itself,
  and grid navigation (``point_at`` / ``indices_of`` / ``neighbor``)
  stays on the grid and moves one axis at a time;
* annealing determinism — two chains with the same seed walk the same
  trajectory and populate bit-identical evaluation caches, for any seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import gpu_spec, mtia1_spec, mtia2i_spec
from repro.codesign import (
    CandidateEval,
    DesignSpace,
    SearchConfig,
    derive_chip,
    dominates,
    pareto_front,
    select_by_rank,
)
from repro.codesign.search import _anneal_chain
from repro.units import GB, GHZ, GiB, MiB

SPACE = DesignSpace(
    num_pes=(36, 64, 144),
    frequency_hz=(1.1 * GHZ, 1.35 * GHZ, 1.5 * GHZ),
    sram_capacity_bytes=(128 * MiB, 256 * MiB),
    dram_capacity_bytes=(64 * GiB, 128 * GiB),
    dram_bandwidth_bytes_per_s=(204.8 * GB, 307.2 * GB),
    gemm_to_simd=(16.0, 32.0),
    noc_scale=(1.0,),
)


def _ev(label, perf, ppt, ppw):
    return CandidateEval(
        label=label, point=None, chip_name=label, fidelity="serving",
        exact=True, feasible=True, area_mm2=1.0, typical_watts=1.0,
        accelerator_cost_usd=1.0, models=(), perf=perf,
        perf_per_tco=ppt, perf_per_watt=ppw,
    )


objective_vectors = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
    ),
    min_size=1, max_size=24,
)


@settings(max_examples=50, deadline=None)
@given(vectors=objective_vectors, seed=st.integers(0, 2**31 - 1))
def test_pareto_front_sound_and_order_independent(vectors, seed):
    evals = [_ev(f"c{i}", *v) for i, v in enumerate(vectors)]
    front = pareto_front(evals)
    members = {e.label for e in front}
    # Soundness: nothing on the front is dominated by any input.
    for member in front:
        assert not any(dominates(other, member) for other in evals)
    # Completeness: everything off the front is dominated by a member.
    for candidate in evals:
        if candidate.label not in members:
            assert any(dominates(member, candidate) for member in front)
    # Insertion-order independence, including the output order.
    rng = np.random.default_rng(seed)
    shuffled = [evals[i] for i in rng.permutation(len(evals))]
    assert pareto_front(shuffled) == front


@settings(max_examples=50, deadline=None)
@given(vectors=objective_vectors, keep=st.integers(0, 30))
def test_select_by_rank_bounds_and_contains_front(vectors, keep):
    evals = [_ev(f"c{i}", *v) for i, v in enumerate(vectors)]
    selected = select_by_rank(evals, keep)
    assert len(selected) == min(keep, len(evals))
    front = pareto_front(evals)
    if keep >= len(front):
        assert set(e.label for e in front) <= set(e.label for e in selected)


@given(base=st.sampled_from(["mtia1", "mtia2i", "gpu"]))
@settings(max_examples=10, deadline=None)
def test_derive_chip_identity_is_the_base_object(base):
    chip = {"mtia1": mtia1_spec, "mtia2i": mtia2i_spec, "gpu": gpu_spec}[
        base
    ]()
    assert derive_chip(chip) is chip


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), steps=st.integers(1, 30))
def test_grid_navigation_stays_on_grid(seed, steps):
    rng = np.random.default_rng(seed)
    point = SPACE.random_point(rng)
    for _ in range(steps):
        moved = SPACE.neighbor(point, rng)
        SPACE.indices_of(moved)  # raises if off-grid
        changed = [
            axis
            for axis in SPACE.axes()
            if getattr(moved, axis) != getattr(point, axis)
        ]
        assert len(changed) <= 1  # single-axis ladder move
        point = moved


class _ArithmeticObjective:
    """A stand-in objective: deterministic closed-form scores from the
    grid coordinates, so annealing trajectories can be compared across
    many seeds without paying for real evaluations."""

    def evaluate(self, chip, label, fidelity, point=None):
        assert fidelity == "surrogate"
        perf = point.num_pes * point.frequency_hz / 1e9
        ppt = point.sram_capacity_bytes / point.dram_capacity_bytes
        ppw = point.dram_bandwidth_bytes_per_s / (
            point.num_pes * point.gemm_to_simd * 1e9
        )
        return _ev(label, perf, ppt, ppw)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), chain=st.integers(0, 3))
def test_annealing_chain_bit_for_bit_deterministic(seed, chain):
    config = SearchConfig(seed=seed, iterations=12)
    weights = config.chain_weights[chain]
    first, second = {}, {}
    _anneal_chain(SPACE, _ArithmeticObjective(), first, weights, chain, config)
    _anneal_chain(SPACE, _ArithmeticObjective(), second, weights, chain, config)
    assert first == second  # same keys, same evaluations, bit for bit
    assert first  # the chain scored something


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_annealing_chains_share_cache_consistently(seed):
    """Running all chains into one cache then re-running yields the
    exact same cache — the search's exploration stage is a pure
    function of the seed."""
    config = SearchConfig(seed=seed, iterations=6)

    def explore():
        cache = {}
        for index, weights in enumerate(config.chain_weights):
            _anneal_chain(
                SPACE, _ArithmeticObjective(), cache, weights, index, config
            )
        return cache

    assert explore() == explore()
