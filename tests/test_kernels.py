"""Tests for the kernel cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import gpu_spec, mtia1_spec, mtia2i_spec
from repro.graph import fc, layernorm, mha, softmax, tbe, transpose
from repro.kernels import (
    EmbeddingAccessPattern,
    GemmVariant,
    KernelEstimate,
    Stationarity,
    default_variants,
    estimate_gemm,
    estimate_hstu_attention,
    estimate_layernorm,
    estimate_mha,
    estimate_op,
    estimate_softmax,
    estimate_tbe,
    gemm_efficiency,
    naive_variant,
    simulate_tbe_hit_rate,
)
from repro.memory import SetAssociativeCache
from repro.tensors import DType, GemmShape, embedding_table, model_input, weight
from repro.units import MiB


class TestGemmKernel:
    def test_2k_gemm_exceeds_92_percent(self):
        """Section 3.3: >92% of peak FLOPS for 2K x 2K shapes."""
        eff = gemm_efficiency(GemmShape(2048, 2048, 2048), mtia2i_spec())
        assert eff > 0.92

    def test_naive_kernel_far_from_peak(self):
        """Out-of-the-box kernels were issue-bound (section 3.3)."""
        eff = gemm_efficiency(
            GemmShape(2048, 2048, 2048), mtia2i_spec(), variant=naive_variant()
        )
        assert eff < 0.6

    def test_small_gemm_lower_efficiency(self):
        big = gemm_efficiency(GemmShape(2048, 2048, 2048), mtia2i_spec())
        small = gemm_efficiency(GemmShape(64, 64, 64), mtia2i_spec())
        assert small < big

    def test_int8_twice_as_fast(self):
        shape = GemmShape(2048, 2048, 2048)
        chip = mtia2i_spec()
        fp16 = estimate_gemm(shape, chip, DType.FP16)
        int8 = estimate_gemm(shape, chip, DType.INT8)
        assert fp16.compute_s / int8.compute_s == pytest.approx(2.0, rel=0.05)

    def test_sparsity_doubles_throughput(self):
        shape = GemmShape(2048, 2048, 2048)
        chip = mtia2i_spec()
        dense = estimate_gemm(shape, chip, DType.FP16)
        sparse = estimate_gemm(shape, chip, DType.FP16, sparse=True)
        assert dense.compute_s / sparse.compute_s == pytest.approx(2.0, rel=0.05)

    def test_mtia1_slower_than_mtia2i(self):
        shape = GemmShape(1024, 1024, 1024)
        t1 = estimate_gemm(shape, mtia1_spec(), DType.FP16).engine_time_s
        t2 = estimate_gemm(shape, mtia2i_spec(), DType.FP16).engine_time_s
        assert t1 > 2.5 * t2

    def test_variant_grid_nonempty(self):
        variants = default_variants()
        assert len(variants) > 50
        assert len({v.key() for v in variants}) == len(variants)

    def test_stationarity_changes_read_factors(self):
        shape = GemmShape(4096, 1024, 4096)
        chip = mtia2i_spec()
        ws = estimate_gemm(shape, chip, variant=GemmVariant(stationarity=Stationarity.WEIGHT))
        is_ = estimate_gemm(shape, chip, variant=GemmVariant(stationarity=Stationarity.INPUT))
        assert ws.weight_read_factor == 1.0
        assert is_.activation_read_factor == 1.0
        assert is_.weight_read_factor > 1.0

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            GemmVariant(stationarity="diagonal")
        with pytest.raises(ValueError):
            GemmVariant(block_m=0)


@given(
    m=st.integers(min_value=1, max_value=4096),
    k=st.integers(min_value=1, max_value=8192),
    n=st.integers(min_value=1, max_value=4096),
)
@settings(max_examples=60, deadline=None)
def test_gemm_estimate_positive_and_bounded(m, k, n):
    """Property: engine time is positive and efficiency never exceeds 1."""
    shape = GemmShape(m, k, n)
    chip = mtia2i_spec()
    estimate = estimate_gemm(shape, chip)
    assert estimate.compute_s > 0
    assert estimate.issue_s >= 0
    eff = gemm_efficiency(shape, chip)
    assert 0 < eff <= 1.0 + 1e-9


class TestTbeKernel:
    def test_issue_bound_without_advanced_instructions(self):
        chip = mtia2i_spec()
        fast = estimate_tbe(100_000, 128, chip, use_advanced_instructions=True)
        slow = estimate_tbe(100_000, 128, chip, use_advanced_instructions=False)
        assert slow.issue_s > fast.issue_s

    def test_weighted_costs_more_compute(self):
        chip = mtia2i_spec()
        plain = estimate_tbe(10_000, 128, chip, weighted=False)
        weighted = estimate_tbe(10_000, 128, chip, weighted=True)
        assert weighted.compute_s == pytest.approx(2 * plain.compute_s)

    def test_zipf_pattern_is_skewed(self):
        import numpy as np

        pattern = EmbeddingAccessPattern(num_rows=1_000_000)
        rng = np.random.default_rng(0)
        indices = pattern.sample(10_000, rng)
        # Hot head: far more accesses land in the first 1% of rows than a
        # uniform distribution's 1%.
        head = np.mean(indices < 10_000)
        assert head > 0.35

    def test_hit_rate_in_paper_band(self):
        """Section 4.2: caching keeps 40-60% of sparse accesses in SRAM.

        With the default Zipf skew and an LLC-sized cache the measured
        hit rate lands in (or near) that band."""
        cache = SetAssociativeCache(capacity_bytes=128 * MiB, block_bytes=64 * 1024)
        pattern = EmbeddingAccessPattern(num_rows=50_000_000, zipf_exponent=1.05)
        rate = simulate_tbe_hit_rate(pattern, row_bytes=256, cache=cache, num_lookups=8000)
        assert 0.3 < rate < 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingAccessPattern(num_rows=0)
        with pytest.raises(ValueError):
            EmbeddingAccessPattern(num_rows=10, zipf_exponent=1.0)
        with pytest.raises(ValueError):
            estimate_tbe(-1, 128, mtia2i_spec())


class TestNormalizationKernels:
    def test_layernorm_three_passes_cheaper_than_softmax_five(self):
        chip = mtia2i_spec()
        ln = estimate_layernorm(4096, 1024, chip)
        sm = estimate_softmax(4096, 1024, chip)
        assert sm.compute_s > ln.compute_s

    def test_small_inner_dim_softmax_pays_transpose(self):
        chip = mtia2i_spec()
        wide = estimate_softmax(4096, 512, chip)
        narrow = estimate_softmax(4096 * 16, 32, chip)  # same elements
        assert narrow.compute_s > wide.compute_s

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_layernorm(0, 128, mtia2i_spec())


class TestAttentionKernels:
    def test_mha_scales_quadratically_with_seq(self):
        chip = mtia2i_spec()
        short = estimate_mha(batch=16, heads=8, seq_len=64, head_dim=64, chip=chip)
        long = estimate_mha(batch=16, heads=8, seq_len=128, head_dim=64, chip=chip)
        assert long.compute_s > 2.5 * short.compute_s

    def test_hstu_scales_with_history(self):
        chip = mtia2i_spec()
        short = estimate_hstu_attention([64] * 16, heads=4, head_dim=64, chip=chip)
        long = estimate_hstu_attention([512] * 16, heads=4, head_dim=64, chip=chip)
        assert long.compute_s > 10 * short.compute_s

    def test_hstu_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_hstu_attention([], heads=4, head_dim=64, chip=mtia2i_spec())


class TestRegistry:
    def test_every_op_type_costable(self):
        chip = mtia2i_spec()
        x = model_input(64, 128)
        tables = [embedding_table(1000, 64)]
        ops = [
            fc(x, weight(128, 64)),
            tbe(tables, batch=8, avg_indices_per_lookup=4),
            layernorm(x),
            softmax(x),
            transpose(x),
            mha(x, heads=4, head_dim=32, seq_len=8, batch=8),
        ]
        for op in ops:
            estimate = estimate_op(op, chip)
            assert estimate.engine_time_s > 0

    def test_fused_cheaper_than_parts(self):
        from repro.graph.ops import elementwise, fused

        chip = mtia2i_spec()
        x = model_input(512, 1024)
        f1 = fc(x, weight(1024, 1024))
        e1 = elementwise([f1.output])
        combo = fused([f1, e1])
        combined = estimate_op(combo, chip)
        parts = estimate_op(f1, chip).compute_s + estimate_op(e1, chip).compute_s
        assert combined.compute_s < parts

    def test_gpu_estimates_work(self):
        x = model_input(1024, 1024)
        estimate = estimate_op(fc(x, weight(1024, 1024)), gpu_spec())
        assert estimate.compute_s > 0

    def test_kernel_estimate_validation(self):
        with pytest.raises(ValueError):
            KernelEstimate(compute_s=-1)
        with pytest.raises(ValueError):
            KernelEstimate(weight_read_factor=0)
