"""Tests for the memory hierarchy: cache, scratch allocator, partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_spec
from repro.memory import (
    BufferRequest,
    MemoryHierarchy,
    Placement,
    ScratchAllocator,
    SetAssociativeCache,
    SramPartition,
    Traffic,
    partition_for_activations,
    plan_allocation,
    tensor_blocks,
)
from repro.tensors import activation, weight
from repro.units import KiB, MiB


class TestCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(capacity_bytes=1 * MiB, block_bytes=64 * KiB)
        assert not cache.access("a")
        assert cache.access("a")
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hit_rate(self):
        cache = SetAssociativeCache(capacity_bytes=1 * MiB, block_bytes=64 * KiB)
        cache.access("a")
        cache.access("a")
        cache.access("a")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(
            capacity_bytes=2 * 64 * KiB, block_bytes=64 * KiB,
            associativity=2, replacement="lru",
        )
        cache.access("a")
        cache.access("b")
        cache.access("a")  # b is now LRU
        cache.access("c")  # evicts b
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_lru_cyclic_thrash_is_zero_hit(self):
        """LRU degenerates on cyclic streams larger than capacity — the
        pathology that motivates random replacement for weight traffic."""
        cache = SetAssociativeCache(
            capacity_bytes=4 * 64 * KiB, block_bytes=64 * KiB,
            associativity=4, replacement="lru",
        )
        for _ in range(5):
            for block in range(8):
                cache.access(block)
        # After warmup, cyclic access never hits.
        cache.stats.reset()
        for block in range(8):
            cache.access(block)
        assert cache.stats.hit_rate == 0.0

    def test_random_cyclic_thrash_gets_some_hits(self):
        cache = SetAssociativeCache(
            capacity_bytes=64 * 64 * KiB, block_bytes=64 * KiB,
            associativity=16, replacement="random",
        )
        for _ in range(4):
            for block in range(128):
                cache.access(block)
        cache.stats.reset()
        for _ in range(4):
            for block in range(128):
                cache.access(block)
        assert cache.stats.hit_rate > 0.0

    def test_dirty_writeback_counted(self):
        cache = SetAssociativeCache(
            capacity_bytes=64 * KiB, block_bytes=64 * KiB,
            associativity=1, replacement="lru",
        )
        cache.access("a", write=True)
        cache.access("b")  # evicts dirty a
        assert cache.stats.dirty_writebacks == 1
        assert cache.stats.bytes_written_back == 64 * KiB

    def test_clean_eviction_no_writeback(self):
        cache = SetAssociativeCache(
            capacity_bytes=64 * KiB, block_bytes=64 * KiB,
            associativity=1, replacement="lru",
        )
        cache.access("a")
        cache.access("b")
        assert cache.stats.dirty_writebacks == 0

    def test_invalidate(self):
        cache = SetAssociativeCache(capacity_bytes=1 * MiB, block_bytes=64 * KiB)
        cache.access("a")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert not cache.contains("a")

    def test_flush_writes_back_dirty(self):
        cache = SetAssociativeCache(capacity_bytes=1 * MiB, block_bytes=64 * KiB)
        cache.access("a", write=True)
        cache.access("b")
        assert cache.flush() == 1
        assert cache.resident_blocks == 0

    def test_partial_block_sizes(self):
        cache = SetAssociativeCache(capacity_bytes=1 * MiB, block_bytes=64 * KiB)
        cache.access("a", size_bytes=1000)
        assert cache.resident_bytes == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=10, block_bytes=100)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1 * MiB, replacement="plru")

    def test_tensor_blocks_partial_tail(self):
        blocks = tensor_blocks(7, 150 * KiB, 64 * KiB)
        assert len(blocks) == 3
        assert blocks[-1][2] == 150 * KiB - 2 * 64 * KiB
        assert sum(b[2] for b in blocks) == 150 * KiB


@given(
    capacity_blocks=st.integers(min_value=1, max_value=64),
    accesses=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=300),
    replacement=st.sampled_from(["lru", "random"]),
)
@settings(max_examples=60, deadline=None)
def test_cache_invariants(capacity_blocks, accesses, replacement):
    """Residency never exceeds capacity; hits + misses == accesses; a
    block just accessed is always resident."""
    block = 64 * KiB
    cache = SetAssociativeCache(
        capacity_bytes=capacity_blocks * block, block_bytes=block,
        associativity=min(4, capacity_blocks), replacement=replacement,
    )
    for address in accesses:
        cache.access(address)
        assert cache.contains(address)
        assert cache.resident_blocks <= capacity_blocks
    assert cache.stats.accesses == len(accesses)
    assert cache.stats.hits + cache.stats.misses == len(accesses)


class TestScratch:
    def test_non_overlapping_buffers_share_memory(self):
        plan = plan_allocation(
            [
                BufferRequest("a", 1000, start=0, end=1),
                BufferRequest("b", 1000, start=2, end=3),
            ]
        )
        assert plan.peak_bytes < 2000
        plan.validate()

    def test_overlapping_buffers_do_not_share(self):
        plan = plan_allocation(
            [
                BufferRequest("a", 1000, start=0, end=2),
                BufferRequest("b", 1000, start=1, end=3),
            ]
        )
        assert plan.peak_bytes >= 2000
        plan.validate()

    def test_reuse_factor(self):
        plan = plan_allocation(
            [BufferRequest(f"t{i}", 1024, start=i, end=i) for i in range(8)]
        )
        assert plan.reuse_factor == pytest.approx(8.0)

    def test_alignment(self):
        plan = plan_allocation(
            [
                BufferRequest("a", 100, start=0, end=5),
                BufferRequest("b", 100, start=0, end=5),
            ],
            alignment=128,
        )
        offsets = sorted(p.offset for p in plan.placements)
        assert offsets[1] % 128 == 0

    def test_offset_lookup(self):
        plan = plan_allocation([BufferRequest("x", 10, 0, 0)])
        assert plan.offset_of("x") == 0
        with pytest.raises(KeyError):
            plan.offset_of("missing")

    def test_allocator_capacity(self):
        allocator = ScratchAllocator(capacity_bytes=1500)
        allocator.request("a", 1000, 0, 1)
        allocator.request("b", 1000, 2, 3)
        assert allocator.fits  # reuse makes both fit
        allocator.request("c", 1000, 0, 3)
        assert not allocator.fits

    def test_invalid_requests(self):
        with pytest.raises(ValueError):
            BufferRequest("x", 0, 0, 1)
        with pytest.raises(ValueError):
            BufferRequest("x", 10, 5, 1)


@given(
    buffers=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10_000),  # size
            st.integers(min_value=0, max_value=20),  # start
            st.integers(min_value=0, max_value=20),  # duration
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_allocation_plan_never_overlaps(buffers):
    """Property: simultaneously-live buffers never overlap in memory, and
    peak never exceeds the no-reuse sum."""
    requests = [
        BufferRequest(f"b{i}", size, start, start + duration)
        for i, (size, start, duration) in enumerate(buffers)
    ]
    plan = plan_allocation(requests)
    plan.validate()
    assert plan.peak_bytes <= sum(r.size_bytes for r in requests) + 128 * len(requests)


class TestHierarchy:
    def test_partition_policy_fits_activations(self):
        chip = mtia2i_spec()
        partition = partition_for_activations(chip, 50 * MiB)
        assert partition.lls_bytes >= 50 * MiB
        assert partition.lls_bytes % chip.sram_partition_bytes == 0
        assert partition.total_bytes == chip.sram.capacity_bytes

    def test_partition_policy_overflow_falls_back_to_llc(self):
        chip = mtia2i_spec()
        partition = partition_for_activations(chip, 400 * MiB)
        assert partition.lls_bytes == 0
        assert partition.llc_bytes == chip.sram.capacity_bytes

    def test_partition_near_capacity_keeps_llc_granule(self):
        chip = mtia2i_spec()
        partition = partition_for_activations(chip, 250 * MiB)
        assert partition.llc_bytes >= chip.sram_partition_bytes

    def test_partition_granularity_enforced(self):
        with pytest.raises(ValueError):
            SramPartition(lls_bytes=5, llc_bytes=32 * MiB, granularity_bytes=32 * MiB)

    def test_lls_read_is_sram_traffic(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(chip)
        t = activation(1024, 1024)
        hierarchy.place(t, Placement.LLS)
        traffic = hierarchy.read(t)
        assert traffic.sram_bytes == t.num_bytes
        assert traffic.dram_bytes == 0

    def test_lls_capacity_enforced(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(
            chip,
            SramPartition(32 * MiB, 224 * MiB, chip.sram_partition_bytes),
        )
        big = activation(64 * 1024, 1024)  # 128 MiB
        with pytest.raises(ValueError):
            hierarchy.place(big, Placement.LLS)
        # reserve=False skips the check (liveness-managed buffers).
        hierarchy.place(big, Placement.LLS, reserve=False)

    def test_llc_cold_read_hits_dram_then_sram(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(chip)
        w = weight(1024, 1024)
        hierarchy.place(w, Placement.LLC)
        cold = hierarchy.read(w)
        assert cold.dram_bytes == w.num_bytes
        warm = hierarchy.read(w)
        assert warm.dram_bytes == 0
        assert warm.sram_bytes == w.num_bytes

    def test_no_reuse_hint_skips_writeback(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(chip)
        t = activation(128, 128)
        hierarchy.place(t, Placement.LLC)
        hierarchy.hint_no_reuse(t)
        hierarchy.write(t)
        hierarchy.llc.flush()
        assert hierarchy.llc.stats.dirty_writebacks == 0

    def test_dirty_write_without_hint_writes_back(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(chip)
        t = activation(128, 128)
        hierarchy.place(t, Placement.LLC)
        hierarchy.write(t)
        hierarchy.llc.flush()
        assert hierarchy.llc.stats.dirty_writebacks > 0

    def test_host_placement(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(chip)
        t = activation(128, 128)
        hierarchy.place(t, Placement.HOST)
        traffic = hierarchy.read(t)
        assert traffic.host_bytes == t.num_bytes

    def test_release_lls(self):
        chip = mtia2i_spec()
        hierarchy = MemoryHierarchy(chip)
        t = activation(128, 128)
        free_before = hierarchy.lls_free_bytes
        hierarchy.place(t, Placement.LLS)
        assert hierarchy.lls_free_bytes == free_before - t.num_bytes
        hierarchy.release_lls(t)
        assert hierarchy.lls_free_bytes == free_before

    def test_traffic_addition(self):
        a = Traffic(sram_bytes=1, dram_bytes=2)
        b = Traffic(sram_bytes=3, host_bytes=4)
        c = a + b
        assert c.sram_bytes == 4 and c.dram_bytes == 2 and c.host_bytes == 4
