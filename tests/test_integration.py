"""Cross-module integration tests: the paper's end-to-end stories."""

import dataclasses

import pytest

from repro.arch import gpu_spec, mtia1_spec, mtia2i_spec
from repro.core import optimize_graph
from repro.graph.passes import count_kernel_launches
from repro.models import figure6_models, lc1
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import Executor


def _graph(batch=512):
    return build_dlrm(dataclasses.replace(small_dlrm(), batch=batch))


class TestGenerationalUplift:
    def test_mtia2i_speedup_over_mtia1_consistent_with_specs(self):
        """MTIA 2i triples overall performance versus MTIA 1 (section 3.1).
        End to end the uplift can exceed the raw FLOPS ratio (~3.5x)
        because MTIA 1 is also issue-bound (no multi-context instructions,
        32-row accumulates, slower launches)."""
        new = Executor(mtia2i_spec()).run(_graph(1024), 1024, warmup_runs=2)
        old = Executor(mtia1_spec()).run(_graph(1024), 1024, warmup_runs=2)
        speedup = new.throughput_samples_per_s / old.throughput_samples_per_s
        assert 2.0 <= speedup <= 8.0


class TestOptimizationStack:
    def test_graph_passes_do_not_hurt_throughput(self):
        chip = mtia2i_spec()
        plain = Executor(chip).run(_graph(1024), 1024, warmup_runs=2)
        optimized_graph = optimize_graph(_graph(1024))
        optimized = Executor(chip).run(optimized_graph, 1024, warmup_runs=2)
        assert optimized.throughput_samples_per_s >= plain.throughput_samples_per_s * 0.95

    def test_fusion_reduces_launches_end_to_end(self):
        graph = _graph(1024)
        assert count_kernel_launches(optimize_graph(graph)) < count_kernel_launches(graph)


class TestCrossPlatformSanity:
    def test_gpu_chip_faster_than_mtia_chip(self):
        """One H100-class GPU outruns one 85 W MTIA chip; MTIA wins at the
        server/TCO level, not chip versus chip."""
        mtia = Executor(mtia2i_spec()).run(_graph(2048), 2048, warmup_runs=2)
        gpu = Executor(gpu_spec()).run(_graph(2048), 2048, warmup_runs=2)
        assert gpu.throughput_samples_per_s > mtia.throughput_samples_per_s

    def test_24_mtia_comparable_to_8_gpus(self):
        """Section 3.1: the 24-chip MTIA server's total performance rivals
        the 8-GPU server (within ~2x either way across models)."""
        from repro.core import evaluate_model

        evaluation = evaluate_model(lc1())
        server_ratio = (
            evaluation.mtia_chip_throughput * 24
        ) / (evaluation.gpu_chip_throughput * 8)
        assert 0.4 <= server_ratio <= 2.5


class TestFigure6Shape:
    """The qualitative claims of section 7, measured end to end."""

    @pytest.fixture(scope="class")
    def evaluations(self):
        from repro.core import evaluate_model

        return {m.name: evaluate_model(m) for m in figure6_models()}

    def test_all_models_beat_gpu_on_perf_per_tco(self, evaluations):
        for name, evaluation in evaluations.items():
            assert evaluation.production_perf_per_tco > 0.9, name

    def test_lc1_leads(self, evaluations):
        ppt = {n: e.production_perf_per_tco for n, e in evaluations.items()}
        lc_ranked = sorted(
            [n for n in ppt if n.startswith("LC")], key=ppt.get, reverse=True
        )
        assert set(lc_ranked[:2]) == {"LC1", "LC5"}
        assert max(ppt.values()) <= ppt["LC1"] * 1.05

    def test_hc_models_are_the_worst(self, evaluations):
        """Lowest efficiency on HC2 and HC4 (section 7)."""
        ranked = sorted(
            evaluations, key=lambda n: evaluations[n].production_perf_per_tco
        )
        assert set(ranked[:2]) <= {"HC2", "HC3", "HC4"}
        assert "HC4" in ranked[:2]

    def test_average_tco_reduction_near_44_percent(self, evaluations):
        import numpy as np

        mean_ppt = np.mean(
            [e.production_perf_per_tco for e in evaluations.values()]
        )
        reduction = 1.0 - 1.0 / mean_ppt
        assert 0.35 <= reduction <= 0.55

    def test_perf_per_watt_near_parity_for_hc(self, evaluations):
        """Perf/Watt is the harder metric (section 7): HC models hover
        near parity with the GPU."""
        for name in ("HC2", "HC3", "HC4"):
            assert 0.7 <= evaluations[name].production_perf_per_watt <= 1.6, name
