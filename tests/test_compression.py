"""Tests for the rANS codec and the GZIP PCIe link model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_spec
from repro.compression import (
    GZIP_ENGINE_BYTES_PER_S,
    ans_decode,
    ans_encode,
    compression_ratio,
    fp16_weight_bytes,
    gzip_ratio,
    int8_weight_bytes,
    link_transfer,
)


class TestAnsCodec:
    def test_roundtrip_simple(self):
        data = b"hello world, hello ans coding" * 10
        assert ans_decode(ans_encode(data)) == data

    def test_roundtrip_binary(self):
        data = bytes(range(256)) * 7
        assert ans_decode(ans_encode(data)) == data

    def test_roundtrip_single_symbol(self):
        data = b"\x00" * 1000
        encoded = ans_encode(data)
        assert ans_decode(encoded) == data
        # The 512 B frequency table dominates a 1000 B payload; the
        # payload itself shrinks to a few bytes.
        assert len(encoded.payload) < 10
        assert encoded.compression_ratio() > 0.4

    def test_empty_input(self):
        encoded = ans_encode(b"")
        assert ans_decode(encoded) == b""
        assert encoded.compression_ratio() == 0.0

    def test_int8_weights_compress_toward_50_percent(self):
        """Section 3.3: 'up to a 50% compression ratio' on weights."""
        ratio = ans_encode(int8_weight_bytes(200_000)).compression_ratio()
        assert 0.35 <= ratio <= 0.55

    def test_fp16_weights_compress_poorly(self):
        """Section 3.3: 'FP16 data does not compress efficiently'."""
        ratio = ans_encode(fp16_weight_bytes(100_000)).compression_ratio()
        assert ratio < 0.15

    def test_incompressible_data_near_zero(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=100_000, endpoint=False).astype(np.uint8).tobytes()
        assert compression_ratio(data) < 0.02

    def test_int8_roundtrip_exact(self):
        data = int8_weight_bytes(50_000, seed=4)
        assert ans_decode(ans_encode(data)) == data


@given(data=st.binary(min_size=1, max_size=2000))
@settings(max_examples=60, deadline=None)
def test_ans_roundtrip_property(data):
    """Property: decode(encode(x)) == x for arbitrary byte strings."""
    assert ans_decode(ans_encode(data)) == data


class TestPcieLink:
    def test_gzip_ratio_on_text(self):
        assert gzip_ratio(b"abcd" * 10_000) > 0.9
        assert gzip_ratio(b"") == 0.0

    def test_compressible_payload_speeds_up(self):
        chip = mtia2i_spec()
        report = link_transfer(1 << 30, chip.host_link, compression_saved_fraction=0.5)
        assert report.speedup > 1.3
        assert report.wire_bytes == (1 << 30) // 2

    def test_engine_rate_caps_effective_bandwidth(self):
        """The 25 GB/s (compressed-side) engine bounds the effective
        payload rate at ratio r to 25 GB/s / (1 - r)."""
        chip = mtia2i_spec()
        saved = 0.95
        report = link_transfer(1 << 30, chip.host_link, compression_saved_fraction=saved)
        cap = GZIP_ENGINE_BYTES_PER_S / (1 - saved)
        assert report.effective_bandwidth <= cap * 1.01

    def test_incompressible_no_speedup(self):
        chip = mtia2i_spec()
        report = link_transfer(1 << 20, chip.host_link, compression_saved_fraction=0.0)
        assert report.speedup == pytest.approx(1.0)

    def test_validation(self):
        chip = mtia2i_spec()
        with pytest.raises(ValueError):
            link_transfer(-1, chip.host_link, 0.5)
        with pytest.raises(ValueError):
            link_transfer(10, chip.host_link, 1.0)
