"""Tests for Che's-approximation cache model (repro.memory.che)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import SetAssociativeCache
from repro.memory.che import che_hit_rate, tbe_llc_hit_rate, zipf_block_popularities


class TestBlockPopularities:
    def test_normalized(self):
        p = zipf_block_popularities(1_000_000, 256, 1.05)
        assert p.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(p >= 0)

    def test_head_heavier_than_tail(self):
        p = zipf_block_popularities(1_000_000, 256, 1.05)
        assert p[0] > 10 * p[-1]

    def test_block_count(self):
        p = zipf_block_popularities(1000, 256, 1.05)
        assert len(p) == 4  # ceil(1000/256)

    def test_tail_folding_for_huge_tables(self):
        p = zipf_block_popularities(10**9, 256, 1.05, max_blocks=10_000)
        assert len(p) == 10_000
        assert p.sum() == pytest.approx(1.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_block_popularities(0, 256, 1.05)


class TestCheHitRate:
    def test_cache_covers_everything(self):
        p = zipf_block_popularities(10_000, 256, 1.05)
        assert che_hit_rate(p, cache_blocks=len(p)) == 1.0

    def test_no_cache_no_hits(self):
        p = zipf_block_popularities(10_000, 256, 1.05)
        assert che_hit_rate(p, cache_blocks=0) == 0.0

    def test_monotone_in_capacity(self):
        p = zipf_block_popularities(10_000_000, 256, 1.05)
        rates = [che_hit_rate(p, c) for c in (10, 100, 1000, 10_000)]
        assert rates == sorted(rates)
        assert all(0 <= r <= 1 for r in rates)

    def test_skew_raises_hit_rate(self):
        flat = zipf_block_popularities(10_000_000, 256, 1.02)
        skewed = zipf_block_popularities(10_000_000, 256, 1.3)
        assert che_hit_rate(skewed, 500) > che_hit_rate(flat, 500)

    def test_matches_cache_simulation(self):
        """Che's approximation agrees with an actual cache replay for a
        small system where replaying to steady state is feasible."""
        num_rows, rows_per_block, cache_blocks = 200_000, 256, 128
        p = zipf_block_popularities(num_rows, rows_per_block, 1.1)
        predicted = che_hit_rate(p, cache_blocks)
        cache = SetAssociativeCache(
            capacity_bytes=cache_blocks * 64 * 1024, block_bytes=64 * 1024,
            associativity=16, replacement="lru",
        )
        rng = np.random.default_rng(0)
        draws = np.minimum(rng.zipf(1.1, size=120_000) - 1, num_rows - 1)
        blocks = draws // rows_per_block
        for block in blocks[:60_000]:
            cache.access(int(block))
        cache.stats.reset()
        for block in blocks[60_000:]:
            cache.access(int(block))
        measured = cache.stats.hit_rate
        assert predicted == pytest.approx(measured, abs=0.08)


class TestTbeHitRate:
    def test_paper_band_for_production_tables(self):
        """40-60% for production-scale tables (section 4.2)."""
        rate = tbe_llc_hit_rate(
            num_rows_per_table=10_000_000, num_tables=96, row_bytes=256,
            llc_bytes_for_tbe=120 << 20,
        )
        assert 0.40 <= rate <= 0.70

    def test_small_tables_hit_more(self):
        small = tbe_llc_hit_rate(500_000, 16, 256, 120 << 20)
        big = tbe_llc_hit_rate(50_000_000, 128, 256, 120 << 20)
        assert small > big

    def test_more_capacity_more_hits(self):
        low = tbe_llc_hit_rate(10_000_000, 96, 256, 32 << 20)
        high = tbe_llc_hit_rate(10_000_000, 96, 256, 200 << 20)
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            tbe_llc_hit_rate(100, 0, 256, 1 << 20)


@given(
    rows=st.integers(min_value=1000, max_value=5_000_000),
    capacity_blocks=st.integers(min_value=1, max_value=5000),
    exponent=st.floats(min_value=1.01, max_value=1.5),
)
@settings(max_examples=30, deadline=None)
def test_che_hit_rate_bounded_property(rows, capacity_blocks, exponent):
    """Property: the hit rate is always a valid probability, and a cache
    holding all blocks hits 100%."""
    p = zipf_block_popularities(rows, 256, exponent)
    rate = che_hit_rate(p, capacity_blocks)
    assert 0.0 <= rate <= 1.0
    assert che_hit_rate(p, len(p)) == 1.0
