"""Tests for repro.power: activity, thermal, DVFS, capping, provisioning,
and the cluster coupling."""

import dataclasses

import numpy as np
import pytest

from repro.arch.mtia import mtia2i_spec
from repro.cluster.service import default_service_model
from repro.cluster.simulator import ClusterConfig, run_cluster
from repro.models.zoo import hc1
from repro.obs import MetricsRegistry
from repro.perf.executor import Executor
from repro.power import (
    DEFAULT_LADDER_HZ,
    THROTTLE_LIMIT_C,
    DvfsConfig,
    DvfsGovernor,
    RcStage,
    ThermalNetwork,
    ThrottleSchedule,
    ThroughputCurve,
    activity_trace,
    calibrate_throughput,
    capping_study,
    chip_power_w,
    dynamic_power_w,
    mtia2i_thermal,
    overclock_with_thermal_feedback,
    power_limited_capacity_sweep,
    service_model_at_budget,
    time_domain_provisioning,
    utilization_profile,
    water_fill,
)
from repro.power.capping import PerChipCapController, ServerCapController, run_capping
from repro.reliability.overclock import DESIGN_FREQUENCY_HZ
from repro.serving.workload import poisson_stream
from repro.units import GHZ


def _linear_curve(slope: float = 0.85) -> ThroughputCurve:
    freqs = tuple(sorted(set(DEFAULT_LADDER_HZ) | {DESIGN_FREQUENCY_HZ}))
    return ThroughputCurve(
        freqs,
        tuple(slope * (f / DESIGN_FREQUENCY_HZ) + (1 - slope) for f in freqs),
    )


class TestActivity:
    def test_trace_integral_matches_executor_energy(self):
        chip = mtia2i_spec()
        model = hc1()
        report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
        trace = activity_trace(report, chip)
        assert trace.energy_j == pytest.approx(report.energy_j, rel=1e-9)
        assert trace.avg_power_w == pytest.approx(report.avg_power_w, rel=1e-9)

    def test_trace_components_are_nonnegative_and_sum(self):
        chip = mtia2i_spec()
        model = hc1()
        report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
        trace = activity_trace(report, chip)
        for segment in trace.segments:
            assert segment.compute_w >= 0
            assert segment.sram_w >= 0
            assert segment.lpddr_w >= 0
            assert segment.leakage_w > 0
        components = trace.component_energy_j()
        assert sum(components.values()) == pytest.approx(trace.energy_j)

    def test_hot_trace_draws_more(self):
        chip = mtia2i_spec()
        model = hc1()
        report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
        cold = activity_trace(report, chip, temperature_c=60.0)
        hot = activity_trace(report, chip, temperature_c=100.0)
        assert hot.energy_j > cold.energy_j

    def test_resample_preserves_energy(self):
        chip = mtia2i_spec()
        model = hc1()
        report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
        trace = activity_trace(report, chip)
        _, powers = trace.resample(trace.duration_s / 50)
        resampled_energy = float(np.sum(powers) * trace.duration_s / 50)
        assert resampled_energy == pytest.approx(trace.energy_j, rel=0.03)

    def test_dynamic_power_scales_superlinearly_with_frequency(self):
        chip = mtia2i_spec()
        low = dynamic_power_w(chip, 1.0 * GHZ, 1.0)
        high = dynamic_power_w(chip, 1.35 * GHZ, 1.0)
        assert high / low > 1.35 / 1.0  # f * V(f)^2, not just f

    def test_utilization_profile_bounds_and_determinism(self):
        a = utilization_profile(100, 1.0, seed=5)
        b = utilization_profile(100, 1.0, seed=5)
        assert np.array_equal(a, b)
        assert np.all(a >= 0.02) and np.all(a <= 1.0)


class TestThermal:
    def test_steady_state_closed_form(self):
        net = mtia2i_thermal()
        power = 60.0
        expected = net.ambient_c + power * net.total_resistance_c_per_w
        assert net.steady_junction_c(power) == pytest.approx(expected)

    def test_stepping_converges_to_steady_state(self):
        net = mtia2i_thermal()
        temps, _ = net.settle(65.0, tolerance_c=0.01)
        target = net.steady_state(65.0)
        assert np.max(np.abs(temps - target)) <= 0.02

    def test_large_dt_is_substepped_stably(self):
        net = mtia2i_thermal()
        temps = net.initial_state()
        for _ in range(20):
            temps = net.step(temps, 80.0, 120.0)  # dt >> stability limit
        assert np.all(np.isfinite(temps))
        assert float(temps[0]) <= net.steady_junction_c(80.0) + 0.5

    def test_zero_power_stays_at_ambient(self):
        net = mtia2i_thermal()
        temps = net.step(net.initial_state(), 0.0, 100.0)
        assert np.allclose(temps, net.ambient_c)

    def test_invalid_networks_rejected(self):
        with pytest.raises(ValueError):
            ThermalNetwork(stages=())
        with pytest.raises(ValueError):
            RcStage("bad", heat_capacity_j_per_c=0.0, resistance_c_per_w=1.0)
        with pytest.raises(ValueError):
            RcStage("bad", heat_capacity_j_per_c=1.0, resistance_c_per_w=-1.0)


class TestLeakage:
    def test_reference_temperature_matches_legacy_idle_power(self):
        chip = mtia2i_spec()
        legacy = chip.typical_watts * chip.idle_power_fraction
        assert chip.leakage_power_w(None) == pytest.approx(legacy)
        assert chip.leakage_power_w(chip.leakage_ref_temp_c) == pytest.approx(legacy)

    def test_leakage_grows_with_temperature(self):
        chip = mtia2i_spec()
        assert chip.leakage_power_w(100.0) > chip.leakage_power_w(60.0)

    def test_executor_energy_unchanged_without_temperature(self):
        chip = mtia2i_spec()
        model = hc1()
        graph = model.graph()  # one graph: executions are then identical
        baseline = Executor(chip).run(graph, model.batch, warmup_runs=1)
        explicit = Executor(chip, temperature_c=chip.leakage_ref_temp_c).run(
            graph, model.batch, warmup_runs=1
        )
        assert explicit.energy_j == pytest.approx(baseline.energy_j, rel=1e-9)

    def test_hot_executor_burns_more_energy(self):
        chip = mtia2i_spec()
        model = hc1()
        graph = model.graph()
        cold = Executor(chip, temperature_c=60.0).run(
            graph, model.batch, warmup_runs=1
        )
        hot = Executor(chip, temperature_c=105.0).run(
            graph, model.batch, warmup_runs=1
        )
        assert hot.energy_j > cold.energy_j
        assert hot.latency_s == cold.latency_s  # leakage, not slowdown


class TestDvfs:
    def test_curve_interpolation_and_clamping(self):
        curve = _linear_curve()
        assert curve.relative(DESIGN_FREQUENCY_HZ) == pytest.approx(1.0)
        assert curve.relative(0.1 * GHZ) == curve.relative_throughput[0]
        assert curve.relative(9.9 * GHZ) == curve.relative_throughput[-1]
        mid = curve.relative(1.15 * GHZ)
        assert curve.relative(1.1 * GHZ) < mid < curve.relative(1.2 * GHZ)

    def test_calibrated_curve_is_monotone_and_normalized(self):
        curve = calibrate_throughput(hc1())
        assert curve.relative(DESIGN_FREQUENCY_HZ) == pytest.approx(1.0)
        values = curve.relative_throughput
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        # End-to-end speedup is sub-linear in frequency: memory stays put.
        top = curve.frequencies_hz[-1]
        assert curve.relative(top) <= top / DESIGN_FREQUENCY_HZ + 1e-9

    def test_governor_throttles_over_limit(self):
        chip = mtia2i_spec()
        config = DvfsConfig()
        governor = DvfsGovernor(chip, config, fmax_hz=1.6 * GHZ)
        start = governor.index
        governor.step(THROTTLE_LIMIT_C + 5.0, 0.8)
        assert governor.index == start - 1
        assert governor.thermal_throttles == 1

    def test_governor_ramps_up_when_cool(self):
        chip = mtia2i_spec()
        governor = DvfsGovernor(chip, DvfsConfig(), fmax_hz=1.6 * GHZ)
        for _ in range(len(DEFAULT_LADDER_HZ)):
            governor.step(60.0, 0.5)
        assert governor.frequency_hz == DEFAULT_LADDER_HZ[-1]

    def test_weak_chip_is_capped_by_its_margin(self):
        chip = mtia2i_spec()
        # fmax 1.30 GHz with 1.05 qualification only clears 1.2 GHz.
        governor = DvfsGovernor(chip, DvfsConfig(), fmax_hz=1.30 * GHZ)
        for _ in range(len(DEFAULT_LADDER_HZ)):
            governor.step(60.0, 0.5)
        assert governor.frequency_hz == pytest.approx(1.2 * GHZ)

    def test_power_cap_blocks_ramp(self):
        chip = mtia2i_spec()
        config = DvfsConfig(power_cap_w=40.0)
        governor = DvfsGovernor(chip, config, fmax_hz=1.6 * GHZ)
        for _ in range(len(DEFAULT_LADDER_HZ)):
            governor.step(60.0, 1.0)
        assert chip_power_w(chip, governor.frequency_hz, 1.0, 60.0) <= 40.0

    def test_governed_gain_lands_in_paper_band(self):
        result = overclock_with_thermal_feedback(
            _linear_curve(), num_chips=12, duration_s=300.0, seed=0
        )
        assert 0.05 <= result.mean_gain <= 0.20
        assert result.thermal_throttles > 0
        assert result.peak_junction_c > 95.0

    def test_governed_study_is_deterministic(self):
        a = overclock_with_thermal_feedback(
            _linear_curve(), num_chips=6, duration_s=120.0, seed=9
        )
        b = overclock_with_thermal_feedback(
            _linear_curve(), num_chips=6, duration_s=120.0, seed=9
        )
        assert a.chip_gains == b.chip_gains
        assert a.example_run == b.example_run


class TestCapping:
    def test_water_fill_conserves_budget(self):
        demands = np.array([10.0, 50.0, 5.0, 80.0])
        alloc = water_fill(demands, 100.0)
        assert float(alloc.sum()) == pytest.approx(100.0)
        assert np.all(alloc <= demands + 1e-9)

    def test_water_fill_satisfies_everyone_under_loose_budget(self):
        demands = np.array([10.0, 20.0, 30.0])
        alloc = water_fill(demands, 100.0)
        assert np.allclose(alloc, demands)

    def test_per_chip_beats_server_level_on_p99(self):
        comparison = capping_study(duration_s=200.0, seed=0)
        assert comparison.per_chip.p99_deficit < comparison.server_level.p99_deficit

    def test_per_chip_never_violates_cap(self):
        comparison = capping_study(duration_s=200.0, seed=1)
        assert comparison.per_chip.cap_violation_fraction == 0.0
        # The lagged server-level loop does overshoot sometimes.
        assert comparison.server_level.cap_violation_fraction >= 0.0

    def test_controllers_respect_tape_shape(self):
        chip = mtia2i_spec()
        tape = np.full((4, 30), 0.5)
        budget = 4 * chip_power_w(chip, DEFAULT_LADDER_HZ[-1], 0.5)
        for controller in (
            PerChipCapController(chip, 4, budget),
            ServerCapController(chip, 4, budget),
        ):
            outcome = run_capping(controller, tape)
            assert len(outcome.deficits) == 30
            assert outcome.delivered_fraction <= 1.0 + 1e-9


class TestProvisioning:
    def test_reduction_lands_near_paper(self):
        outcome = time_domain_provisioning(num_servers=20, duration_s=300.0, seed=0)
        assert 0.30 <= outcome.reduction_fraction <= 0.50
        assert outcome.matches_paper

    def test_revised_budget_is_max_of_prongs(self):
        outcome = time_domain_provisioning(num_servers=10, duration_s=200.0, seed=2)
        assert outcome.revised_budget_w == pytest.approx(
            max(outcome.experiment_budget_w, outcome.fleet_budget_w)
        )

    def test_revised_budget_covers_observed_mean(self):
        outcome = time_domain_provisioning(num_servers=10, duration_s=200.0, seed=3)
        assert outcome.revised_budget_w > outcome.mean_server_power_w


class TestClusterCoupling:
    def test_no_throttle_is_byte_identical_to_unit_schedule(self):
        service = default_service_model()
        config = ClusterConfig(replicas=6, seed=4)
        requests = poisson_stream(200.0, 5.0, seed=4)
        plain = run_cluster(config, service, requests)
        unit = run_cluster(
            config, service, requests, throttle=ThrottleSchedule.constant(1.0)
        )
        assert plain.event_log == unit.event_log
        assert plain.latencies_s == unit.latencies_s

    def test_throttling_raises_latency(self):
        service = default_service_model()
        config = ClusterConfig(replicas=6, seed=4)
        requests = poisson_stream(200.0, 5.0, seed=4)
        plain = run_cluster(config, service, requests)
        slowed = run_cluster(
            config, service, requests, throttle=ThrottleSchedule.constant(1.5)
        )
        assert slowed.p99_latency_s > plain.p99_latency_s

    def test_schedule_lookup_is_piecewise_constant(self):
        schedule = ThrottleSchedule(times_s=(0.0, 10.0), multipliers=(1.0, 2.0))
        assert schedule.multiplier(-5.0) == 1.0
        assert schedule.multiplier(9.99) == 1.0
        assert schedule.multiplier(10.0) == 2.0
        assert schedule.multiplier(1e9) == 2.0

    def test_schedule_from_frequency_trace(self):
        schedule = ThrottleSchedule.from_frequency_trace(
            times_s=(0.0, 1.0), frequencies_hz=(1.35 * GHZ, 0.9 * GHZ),
            nominal_hz=1.35 * GHZ,
        )
        assert schedule.multiplier(0.5) == pytest.approx(1.0)
        assert schedule.multiplier(1.5) == pytest.approx(1.5)

    def test_service_model_at_budget_scales_mean(self):
        service = default_service_model()
        chip = mtia2i_spec()
        starved, freq = service_model_at_budget(service, 30.0, chip=chip)
        assert freq < chip.frequency_hz
        assert starved.mean_service_s > service.mean_service_s
        rich, freq_rich = service_model_at_budget(service, 500.0, chip=chip)
        assert freq_rich == DEFAULT_LADDER_HZ[-1]
        assert rich.mean_service_s == pytest.approx(service.mean_service_s)

    def test_power_limited_sweep_is_monotone_with_knee(self):
        service = default_service_model()
        budgets = (1200.0, 2000.0, 2600.0)
        sweep = power_limited_capacity_sweep(
            service, budgets, replicas=8, duration_s=6.0, seed=0
        )
        qps = [p.max_qps for p in sweep.points]
        assert all(a <= b + 1e-9 for a, b in zip(qps, qps[1:]))
        assert sweep.knee_budget_w in budgets
        frequencies = [p.frequency_hz for p in sweep.points]
        assert all(a <= b for a, b in zip(frequencies, frequencies[1:]))


class TestObservability:
    def test_registry_does_not_change_outcomes(self):
        registry = MetricsRegistry(enabled=True)
        observed = overclock_with_thermal_feedback(
            _linear_curve(), num_chips=4, duration_s=60.0, seed=3,
            registry=registry,
        )
        silent = overclock_with_thermal_feedback(
            _linear_curve(), num_chips=4, duration_s=60.0, seed=3
        )
        assert observed.chip_gains == silent.chip_gains
        assert registry.gauge("power.dvfs.mean_gain").value == pytest.approx(
            observed.mean_gain
        )

    def test_capping_and_provisioning_emit_metrics(self):
        registry = MetricsRegistry(enabled=True)
        capping_study(duration_s=30.0, seed=0, registry=registry)
        time_domain_provisioning(
            num_servers=2, duration_s=30.0, seed=0, registry=registry
        )
        snapshot = registry.snapshot()
        assert "power.cap.per_chip.p99_deficit" in snapshot["gauges"]
        assert "power.provisioning.reduction_fraction" in snapshot["gauges"]
        assert snapshot["series"]["power.provisioning.server_w"]

    def test_disabled_registry_emits_nothing(self):
        registry = MetricsRegistry(enabled=False)
        capping_study(duration_s=30.0, seed=0, registry=registry)
        snapshot = registry.snapshot()
        assert not snapshot["gauges"] and not snapshot["series"]


class TestThrottleScheduleValidation:
    def test_rejects_bad_schedules(self):
        with pytest.raises(ValueError):
            ThrottleSchedule(times_s=(), multipliers=())
        with pytest.raises(ValueError):
            ThrottleSchedule(times_s=(1.0, 0.0), multipliers=(1.0, 1.0))
        with pytest.raises(ValueError):
            ThrottleSchedule(times_s=(0.0,), multipliers=(0.0,))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DvfsConfig(ladder_hz=(2.0 * GHZ, 1.0 * GHZ))
        with pytest.raises(ValueError):
            DvfsConfig(thermal_limit_c=90.0, thermal_target_c=95.0)
        with pytest.raises(ValueError):
            dataclasses.replace(DvfsConfig(), qualification_margin=0.5)
