"""Tests for fleet-level models: contention, allocation, A/B testing."""

import numpy as np
import pytest

from repro.arch import mtia2i_server
from repro.fleet import (
    AllocationError,
    HOST_DRAM_AMPLIFICATION_NAIVE,
    HOST_DRAM_AMPLIFICATION_OPTIMIZED,
    NumaAllocator,
    SyntheticCtrModel,
    host_dram_contention,
    normalized_entropy,
    production_gain,
    production_utilization,
    run_ab_test,
)


class TestHostContention:
    def test_light_traffic_unconstrained(self):
        result = host_dram_contention(
            host_bytes_per_batch=1e6, batches_per_s_per_chip=100,
            server=mtia2i_server(),
        )
        assert result.throughput_scale == 1.0
        assert not result.host_bound

    def test_heavy_traffic_scales_down(self):
        """Section 3.4: host DRAM bottlenecks low-complexity models on all
        24 accelerators."""
        result = host_dram_contention(
            host_bytes_per_batch=40e6, batches_per_s_per_chip=2000,
            server=mtia2i_server(),
        )
        assert result.host_bound
        assert result.throughput_scale < 1.0

    def test_copy_elimination_helps(self):
        """The paper's optimization: eliminating memory copies halves the
        amplification."""
        naive = host_dram_contention(
            20e6, 1500, mtia2i_server(), amplification=HOST_DRAM_AMPLIFICATION_NAIVE
        )
        optimized = host_dram_contention(
            20e6, 1500, mtia2i_server(),
            amplification=HOST_DRAM_AMPLIFICATION_OPTIMIZED,
        )
        assert optimized.throughput_scale > naive.throughput_scale


class TestProductionUtilization:
    def test_smaller_devices_utilize_better(self):
        """Section 5.4: smaller chips allocate finer, idle less."""
        small = production_utilization(device_throughput=100, mean_load=450)
        large = production_utilization(device_throughput=1000, mean_load=450)
        assert small.mean_utilization > large.mean_utilization

    def test_gain_in_paper_band(self):
        """The production gain over replay was 5-90% (section 5.4)."""
        gain = production_gain(
            mtia_chip_throughput=100_000, gpu_chip_throughput=350_000,
            mean_load=700_000,
        )
        assert 1.0 <= gain <= 1.9

    def test_devices_cover_peak(self):
        result = production_utilization(device_throughput=100, mean_load=450,
                                        peak_to_mean=2.0)
        assert result.devices_provisioned * 100 >= 450 * 2.0 * 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            production_utilization(0, 100)


class TestNumaAllocator:
    def test_sharded_model_single_socket(self):
        allocator = NumaAllocator(mtia2i_server())
        grant = allocator.allocate("hc3", 2)
        assert len(grant.accelerator_ids) == 2
        # Both accelerators come from the same socket's range.
        per_socket = mtia2i_server().accelerators_per_socket
        sockets = {a // per_socket for a in grant.accelerator_ids}
        assert len(sockets) == 1

    def test_resource_shares_proportional(self):
        allocator = NumaAllocator(mtia2i_server())
        grant = allocator.allocate("m", 3)
        assert grant.cores == pytest.approx(96 * 3 / 12)

    def test_oversized_request_rejected(self):
        allocator = NumaAllocator(mtia2i_server())
        with pytest.raises(AllocationError):
            allocator.allocate("huge", 13)

    def test_exhaustion(self):
        allocator = NumaAllocator(mtia2i_server())
        for i in range(24):
            allocator.allocate(f"m{i}", 1)
        assert allocator.utilization() == 1.0
        with pytest.raises(AllocationError):
            allocator.allocate("extra", 1)

    def test_release_returns_capacity(self):
        allocator = NumaAllocator(mtia2i_server())
        grant = allocator.allocate("m", 4)
        allocator.release(grant)
        assert allocator.free_accelerators() == 24
        with pytest.raises(AllocationError):
            allocator.release(grant)

    def test_spreads_when_socket_full(self):
        allocator = NumaAllocator(mtia2i_server())
        allocator.allocate("a", 12)
        grant = allocator.allocate("b", 2)
        assert grant.socket == 1

    def test_alloc_release_round_trip_restores_state(self):
        allocator = NumaAllocator(mtia2i_server())
        before = allocator.free_by_socket()
        grants = [allocator.allocate(f"m{i}", 3) for i in range(4)]
        for grant in grants:
            allocator.release(grant)
        assert allocator.free_by_socket() == before
        assert allocator.free_accelerators() == 24
        # The round trip leaves the allocator fully usable again.
        assert len(allocator.allocate("again", 12).accelerator_ids) == 12

    def test_fragmentation_stats_empty_server(self):
        stats = NumaAllocator(mtia2i_server()).fragmentation_stats()
        assert stats.free_total == 24
        assert stats.largest_socket_free == 12
        assert stats.fragmentation == pytest.approx(0.5)
        assert stats.placeable

    def test_fragmentation_blocks_large_request(self):
        """A server can have plenty free yet place no large sharded model
        — the quantity the cluster pool's capacity accounting tracks."""
        allocator = NumaAllocator(mtia2i_server())
        allocator.allocate("a", 7)
        allocator.allocate("b", 7)  # lands on socket 1
        stats = allocator.fragmentation_stats(request_size=6)
        assert stats.free_total == 10  # 5 free on each socket
        assert stats.largest_socket_free == 5
        assert not stats.placeable
        assert stats.unplaceable_free == 10
        with pytest.raises(AllocationError):
            allocator.allocate("big", 6)

    def test_fragmentation_clears_after_release(self):
        allocator = NumaAllocator(mtia2i_server())
        a = allocator.allocate("a", 7)
        allocator.allocate("b", 7)
        allocator.release(a)
        stats = allocator.fragmentation_stats(request_size=6)
        assert stats.largest_socket_free == 12
        assert stats.placeable

    def test_fragmentation_probe_validation(self):
        allocator = NumaAllocator(mtia2i_server())
        with pytest.raises(ValueError):
            allocator.fragmentation_stats(request_size=0)


class TestAbTest:
    def test_normalized_entropy_perfect_predictions(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        good = normalized_entropy(np.array([0.99, 0.01, 0.99, 0.01]), labels)
        bad = normalized_entropy(np.array([0.5, 0.5, 0.5, 0.5]), labels)
        assert good < bad

    def test_ne_of_base_rate_is_one(self):
        rng = np.random.default_rng(0)
        labels = (rng.uniform(size=100_000) < 0.1).astype(float)
        base = np.full_like(labels, labels.mean())
        assert normalized_entropy(base, labels) == pytest.approx(1.0, abs=0.01)

    def test_identical_backends_parity(self):
        model = SyntheticCtrModel(seed=1)
        result = run_ab_test(model, model.exact_backend(), model.exact_backend(),
                             num_requests=50_000)
        assert result.quality_parity()
        assert abs(result.ne_delta) < 0.01

    def test_fp16_backend_parity(self):
        """Section 5.6's conclusion: the MTIA numerics path achieves
        comparable model quality."""
        model = SyntheticCtrModel(seed=2)
        fp16 = model.backend_with(lambda x: x.astype(np.float16).astype(np.float64))
        result = run_ab_test(model, model.exact_backend(), fp16, num_requests=100_000)
        assert result.quality_parity()

    def test_broken_backend_fails_parity(self):
        model = SyntheticCtrModel(seed=3)
        broken = model.backend_with(lambda x: x * 2.0 + 1.0)  # systematic bias
        result = run_ab_test(model, model.exact_backend(), broken, num_requests=50_000)
        assert not result.quality_parity()
        assert result.treatment_ne > result.control_ne

    def test_traffic_split_fraction(self):
        model = SyntheticCtrModel(seed=4)
        result = run_ab_test(model, model.exact_backend(), model.exact_backend(),
                             num_requests=20_000, treatment_fraction=0.25)
        assert result.control_ne > 0  # both arms got traffic

    def test_validation(self):
        model = SyntheticCtrModel()
        with pytest.raises(ValueError):
            run_ab_test(model, model.exact_backend(), model.exact_backend(),
                        treatment_fraction=0.0)
        with pytest.raises(ValueError):
            normalized_entropy(np.ones(3), np.ones(4))
