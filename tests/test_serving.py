"""Tests for the serving simulator: workloads, coalescing, scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    Batch,
    CoalescingConfig,
    ModelJobProfile,
    Request,
    coalesce,
    coalescing_stats,
    diurnal_load_curve,
    max_throughput_under_slo,
    poisson_stream,
    replay_stream,
    schedule_batches,
    simulate_serving,
)


class TestWorkload:
    def test_poisson_rate(self):
        requests = poisson_stream(rate_per_s=100, duration_s=50, seed=1)
        assert len(requests) == pytest.approx(5000, rel=0.1)

    def test_arrivals_sorted_and_bounded(self):
        requests = poisson_stream(rate_per_s=50, duration_s=10)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0 <= t < 10 for t in times)

    def test_samples_positive(self):
        requests = poisson_stream(rate_per_s=50, duration_s=5)
        assert all(r.samples >= 1 for r in requests)

    def test_diurnal_curve_peak_to_mean(self):
        curve = diurnal_load_curve(1000, peak_to_mean=2.2, noise=0.0)
        assert np.max(curve) / np.mean(curve) == pytest.approx(2.2, rel=0.35)

    def test_replay_stream(self):
        requests = replay_stream([0.1, 0.2, 0.3], [10, 20, 30])
        assert [r.arrival_s for r in requests] == pytest.approx([0.1, 0.3, 0.6])

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(arrival_s=0.0, samples=0)
        with pytest.raises(ValueError):
            Request(arrival_s=-1.0, samples=1)


class TestCoalescing:
    def _config(self, **kwargs):
        defaults = dict(window_s=0.010, max_parallel_windows=4, max_batch_samples=512)
        defaults.update(kwargs)
        return CoalescingConfig(**defaults)

    def test_all_requests_batched(self):
        requests = poisson_stream(rate_per_s=200, duration_s=5, samples_per_request=32)
        batches = coalesce(requests, self._config())
        batched = sum(len(b.requests) for b in batches)
        assert batched == len(requests)

    def test_batches_respect_capacity(self):
        requests = poisson_stream(rate_per_s=500, duration_s=5, samples_per_request=64)
        config = self._config()
        batches = coalesce(requests, config)
        # Single oversized requests aside, batches stay within capacity.
        for batch in batches:
            if len(batch.requests) > 1:
                assert batch.samples <= config.max_batch_samples * 1.1

    def test_wider_window_fuller_batches(self):
        requests = poisson_stream(rate_per_s=300, duration_s=10, samples_per_request=16)
        narrow = coalescing_stats(coalesce(requests, self._config(window_s=0.001)), self._config(window_s=0.001))
        wide = coalescing_stats(coalesce(requests, self._config(window_s=0.050)), self._config(window_s=0.050))
        assert wide.mean_fill_fraction > narrow.mean_fill_fraction

    def test_high_fill_achievable(self):
        """Section 4.1: effective tuning reaches >95% requests per batch
        (near-full batches) under steady load."""
        requests = poisson_stream(rate_per_s=2000, duration_s=5, samples_per_request=32,
                                  samples_jitter=0.05)
        config = self._config(window_s=0.020, max_batch_samples=1024)
        stats = coalescing_stats(coalesce(requests, config), config)
        assert stats.mean_fill_fraction > 0.9

    def test_wait_bounded_by_window_when_uncongested(self):
        requests = poisson_stream(rate_per_s=100, duration_s=5, samples_per_request=8)
        config = self._config(window_s=0.010, max_parallel_windows=8)
        stats = coalescing_stats(coalesce(requests, config), config)
        assert stats.max_wait_s <= 0.010 * 2 + 1e-6

    def test_empty_input(self):
        assert coalesce([], self._config()) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoalescingConfig(window_s=0, max_parallel_windows=1, max_batch_samples=1)


@given(
    rate=st.floats(min_value=20, max_value=400),
    window_ms=st.floats(min_value=1, max_value=40),
)
@settings(max_examples=25, deadline=None)
def test_coalescing_conserves_requests(rate, window_ms):
    """Property: every request lands in exactly one batch."""
    requests = poisson_stream(rate_per_s=rate, duration_s=3, samples_per_request=16, seed=9)
    config = CoalescingConfig(
        window_s=window_ms / 1000, max_parallel_windows=4, max_batch_samples=256
    )
    batches = coalesce(requests, config)
    ids = sorted(r.request_id for b in batches for r in b.requests)
    assert ids == sorted(r.request_id for r in requests)


class TestScheduler:
    def _profile(self, **kwargs):
        defaults = dict(
            remote_time_s=0.005,
            merge_time_s=0.009,
            remote_jobs_per_batch=2,
            dispatch_overhead_s=0.001,
            merge_submission_delay_s=0.0008,
        )
        defaults.update(kwargs)
        return ModelJobProfile(**defaults)

    def _batches(self, count=40, gap=0.022):
        return [
            Batch(requests=[Request(arrival_s=i * gap, samples=256, request_id=i)],
                  formed_at_s=i * gap)
            for i in range(count)
        ]

    def test_all_batches_complete(self):
        result = schedule_batches(self._batches(), self._profile())
        assert len(result.completions) == 40
        for completion in result.completions:
            assert completion.merge_done_s > completion.remote_done_s >= 0

    def test_merge_depends_on_remotes(self):
        result = schedule_batches(self._batches(5), self._profile())
        for completion in result.completions:
            assert completion.merge_done_s >= completion.remote_done_s + 0.009

    def test_consolidation_preserves_grid_time(self):
        """Paper: PE-grid execution time identical in both cases."""
        profile = self._profile()
        merged = profile.consolidated()
        assert merged.remote_jobs_per_batch == 1
        assert merged.remote_time_s * merged.remote_jobs_per_batch == pytest.approx(
            profile.remote_time_s * profile.remote_jobs_per_batch
        )

    def test_consolidation_improves_p99(self):
        """The Figure 5 effect under load."""
        from repro.serving.batcher import CoalescingConfig, coalesce
        from repro.serving.workload import poisson_stream

        requests = poisson_stream(rate_per_s=100, duration_s=30, samples_per_request=256, seed=3)
        config = CoalescingConfig(window_s=0.025, max_parallel_windows=4, max_batch_samples=1024)
        batches = coalesce(requests, config)
        profile = self._profile()
        separate = schedule_batches(batches, profile)
        merged = schedule_batches(batches, profile.consolidated())
        assert merged.latency_percentile(99) < separate.latency_percentile(99)

    def test_utilization_bounded(self):
        result = schedule_batches(self._batches(), self._profile())
        assert 0 < result.utilization <= 1.0

    def test_percentiles_ordered(self):
        result = schedule_batches(self._batches(), self._profile())
        assert result.latency_percentile(50) <= result.latency_percentile(99)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ModelJobProfile(remote_time_s=-1, merge_time_s=0, remote_jobs_per_batch=1)
        with pytest.raises(ValueError):
            ModelJobProfile(remote_time_s=1, merge_time_s=1, remote_jobs_per_batch=0)


class TestSimulator:
    def test_outcome_fields(self):
        profile = ModelJobProfile(0.002, 0.004, 2)
        config = CoalescingConfig(window_s=0.010, max_parallel_windows=4, max_batch_samples=512)
        outcome = simulate_serving(profile, config, request_rate_per_s=50, duration_s=10)
        assert outcome.served_samples_per_s > 0
        assert outcome.p50_latency_s <= outcome.p99_latency_s

    def test_overload_blows_slo(self):
        profile = ModelJobProfile(0.010, 0.020, 2)
        config = CoalescingConfig(window_s=0.010, max_parallel_windows=4, max_batch_samples=256)
        outcome = simulate_serving(profile, config, request_rate_per_s=500, duration_s=10)
        assert not outcome.meets_slo

    def test_max_throughput_meets_slo(self):
        profile = ModelJobProfile(0.002, 0.004, 2, dispatch_overhead_s=0.0005)
        config = CoalescingConfig(window_s=0.015, max_parallel_windows=4, max_batch_samples=1024)
        best = max_throughput_under_slo(profile, config, duration_s=15.0, iterations=5)
        assert best.meets_slo
        assert best.served_samples_per_s > 0


class TestFaultInjection:
    """Device-fault impact on serving pools (the section 5.5 deadlock as
    the serving tier experiences it)."""

    def _pool(self, devices=100, utilization=0.6):
        from repro.serving import PoolState

        return PoolState(
            devices=devices,
            device_throughput=100_000,
            offered_load=devices * 100_000 * utilization,
        )

    def test_small_fault_rate_tolerable(self):
        from repro.serving import inject_device_faults

        impact = inject_device_faults(self._pool(), fault_rate=0.001)
        assert impact.devices_lost == 1
        assert not impact.slo_at_risk

    def test_large_fault_rate_breaks_slo(self):
        from repro.serving import inject_device_faults

        impact = inject_device_faults(self._pool(utilization=0.8), fault_rate=0.2)
        assert impact.slo_at_risk

    def test_overload_detected(self):
        from repro.serving import inject_device_faults

        impact = inject_device_faults(self._pool(utilization=0.95), fault_rate=0.1)
        assert impact.after.overloaded
        assert impact.slo_at_risk

    def test_headroom_sizing(self):
        from repro.serving import headroom_for_fault_tolerance, inject_device_faults

        pool = self._pool(utilization=0.7)
        extra = headroom_for_fault_tolerance(pool, fault_rate=0.05)
        assert extra >= 0
        import dataclasses as dc

        buffered = dc.replace(pool, devices=pool.devices + extra)
        assert not inject_device_faults(buffered, 0.05).slo_at_risk

    def test_headroom_matches_exhaustive_search(self):
        """The closed-form sizing must agree with the linear search it
        replaced, across a grid that crosses the rounding boundaries."""
        import dataclasses as dc

        from repro.serving import (
            PoolState,
            headroom_for_fault_tolerance,
            inject_device_faults,
        )

        def brute_force(pool, fault_rate, max_delay_factor):
            target = 1.0 - 1.0 / max_delay_factor
            total = pool.devices
            while True:
                candidate = dc.replace(pool, devices=total)
                impact = inject_device_faults(candidate, fault_rate)
                if (
                    not impact.after.overloaded
                    and impact.after.utilization <= target
                ):
                    return total - pool.devices
                total += 1

        for devices in (1, 3, 7, 100, 257):
            for utilization in (0.05, 0.5, 0.85, 0.99):
                for fault_rate in (0.0, 0.001, 0.1, 1 / 3, 0.9):
                    for max_delay_factor in (1.1, 1.5, 3.0):
                        pool = PoolState(
                            devices=devices,
                            device_throughput=100_000,
                            offered_load=devices * 100_000 * utilization,
                        )
                        got = headroom_for_fault_tolerance(
                            pool, fault_rate, max_delay_factor
                        )
                        want = brute_force(pool, fault_rate, max_delay_factor)
                        assert got == want, (
                            f"devices={devices} util={utilization} "
                            f"fault={fault_rate} delay={max_delay_factor}: "
                            f"closed form {got} != search {want}"
                        )

    def test_headroom_zero_when_already_buffered(self):
        from repro.serving import headroom_for_fault_tolerance

        pool = self._pool(utilization=0.1)
        assert headroom_for_fault_tolerance(pool, fault_rate=0.01) == 0

    def test_queueing_delay_grows(self):
        from repro.serving import queueing_delay_factor

        assert queueing_delay_factor(0.9) > queueing_delay_factor(0.5)
        assert queueing_delay_factor(1.0) == float("inf")

    def test_validation(self):
        from repro.serving import PoolState, inject_device_faults

        with pytest.raises(ValueError):
            PoolState(devices=0, device_throughput=1, offered_load=0)
        with pytest.raises(ValueError):
            inject_device_faults(self._pool(), fault_rate=1.0)

    def test_headroom_validation(self):
        from repro.serving import headroom_for_fault_tolerance

        with pytest.raises(ValueError):
            headroom_for_fault_tolerance(self._pool(), fault_rate=1.0)
        with pytest.raises(ValueError):
            headroom_for_fault_tolerance(self._pool(), fault_rate=-0.1)
        with pytest.raises(ValueError):
            headroom_for_fault_tolerance(
                self._pool(), fault_rate=0.1, max_delay_factor=1.0
            )
