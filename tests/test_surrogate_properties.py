"""Property-based tests for repro.surrogate.

Hypothesis drives the three contracts the verified-surrogate pattern
rests on:

* training reproducibility — the full collect-train pipeline is a pure
  function of (chip, n_samples, seed): two runs produce bit-identical
  predictions, whatever the seed or sample count;
* recorder transparency — attaching a ``DatasetRecorder`` to a
  ``KernelLatencyMemo`` never changes what ``measure`` returns, for any
  lookup sequence, and the recorded rows are exactly the cache misses;
* verification soundness — ``verified_argmin`` returns the min over
  its exact-evaluated set (never a prediction), and
  ``verified_min_feasible`` / ``verified_max_feasible`` agree with the
  linear scan on every monotone predicate, from every starting guess.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_spec
from repro.fastsim.memo import KernelLatencyMemo
from repro.kernels.gemm import default_variants
from repro.surrogate import (
    DatasetRecorder,
    train_gemm_surrogate,
    verified_argmin,
    verified_max_feasible,
    verified_min_feasible,
)
from repro.tensors import DType, GemmShape

CHIP = mtia2i_spec()
VARIANTS = default_variants()


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       n_samples=st.integers(min_value=120, max_value=400))
def test_training_bit_for_bit_reproducible(seed, n_samples):
    first, _ = train_gemm_surrogate(CHIP, n_samples=n_samples, seed=seed)
    second, _ = train_gemm_surrogate(CHIP, n_samples=n_samples, seed=seed)
    shapes = [(64, 128, 256), (700, 1700, 800), (31, 33, 35)]
    probe = VARIANTS[:64]
    np.testing.assert_array_equal(
        first.predict_time_grid(shapes, probe),
        second.predict_time_grid(shapes, probe),
    )


lookup_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),   # shape pick
        st.integers(min_value=0, max_value=30),  # variant pick
    ),
    min_size=0, max_size=40,
)

_SHAPES = [
    GemmShape(m, k, n)
    for m, k, n in [(8, 16, 32), (64, 64, 64), (100, 300, 50),
                    (256, 512, 128), (33, 65, 129), (512, 512, 512),
                    (40, 4096, 24), (1024, 128, 1024)]
]


@settings(max_examples=40, deadline=None)
@given(lookups=lookup_sequences)
def test_recorder_never_steers_the_memo(lookups):
    bare = KernelLatencyMemo(CHIP)
    recorder = DatasetRecorder()
    recorded = KernelLatencyMemo(CHIP, recorder=recorder)
    for shape_pick, variant_pick in lookups:
        shape = _SHAPES[shape_pick]
        variant = VARIANTS[variant_pick]
        assert bare.measure(shape, variant, DType.FP16) == recorded.measure(
            shape, variant, DType.FP16
        )
    assert bare.hits == recorded.hits
    assert bare.misses == recorded.misses
    # One recorded row per distinct exact evaluation, in miss order.
    assert len(recorder) == recorded.misses
    replay = KernelLatencyMemo(CHIP)
    for (m, k, n), variant, dtype, time_s in zip(
        recorder.shapes, recorder.variants, recorder.dtypes,
        recorder.times_s,
    ):
        assert replay.measure(GemmShape(m, k, n), variant, dtype) == time_s


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-9, max_value=1e3,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=30,
    ),
    top_k=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_verified_argmin_winner_is_exact_evaluated(values, top_k, seed):
    ranking = np.random.default_rng(seed).permutation(len(values))
    result = verified_argmin(ranking, lambda i: values[i], top_k)
    # The winner was exact-evaluated, and is the min of that set.
    assert result.best_index in result.evaluated
    assert result.best_value == values[result.best_index]
    assert result.best_value == min(values[i] for i in result.evaluated)
    assert result.exact_evaluations == min(top_k, len(values))
    assert result.surrogate_evaluations == len(values)


@settings(max_examples=200, deadline=None)
@given(
    lo=st.integers(min_value=-20, max_value=20),
    size=st.integers(min_value=1, max_value=30),
    boundary_offset=st.integers(min_value=0, max_value=31),
    guess=st.integers(min_value=-40, max_value=60),
)
def test_min_feasible_equals_linear_scan_on_monotone(
    lo, size, boundary_offset, guess
):
    hi = lo + size - 1
    boundary = lo + boundary_offset  # > hi means nothing is feasible
    calls = []

    def feasible(i):
        calls.append(i)
        assert lo <= i <= hi  # never probes outside the range
        return i >= boundary

    scan = next((i for i in range(lo, hi + 1) if i >= boundary), None)
    answer, exact_calls = verified_min_feasible(guess, lo, hi, feasible)
    assert answer == scan
    assert exact_calls == len(calls)
    # Two-sided certificate: the boundary itself was exact-probed, and
    # so was the point just below it (when one exists in range).
    if answer is not None:
        assert answer in calls
        if answer > lo:
            assert answer - 1 in calls


@settings(max_examples=200, deadline=None)
@given(
    lo=st.integers(min_value=-20, max_value=20),
    size=st.integers(min_value=1, max_value=30),
    boundary_offset=st.integers(min_value=-1, max_value=30),
    guess=st.integers(min_value=-40, max_value=60),
)
def test_max_feasible_equals_linear_scan_on_monotone(
    lo, size, boundary_offset, guess
):
    hi = lo + size - 1
    boundary = lo + boundary_offset  # < lo means nothing is feasible

    def feasible(i):
        assert lo <= i <= hi
        return i <= boundary

    scan = next(
        (i for i in range(hi, lo - 1, -1) if i <= boundary), None
    )
    answer, _ = verified_max_feasible(guess, lo, hi, feasible)
    assert answer == scan
