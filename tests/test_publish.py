"""Tests for the model-publish pipeline (paper section 5.6)."""

import dataclasses

from repro.core import Mtia2iSystem, publish_model
from repro.models.dlrm import DlrmConfig, EmbeddingBagConfig, build_dlrm, small_dlrm


def _small_builder():
    config = small_dlrm()
    return lambda batch: build_dlrm(dataclasses.replace(config, batch=batch))


def _big_fc_builder():
    config = DlrmConfig(
        name="bigfc",
        batch=2048,
        num_dense_features=4096,
        bottom_mlp_dims=(4096, 4096),
        top_mlp_dims=(4096, 4096),
        embeddings=(EmbeddingBagConfig(8, 1_000_000, 128, 8),),
    )
    return lambda batch: build_dlrm(dataclasses.replace(config, batch=batch))


class TestPublish:
    def test_small_model_publishes_without_quantization(self):
        """Section 4.4: for low-usage / small-FC models the quantization
        effort is not justified — the pipeline skips it."""
        published = publish_model(_small_builder(), model_name="small")
        assert not published.quantization_adopted
        assert published.launch_approved
        assert published.mtia_throughput > 0
        assert published.gpu_report.batch == published.mtia.autotune.batch

    def test_large_fc_model_adopts_quantization(self):
        """Models dominated by large FCs clear the cost/benefit bar."""
        published = publish_model(_big_fc_builder(), model_name="bigfc")
        assert published.quantization_adopted
        assert len(published.quantization.quantized_layers) >= 2
        assert published.quantization.end_to_end_speedup > 1.05

    def test_quantized_path_still_passes_quality_gate(self):
        """Row-wise dynamic INT8 keeps quality parity (section 4.4)."""
        published = publish_model(_big_fc_builder(), model_name="bigfc")
        assert published.launch_approved
        assert abs(published.ab_result.ne_delta) < 0.01

    def test_shared_system_reuses_kernel_database(self):
        system = Mtia2iSystem()
        publish_model(_small_builder(), model_name="first", mtia_system=system)
        populated = len(system.kernel_database)
        publish_model(_small_builder(), model_name="second", mtia_system=system)
        assert len(system.kernel_database) >= populated

    def test_threshold_controls_adoption(self):
        published = publish_model(
            _big_fc_builder(), model_name="bigfc", quantization_threshold=10.0
        )
        assert not published.quantization_adopted
