"""Tests for dtypes, TensorSpec, GemmShape, and jagged tensors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import (
    DType,
    GemmShape,
    JaggedTensor,
    TensorKind,
    TensorSpec,
    activation,
    concat_specs,
    embedding_table,
    jagged_dense_elementwise_add,
    jagged_hadamard,
    jagged_linear,
    jagged_mean_pool,
    jagged_softmax,
    jagged_sum_pool,
    model_input,
    parse_dtype,
    quantize_to_bf16,
    transposed,
    weight,
)


class TestDtypes:
    def test_widths(self):
        assert DType.INT8.bytes == 1
        assert DType.FP16.bytes == 2
        assert DType.BF16.bytes == 2
        assert DType.FP32.bytes == 4
        assert DType.INT32.bytes == 4

    def test_bits(self):
        assert DType.FP16.bits == 16

    def test_classification(self):
        assert DType.FP16.is_float and not DType.FP16.is_int
        assert DType.INT8.is_int and not DType.INT8.is_float

    def test_numpy_mapping(self):
        assert DType.FP16.to_numpy() == np.float16
        assert DType.INT8.to_numpy() == np.int8
        # BF16 is stored as FP32 in numpy (no native bfloat16).
        assert DType.BF16.to_numpy() == np.float32

    def test_parse(self):
        assert parse_dtype("FP16") is DType.FP16
        assert parse_dtype("int8") is DType.INT8
        with pytest.raises(ValueError):
            parse_dtype("fp8")

    def test_bf16_rounding_is_idempotent(self):
        x = np.random.default_rng(0).normal(size=1000).astype(np.float32)
        once = quantize_to_bf16(x)
        twice = quantize_to_bf16(once)
        np.testing.assert_array_equal(once, twice)

    def test_bf16_error_bound(self):
        x = np.linspace(0.1, 100, 1000).astype(np.float32)
        rounded = quantize_to_bf16(x)
        # BF16 has 8 mantissa bits (incl. implicit): relative error < 2^-8.
        assert np.max(np.abs(rounded - x) / x) < 2 ** -8


class TestTensorSpec:
    def test_sizes(self):
        t = activation(128, 256, dtype=DType.FP16)
        assert t.num_elements == 128 * 256
        assert t.num_bytes == 128 * 256 * 2
        assert t.rank == 2

    def test_unique_uids(self):
        a = activation(4, 4)
        b = activation(4, 4)
        assert a.uid != b.uid

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            TensorSpec(shape=())
        with pytest.raises(ValueError):
            TensorSpec(shape=(0, 4))

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            TensorSpec(shape=(4,), kind="bogus")

    def test_kinds_via_helpers(self):
        assert weight(2, 2).kind == TensorKind.WEIGHT
        assert embedding_table(10, 4).kind == TensorKind.EMBEDDING
        assert model_input(2, 2).kind == TensorKind.INPUT

    def test_with_shape_fresh_uid(self):
        t = activation(4, 8)
        u = t.with_shape((8, 4))
        assert u.shape == (8, 4) and u.uid != t.uid

    def test_transposed(self):
        t = activation(3, 7)
        assert transposed(t).shape == (7, 3)
        with pytest.raises(ValueError):
            transposed(activation(2, 2, 2))

    def test_concat(self):
        a, b = activation(2, 3), activation(2, 5)
        out = concat_specs([a, b], axis=1)
        assert out.shape == (2, 8)

    def test_concat_axis_0(self):
        a, b = activation(2, 3), activation(4, 3)
        assert concat_specs([a, b], axis=0).shape == (6, 3)

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            concat_specs([activation(2, 3), activation(3, 5)], axis=1)

    def test_concat_empty(self):
        with pytest.raises(ValueError):
            concat_specs([])

    def test_str_contains_shape(self):
        assert "128x64" in str(activation(128, 64))


class TestGemmShape:
    def test_flops(self):
        s = GemmShape(2, 3, 4)
        assert s.flops == 2 * 2 * 3 * 4

    def test_operand_bytes(self):
        s = GemmShape(4, 8, 16)
        assert s.weight_bytes(DType.FP16) == 8 * 16 * 2
        assert s.activation_bytes(DType.FP16) == 4 * 8 * 2
        assert s.output_bytes(DType.FP32) == 4 * 16 * 4

    def test_arithmetic_intensity_grows_with_size(self):
        small = GemmShape(64, 64, 64).arithmetic_intensity(DType.FP16)
        big = GemmShape(2048, 2048, 2048).arithmetic_intensity(DType.FP16)
        assert big > small

    def test_invalid(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)

    def test_str(self):
        assert str(GemmShape(512, 26592, 2048)) == "512x26592x2048"


class TestJagged:
    def _make(self):
        rows = [np.ones((2, 4)), np.zeros((0, 4)), 2 * np.ones((3, 4))]
        return JaggedTensor.from_rows(rows)

    def test_from_rows_shapes(self):
        j = self._make()
        assert j.batch_size == 3
        assert j.dim == 4
        assert list(j.lengths) == [2, 0, 3]
        assert j.total_length == 5

    def test_row_views(self):
        j = self._make()
        assert j.row(0).shape == (2, 4)
        assert j.row(1).shape == (0, 4)

    def test_dense_roundtrip(self):
        j = self._make()
        dense = j.to_dense()
        back = JaggedTensor.from_dense(dense, j.lengths)
        np.testing.assert_array_equal(back.values, j.values)
        np.testing.assert_array_equal(back.offsets, j.offsets)

    def test_to_dense_padding(self):
        j = self._make()
        dense = j.to_dense(max_len=4, pad_value=-1)
        assert dense.shape == (3, 4, 4)
        assert np.all(dense[0, 2:] == -1)

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            JaggedTensor(values=np.zeros((3, 2)), offsets=np.array([1, 3]))
        with pytest.raises(ValueError):
            JaggedTensor(values=np.zeros((3, 2)), offsets=np.array([0, 2]))
        with pytest.raises(ValueError):
            JaggedTensor(values=np.zeros((3, 2)), offsets=np.array([0, 2, 1, 3]))

    def test_sum_pool_matches_manual(self):
        j = self._make()
        pooled = jagged_sum_pool(j)
        np.testing.assert_allclose(pooled[0], 2 * np.ones(4))
        np.testing.assert_allclose(pooled[1], np.zeros(4))
        np.testing.assert_allclose(pooled[2], 6 * np.ones(4))

    def test_mean_pool_empty_row_is_zero(self):
        j = self._make()
        pooled = jagged_mean_pool(j)
        np.testing.assert_allclose(pooled[1], np.zeros(4))
        np.testing.assert_allclose(pooled[0], np.ones(4))

    def test_hadamard(self):
        j = self._make()
        prod = jagged_hadamard(j, j)
        np.testing.assert_allclose(prod.row(2), 4 * np.ones((3, 4)))

    def test_hadamard_mismatch(self):
        j = self._make()
        other = JaggedTensor.from_rows([np.ones((1, 4))] * 3)
        with pytest.raises(ValueError):
            jagged_hadamard(j, other)

    def test_linear(self):
        j = self._make()
        w = np.eye(4) * 3
        out = jagged_linear(j, w)
        np.testing.assert_allclose(out.row(0), 3 * np.ones((2, 4)))

    def test_linear_shape_check(self):
        with pytest.raises(ValueError):
            jagged_linear(self._make(), np.ones((5, 2)))

    def test_softmax_normalizes_per_segment(self):
        rng = np.random.default_rng(1)
        j = JaggedTensor.from_rows([rng.normal(size=(5, 3)), rng.normal(size=(2, 3))])
        soft = jagged_softmax(j)
        np.testing.assert_allclose(soft.row(0).sum(axis=0), np.ones(3), atol=1e-9)
        np.testing.assert_allclose(soft.row(1).sum(axis=0), np.ones(3), atol=1e-9)

    def test_dense_add_ignores_padding(self):
        j = self._make()
        dense = np.full((3, 5, 4), 10.0)
        out = jagged_dense_elementwise_add(j, dense)
        np.testing.assert_allclose(out.row(0), 11 * np.ones((2, 4)))
        assert out.total_length == j.total_length

    def test_map_values_shape_preserved(self):
        j = self._make()
        out = j.map_values(lambda v: v * 2)
        np.testing.assert_allclose(out.values, j.values * 2)
        with pytest.raises(ValueError):
            j.map_values(lambda v: v[:1])


@given(
    lengths=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=10),
    dim=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_jagged_dense_roundtrip_property(lengths, dim):
    """from_dense(to_dense(j)) is the identity for any jagged tensor."""
    rng = np.random.default_rng(0)
    rows = [rng.normal(size=(length, dim)) for length in lengths]
    j = JaggedTensor.from_rows(rows) if any(lengths) else JaggedTensor(
        np.zeros((0, dim)), np.zeros(len(lengths) + 1, dtype=np.int64)
    )
    if j.dim != dim:
        return  # all-empty degenerate case with dim defaulting
    back = JaggedTensor.from_dense(j.to_dense(), j.lengths)
    np.testing.assert_allclose(back.values, j.values)
    np.testing.assert_array_equal(back.offsets, j.offsets)


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=8)
)
@settings(max_examples=50, deadline=None)
def test_jagged_sum_pool_matches_dense_sum(lengths):
    """Jagged sum-pooling equals summing the padded dense tensor."""
    rng = np.random.default_rng(2)
    rows = [rng.normal(size=(length, 3)) for length in lengths]
    j = JaggedTensor.from_rows(rows)
    dense_sum = j.to_dense().sum(axis=1)
    np.testing.assert_allclose(jagged_sum_pool(j), dense_sum, atol=1e-9)
