"""Tests for the CLI and the Chrome-trace exporter."""

import dataclasses
import json

import pytest

from repro.arch import mtia2i_spec
from repro.cli import build_parser, main
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import Executor, summarize_trace, to_chrome_trace, write_chrome_trace


@pytest.fixture()
def report():
    graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=256))
    return Executor(mtia2i_spec()).run(graph, 256, warmup_runs=1)


class TestTrace:
    def test_events_cover_all_ops(self, report):
        trace = to_chrome_trace(report)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(report.op_profiles)

    def test_durations_sum_to_latency(self, report):
        trace = to_chrome_trace(report)
        total_us = sum(e["dur"] for e in trace["traceEvents"] if e["ph"] == "X")
        assert total_us == pytest.approx(report.latency_s * 1e6, rel=0.001)

    def test_events_back_to_back(self, report):
        events = [e for e in to_chrome_trace(report)["traceEvents"] if e["ph"] == "X"]
        cursor = 0.0
        for event in events:
            assert event["ts"] == pytest.approx(cursor, abs=0.01)
            cursor += event["dur"]

    def test_metadata_present(self, report):
        trace = to_chrome_trace(report)
        assert trace["otherData"]["batch"] == 256
        names = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in names)

    def test_write_round_trips_as_json(self, report, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(report, str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded

    def test_summary_mentions_top_op(self, report):
        text = summarize_trace(report, top=3)
        slowest = max(report.op_profiles, key=lambda p: p.time_s)
        assert slowest.op_name in text


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["specs", "--chip", "mtia1"])
        assert args.chip == "mtia1"

    def test_specs_command(self, capsys):
        assert main(["specs", "--chip", "mtia2i"]) == 0
        out = capsys.readouterr().out
        assert "MTIA 2i" in out and "Dot Product Engine" in out

    def test_llm_command_exit_codes(self, capsys):
        # Viable serving exits 0; infeasible exits 1.
        assert main(["llm", "--model", "llama2-7b", "--chip", "gpu"]) == 0
        assert main(["llm", "--model", "llama2-7b", "--chip", "mtia2i"]) == 1

    def test_evaluate_command(self, capsys):
        assert main(["evaluate", "--model", "LC1"]) == 0
        out = capsys.readouterr().out
        assert "Perf/TCO" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--model", "LC99"])

    def test_trace_command(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert main(["trace", "--model", "LC2", "--out", str(out_path)]) == 0
        assert out_path.exists()
