"""White-box tests of the executor's placement, pinning, and accounting."""

import dataclasses

import pytest

from repro.arch import gpu_spec, mtia2i_spec
from repro.graph import OpGraph, fc, layernorm, tbe
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import Executor
from repro.perf.executor import DRAM_EFFICIENCY_DEMAND, DRAM_EFFICIENCY_PREFETCH
from repro.tensors import embedding_table, model_input, weight
from repro.units import MiB


def _weight_heavy_graph(num_layers=8, hidden=4096, batch=256):
    """A graph whose dense weights exceed the default LLC."""
    x = model_input(batch, hidden, name="x")
    graph = OpGraph(name="weight_heavy")
    staged = graph.add(layernorm(x, name="stage"))
    current = staged.output
    for i in range(num_layers):
        op = graph.add(fc(current, weight(hidden, hidden, name=f"w{i}"), name=f"fc{i}"))
        current = op.output
    return graph


class TestWeightPinning:
    def test_pinning_kicks_in_for_big_weights(self):
        graph = _weight_heavy_graph()
        report = Executor(mtia2i_spec()).run(graph, 256, warmup_runs=1)
        # 8 x 32 MB weights exceed 80% of the default LLC; the policy
        # converts spare SRAM to pinned weight space, growing the LLS
        # partition beyond what activations alone need.
        assert report.lls_bytes > 64 * MiB

    def test_pinning_keeps_llc_floor(self):
        graph = _weight_heavy_graph(num_layers=16)
        report = Executor(mtia2i_spec()).run(graph, 256, warmup_runs=1)
        assert report.llc_bytes >= 2 * mtia2i_spec().sram_partition_bytes

    def test_pinning_improves_throughput(self):
        graph = _weight_heavy_graph()
        chip = mtia2i_spec()
        pinned = Executor(chip).run(graph, 256, warmup_runs=1)
        # Compare against the same model with so many weights pinning
        # cannot help much (sanity: pinned config never loses).
        assert pinned.throughput_samples_per_s > 0

    def test_small_weights_not_pinned(self):
        config = small_dlrm()
        graph = build_dlrm(dataclasses.replace(config, batch=256))
        report = Executor(mtia2i_spec()).run(graph, 256)
        # Activation buffer rounds to one or two granules; no pinning.
        assert report.lls_bytes <= 64 * MiB


class TestTbeAccounting:
    def _tbe_graph(self, rows=5_000_000, tables=32, pooling=16, batch=1024):
        table_specs = [
            embedding_table(rows, 128, name=f"t{i}") for i in range(tables)
        ]
        graph = OpGraph(name="tbe_only")
        graph.add(tbe(table_specs, batch=batch, avg_indices_per_lookup=pooling))
        return graph

    def test_sparse_hit_rate_reported(self):
        report = Executor(mtia2i_spec()).run(self._tbe_graph(), 1024)
        assert 0.0 < report.sparse_hit_rate < 1.0

    def test_bigger_tables_lower_hit_rate(self):
        chip = mtia2i_spec()
        small = Executor(chip).run(self._tbe_graph(rows=500_000), 1024)
        big = Executor(chip).run(self._tbe_graph(rows=50_000_000), 1024)
        assert big.sparse_hit_rate < small.sparse_hit_rate

    def test_tbe_dram_traffic_scales_with_miss_rate(self):
        chip = mtia2i_spec()
        report = Executor(chip).run(self._tbe_graph(), 1024)
        profile = report.op_profiles[0]
        total_gather = 1024 * 32 * 16 * 256  # rows x row_bytes
        expected_dram = total_gather * (1 - report.sparse_hit_rate)
        assert profile.dram_bytes == pytest.approx(expected_dram, rel=0.05)


class TestOverlapAndEfficiency:
    def test_prefetch_constants_ordered(self):
        assert DRAM_EFFICIENCY_PREFETCH > DRAM_EFFICIENCY_DEMAND

    def test_gpu_exposes_more_memory_time(self):
        """The overlap factor: the same op mix exposes more of its memory
        time on the GPU (0.55) than on MTIA (0.93)."""
        graph = _weight_heavy_graph(num_layers=4, hidden=2048)
        mtia_rep = Executor(mtia2i_spec()).run(graph, 256, warmup_runs=0)
        gpu_rep = Executor(gpu_spec()).run(
            _weight_heavy_graph(num_layers=4, hidden=2048), 256, warmup_runs=0
        )
        def exposure(report):
            total = sum(p.time_s for p in report.op_profiles)
            floor = sum(
                max(p.compute_s, p.dram_s, p.sram_s, p.noc_s, p.host_s)
                for p in report.op_profiles
            )
            return (total - floor) / total
        assert exposure(gpu_rep) > exposure(mtia_rep)

    def test_sustained_fraction_applied(self):
        """GPU compute times include the 0.65 sustained derate."""
        graph = _weight_heavy_graph(num_layers=1, hidden=2048)
        report = Executor(gpu_spec()).run(graph, 256, warmup_runs=1)
        fc_profile = [p for p in report.op_profiles if p.op_name == "fc0"][0]
        from repro.tensors import DType, GemmShape

        ideal = GemmShape(256, 2048, 2048).flops / gpu_spec().peak_gemm_flops(DType.FP16)
        assert fc_profile.compute_s > ideal / 0.70


class TestWritebackCharging:
    def test_spilled_activations_cost_dram_writebacks(self):
        """When activations cannot pin in LLS, their dirty LLC evictions
        add DRAM traffic — the 4.2 motivation for pinning and hints."""
        chip = mtia2i_spec()
        # Huge activations: batch 8192 x 32768 features ~ 512 MB tensors.
        x = model_input(8192, 24576, name="x")
        graph = OpGraph(name="spiller")
        staged = graph.add(layernorm(x, name="ln0"))
        graph.add(layernorm(staged.output, name="ln1"))
        report = Executor(chip).run(graph, 8192, warmup_runs=0)
        assert not report.activations_in_lls
        total_dram = sum(p.dram_bytes for p in report.op_profiles)
        assert total_dram > 0
