"""Tests for the NoC: shaping, fragmentation, fabric contention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import (
    Flow,
    LeakyBucketShaper,
    NocFabric,
    Packet,
    fragment,
    mtia_fabric,
    smoothness,
)


class TestShaper:
    def test_within_burst_departs_immediately(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e9, burst_bytes=4096)
        assert shaper.departure_time(Packet(0.0, 1024)) == 0.0

    def test_burst_exhaustion_delays(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e6, burst_bytes=1000)
        assert shaper.departure_time(Packet(0.0, 1000)) == 0.0
        second = shaper.departure_time(Packet(0.0, 1000))
        assert second == pytest.approx(1000 / 1e6)

    def test_tokens_refill_over_time(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e6, burst_bytes=1000)
        shaper.departure_time(Packet(0.0, 1000))
        # After 1 ms the bucket has refilled fully.
        assert shaper.departure_time(Packet(1e-3, 1000)) == pytest.approx(1e-3)

    def test_sustained_rate_enforced(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e6, burst_bytes=1000)
        packets = [Packet(0.0, 1000) for _ in range(10)]
        departures = shaper.shape(packets)
        # 10 KB at 1 MB/s: last departure near 9 ms.
        assert departures[-1] == pytest.approx(9e-3, rel=0.01)

    def test_oversized_packet_rejected(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e6, burst_bytes=1000)
        with pytest.raises(ValueError):
            shaper.departure_time(Packet(0.0, 2000))

    def test_out_of_order_rejected(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e6, burst_bytes=4096)
        shaper.departure_time(Packet(1.0, 100))
        with pytest.raises(ValueError):
            shaper.departure_time(Packet(0.5, 100))

    def test_shaping_smooths_bursts(self):
        shaper = LeakyBucketShaper(rate_bytes_per_s=1e6, burst_bytes=1024)
        burst = [Packet(0.0, 1024) for _ in range(50)]
        departures = shaper.shape(burst)
        # Arrivals are all at t=0 (infinitely bursty); departures spread.
        assert smoothness(departures, window_s=1e-3) < 5.0
        assert max(departures) > 0.04


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1024), min_size=1, max_size=100),
    rate=st.floats(min_value=1e5, max_value=1e9),
)
@settings(max_examples=50, deadline=None)
def test_shaper_never_exceeds_sustained_rate(sizes, rate):
    """Property: over any window starting at 0, departed bytes never
    exceed burst + rate * time."""
    burst = 2048
    shaper = LeakyBucketShaper(rate_bytes_per_s=rate, burst_bytes=burst)
    packets = [Packet(0.0, s) for s in sizes]
    departures = shaper.shape(packets)
    events = sorted(zip(departures, sizes))
    sent = 0
    for t, size in events:
        sent += size
        assert sent <= burst + rate * t + 1e-6 * rate + size


class TestFragmentation:
    def test_single_fragment(self):
        result = fragment(1000, max_fragment_bytes=4096, header_bytes=16)
        assert len(result.fragments) == 1
        assert result.wire_bytes == 1016

    def test_multiple_fragments(self):
        result = fragment(10_000, max_fragment_bytes=4096, header_bytes=16)
        payload_per = 4096 - 16
        assert len(result.fragments) == -(-10_000 // payload_per)
        assert result.payload_bytes == 10_000
        assert result.header_overhead_bytes == len(result.fragments) * 16

    def test_fragments_bounded(self):
        result = fragment(100_000)
        assert all(f.size_bytes <= 4096 for f in result.fragments)

    def test_zero_transfer(self):
        result = fragment(0)
        assert not result.fragments
        assert result.overhead_fraction == 0.0

    def test_overhead_fraction_small(self):
        result = fragment(1_000_000)
        assert result.overhead_fraction < 0.01

    def test_invalid(self):
        with pytest.raises(ValueError):
            fragment(-1)
        with pytest.raises(ValueError):
            fragment(100, max_fragment_bytes=8, header_bytes=16)


class TestFabric:
    def _fabric(self):
        return NocFabric(
            aggregate_bandwidth=100e9,
            port_bandwidths={"sram": 100e9, "dram": 20e9},
            default_port_bandwidth=10e9,
        )

    def test_single_flow_limited_by_port(self):
        fabric = self._fabric()
        rates = fabric.fair_rates([Flow("sram", "pe0", 1e6)])
        assert rates[0] == pytest.approx(10e9)  # pe0 port binds

    def test_two_flows_share_destination(self):
        fabric = self._fabric()
        rates = fabric.fair_rates(
            [Flow("sram", "pe0", 1e6), Flow("dram", "pe0", 1e6)]
        )
        assert rates[0] == pytest.approx(5e9)
        assert rates[1] == pytest.approx(5e9)

    def test_independent_flows_get_full_ports(self):
        fabric = self._fabric()
        rates = fabric.fair_rates(
            [Flow("sram", "pe0", 1e6), Flow("sram", "pe1", 1e6)]
        )
        assert rates[0] == pytest.approx(10e9)
        assert rates[1] == pytest.approx(10e9)

    def test_aggregate_cap(self):
        fabric = NocFabric(
            aggregate_bandwidth=15e9,
            port_bandwidths={},
            default_port_bandwidth=10e9,
        )
        rates = fabric.fair_rates(
            [Flow("a", "b", 1e6), Flow("c", "d", 1e6)]
        )
        assert sum(rates) <= 15e9 * 1.001

    def test_transfer_time(self):
        fabric = self._fabric()
        t = fabric.transfer_time([Flow("sram", "pe0", 10e9)])
        assert t == pytest.approx(1.0)

    def test_empty_flows(self):
        assert self._fabric().transfer_time([]) == 0.0

    def test_broadcast_read_savings(self):
        fabric = self._fabric()
        with_hw = fabric.broadcast_read_bytes(1e6, 8, hardware_broadcast=True)
        without = fabric.broadcast_read_bytes(1e6, 8, hardware_broadcast=False)
        assert without == 8 * with_hw

    def test_mtia_fabric_endpoints(self):
        fabric = mtia_fabric(2.64e12, num_pes=64, pe_port_bandwidth=64e9)
        rates = fabric.fair_rates([Flow("sram", "pe63", 1e6)])
        assert rates[0] == pytest.approx(64e9)


@given(
    num_flows=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_fair_rates_respect_all_capacities(num_flows):
    """Property: no port or the aggregate is ever oversubscribed."""
    fabric = NocFabric(
        aggregate_bandwidth=50e9,
        port_bandwidths={"sram": 40e9},
        default_port_bandwidth=8e9,
    )
    flows = [Flow("sram", f"pe{i % 3}", 1e6) for i in range(num_flows)]
    rates = fabric.fair_rates(flows)
    assert sum(rates) <= 50e9 * 1.001
    from collections import defaultdict

    per_dst = defaultdict(float)
    src_total = 0.0
    for flow, rate in zip(flows, rates):
        per_dst[flow.dst] += rate
        src_total += rate
    assert src_total <= 40e9 * 1.001
    for dst, total in per_dst.items():
        assert total <= 8e9 * 1.001
