"""Property-based tests over randomly generated model graphs.

Hypothesis builds random DAGs out of the IR's operators; every graph
pass and the executor must uphold their invariants on all of them:

* passes preserve FLOPs (broadcast deferral may only reduce them);
* passes preserve the set of graph-output tensors (by uid) or fuse them
  into kernels that still produce them;
* rewritten schedules always validate;
* the executor produces positive, finite latencies on any valid graph.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_spec
from repro.graph import OpGraph, concat, elementwise, fc, layernorm
from repro.graph.passes import (
    batch_layernorms,
    defer_broadcast,
    fuse_vertical,
    minimize_liveness,
)
from repro.perf import Executor
from repro.tensors import model_input, weight


@st.composite
def random_graphs(draw):
    """A random layered DAG of FC / elementwise / layernorm / concat ops."""
    batch = draw(st.sampled_from([32, 64, 128]))
    width = draw(st.sampled_from([64, 128, 256]))
    num_ops = draw(st.integers(min_value=1, max_value=12))
    graph = OpGraph(name="random")
    frontier = [model_input(batch, width, name="x0")]
    # Optionally a second input.
    if draw(st.booleans()):
        frontier.append(model_input(batch, width, name="x1"))
    for index in range(num_ops):
        kind = draw(st.sampled_from(["fc", "elementwise", "layernorm", "concat"]))
        source = frontier[draw(st.integers(0, len(frontier) - 1))]
        if kind == "fc":
            out_dim = draw(st.sampled_from([32, 64, 128]))
            op = fc(source, weight(source.shape[1], out_dim, name=f"w{index}"),
                    name=f"fc{index}")
        elif kind == "elementwise":
            op = elementwise([source], function="relu", name=f"ew{index}")
        elif kind == "layernorm":
            op = layernorm(source, name=f"ln{index}")
        else:
            other = frontier[draw(st.integers(0, len(frontier) - 1))]
            if other.shape[0] != source.shape[0]:
                op = elementwise([source], name=f"ew{index}")
            else:
                op = concat([source, other], axis=1, name=f"cat{index}")
        graph.add(op)
        frontier.append(op.output)
        if len(frontier) > 4:
            frontier = frontier[-4:]
    return graph


PASSES = [fuse_vertical, batch_layernorms, minimize_liveness, defer_broadcast]


@given(graph=random_graphs(), pass_index=st.integers(0, len(PASSES) - 1))
@settings(max_examples=80, deadline=None)
def test_passes_preserve_flops_and_validity(graph, pass_index):
    rewrite = PASSES[pass_index]
    original_flops = graph.total_flops()
    rewritten = rewrite(graph)
    rewritten.validate_schedule()
    if rewrite is defer_broadcast:
        assert rewritten.total_flops() <= original_flops + 1e-6
    else:
        assert rewritten.total_flops() == pytest.approx(original_flops)


@given(graph=random_graphs())
@settings(max_examples=40, deadline=None)
def test_passes_preserve_graph_outputs(graph):
    original = {t.uid for t in graph.graph_outputs()}
    for rewrite in (fuse_vertical, batch_layernorms, minimize_liveness):
        rewritten = rewrite(graph)
        assert {t.uid for t in rewritten.graph_outputs()} == original


@given(graph=random_graphs())
@settings(max_examples=25, deadline=None)
def test_executor_handles_any_valid_graph(graph):
    batch = graph.graph_inputs()[0].shape[0]
    report = Executor(mtia2i_spec()).run(graph, batch, warmup_runs=0)
    assert report.latency_s > 0
    assert report.latency_s < 10.0  # these graphs are tiny
    assert len(report.op_profiles) == len(graph.ops)
    assert all(p.time_s > 0 for p in report.op_profiles)


@given(graph=random_graphs())
@settings(max_examples=25, deadline=None)
def test_liveness_scheduling_never_increases_peak(graph):
    """The pass keeps the better of the original and greedy schedules
    (section 4.2: 'selecting the best operator scheduling algorithm'), so
    the peak can never grow."""
    scheduled = minimize_liveness(graph)
    assert scheduled.peak_activation_bytes() <= graph.peak_activation_bytes()
