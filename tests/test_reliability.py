"""Tests for the productionization studies (paper section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_server
from repro.reliability import (
    CARDS_PER_SERVER,
    Component,
    EccDecisionInputs,
    ErrorRegion,
    MarginModel,
    NumericDlrm,
    Outcome,
    STUDY_FREQUENCIES_HZ,
    SystemState,
    apply_firmware_mitigation,
    card_error_probability_for_server_fraction,
    deadlock_incidence,
    decide_ecc,
    decode_word,
    emergency_rollout,
    encode_word,
    has_deadlock,
    hashing_integrity_overhead,
    inject_and_classify,
    overclock_throughput_gain,
    override_rollout,
    provisioning_study,
    run_overclocking_study,
    sample_fleet_errors,
    sample_production_power,
    sensitivity_study,
    staged_detection,
    stress_test_budget,
    typical_rollout,
    wait_for_edges,
)


class TestSecded:
    def test_roundtrip_no_error(self):
        for word in (0, 1, 0xDEADBEEF12345678, (1 << 64) - 1):
            result = decode_word(encode_word(word))
            assert result.data == word
            assert not result.corrected
            assert not result.double_error_detected

    def test_every_single_bit_error_corrected(self):
        word = 0xA5A5_5A5A_0F0F_F0F0
        code = encode_word(word)
        for bit in range(72):
            result = decode_word(code ^ (1 << bit))
            assert result.data == word, f"bit {bit} not corrected"
            assert result.corrected

    def test_double_errors_detected(self):
        word = 0x0123456789ABCDEF
        code = encode_word(word)
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.choice(72, size=2, replace=False)
            result = decode_word(code ^ (1 << int(a)) ^ (1 << int(b)))
            assert result.double_error_detected

    def test_range_validation(self):
        with pytest.raises(ValueError):
            encode_word(1 << 64)
        with pytest.raises(ValueError):
            decode_word(1 << 72)

    def test_adjacent_double_errors_detected_exhaustively(self):
        """Every adjacent bit pair — the DRAM-burst failure shape — must be
        flagged, never silently mis-corrected."""
        word = 0xFFFF_0000_AAAA_5555
        code = encode_word(word)
        for bit in range(71):
            result = decode_word(code ^ (1 << bit) ^ (1 << (bit + 1)))
            assert result.double_error_detected, f"bits {bit},{bit + 1} missed"
            assert not result.corrected

    def test_double_error_involving_overall_parity_bit(self):
        """A data/parity flip paired with the overall parity bit leaves
        overall parity even — the decoder must still catch it via the
        syndrome, not 'correct' the wrong bit."""
        word = 0x0123456789ABCDEF
        code = encode_word(word)
        overall = 71  # the SECDED overall-parity position
        for bit in range(71):
            result = decode_word(code ^ (1 << bit) ^ (1 << overall))
            assert result.double_error_detected, f"bits {bit},{overall} missed"
            assert not result.corrected

    def test_every_single_bit_error_corrected_word_corpus(self):
        """Exhaustive single-flip property over a corpus of edge-case
        words: all 72 positions correct back to the stored word."""
        for word in (0, (1 << 64) - 1, 0xDEADBEEF12345678, 0x8000_0000_0000_0001):
            code = encode_word(word)
            for bit in range(72):
                result = decode_word(code ^ (1 << bit))
                assert result.data == word, f"word {word:#x} bit {bit}"
                assert result.corrected
                assert not result.double_error_detected

    def test_every_double_error_detected_exhaustively(self):
        """All C(72, 2) = 2556 double flips are flagged
        detected-uncorrectable — never miscorrected, never clean."""
        word = 0x0123456789ABCDEF
        code = encode_word(word)
        for a in range(72):
            for b in range(a + 1, 72):
                result = decode_word(code ^ (1 << a) ^ (1 << b))
                assert result.double_error_detected, f"bits {a},{b} missed"
                assert not result.corrected

    def test_double_error_never_reports_clean(self):
        """No double flip may decode as 'no error': that would be the
        silent corruption SECDED exists to prevent."""
        word = 0
        code = encode_word(word)
        rng = np.random.default_rng(7)
        for _ in range(200):
            a, b = rng.choice(72, size=2, replace=False)
            result = decode_word(code ^ (1 << int(a)) ^ (1 << int(b)))
            assert result.double_error_detected
            assert not result.corrected


@given(word=st.integers(min_value=0, max_value=(1 << 64) - 1),
       bit=st.integers(min_value=0, max_value=71))
@settings(max_examples=100, deadline=None)
def test_secded_single_error_property(word, bit):
    """Property: any single bit flip in any codeword is corrected."""
    result = decode_word(encode_word(word) ^ (1 << bit))
    assert result.data == word
    assert result.corrected and not result.double_error_detected


class TestErrorInjection:
    def test_tbe_indices_most_sensitive(self):
        """Section 5.1: flips in TBE indices fail with high probability
        (out-of-bounds or wrong-row gathers)."""
        report = sensitivity_study(trials_per_region=120, seed=3)
        assert report.failure_rate(ErrorRegion.TBE_INDICES) > 0.6
        assert report.most_sensitive() is ErrorRegion.TBE_INDICES

    def test_index_flips_can_crash(self):
        model = NumericDlrm()
        rng = np.random.default_rng(1)
        outcomes = {
            inject_and_classify(model, ErrorRegion.TBE_INDICES, rng) for _ in range(60)
        }
        assert Outcome.CRASH in outcomes

    def test_fp_flips_can_produce_nan_or_corruption(self):
        model = NumericDlrm()
        rng = np.random.default_rng(2)
        outcomes = [
            inject_and_classify(model, ErrorRegion.DENSE_WEIGHTS, rng)
            for _ in range(200)
        ]
        assert Outcome.CORRUPTED in outcomes or Outcome.NAN in outcomes
        assert Outcome.BENIGN in outcomes  # low bits mostly harmless

    def test_reference_model_deterministic(self):
        model = NumericDlrm()
        dense, indices = model.sample_inputs()
        out1 = model.forward(dense, indices)
        out2 = model.forward(dense, indices)
        np.testing.assert_array_equal(out1, out2)
        assert np.all((out1 >= 0) & (out1 <= 1))


class TestFleetErrors:
    def test_paper_fraction_reproduced(self):
        """24% of 1,700 servers with errors, ~1 card each."""
        stats = sample_fleet_errors(seed=0)
        assert 0.20 <= stats.affected_fraction <= 0.28
        assert stats.mean_errored_cards_per_affected_server < 1.5

    def test_probability_inversion(self):
        p = card_error_probability_for_server_fraction(0.24)
        server_fraction = 1 - (1 - p) ** CARDS_PER_SERVER
        assert server_fraction == pytest.approx(0.24)

    def test_zero_probability(self):
        stats = sample_fleet_errors(card_error_probability=0.0)
        assert stats.affected_servers == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_fleet_errors(card_error_probability=1.5)


class TestEccDecision:
    def test_high_error_rate_enables_ecc(self):
        decision = decide_ecc(
            EccDecisionInputs(
                server_error_fraction=0.24,
                uncorrected_failure_rate=0.5,
                anomaly_budget_per_day=50,
                errors_per_affected_server_per_day=20,
                fleet_servers=10_000,
            )
        )
        assert decision.enable_ecc
        assert decision.expected_anomalies_per_day > decision.anomaly_budget_per_day

    def test_negligible_error_rate_forgoes_ecc(self):
        decision = decide_ecc(
            EccDecisionInputs(
                server_error_fraction=0.0001,
                uncorrected_failure_rate=0.1,
                anomaly_budget_per_day=50,
                errors_per_affected_server_per_day=1,
                fleet_servers=10_000,
            )
        )
        assert not decision.enable_ecc

    def test_hashing_overhead_too_high(self):
        """The software-hashing alternative the paper rejected."""
        overhead = hashing_integrity_overhead(
            region_bytes=1 << 30, accesses_per_s=10, hash_bytes_per_s=10e9
        )
        assert overhead > 0.5


class TestOverclocking:
    def test_negligible_pass_rate_drop(self):
        """Section 5.2: negligible decrease from 1.1 to 1.35 GHz."""
        study = run_overclocking_study(num_chips=2000, seed=5)
        drop = study.pass_rate_drop(STUDY_FREQUENCIES_HZ[0], STUDY_FREQUENCIES_HZ[-1])
        assert 0 <= drop < 0.01

    def test_low_margin_population_would_fail(self):
        """Sanity: a margin distribution near the operating point shows
        real pass-rate losses — the study's method can detect problems."""
        margin = MarginModel(mean_fmax_hz=1.30e9, sigma_hz=0.03e9)
        study = run_overclocking_study(num_chips=1000, margin=margin, seed=5)
        drop = study.pass_rate_drop(STUDY_FREQUENCIES_HZ[0], STUDY_FREQUENCIES_HZ[-1])
        assert drop > 0.05

    def test_throughput_gain_in_paper_band(self):
        """5-20% end-to-end throughput from the 23% clock increase."""
        import dataclasses as dc

        from repro.arch import mtia2i_spec
        from repro.models.dlrm import build_dlrm, small_dlrm
        from repro.perf import Executor

        config = dc.replace(small_dlrm(), batch=1024)
        slow = Executor(mtia2i_spec(frequency_hz=1.1e9)).run(build_dlrm(config), 1024)
        fast = Executor(mtia2i_spec()).run(build_dlrm(config), 1024)
        gain = overclock_throughput_gain(slow, fast)
        assert 0.03 <= gain <= 0.23

    def test_invalid_chips(self):
        with pytest.raises(ValueError):
            run_overclocking_study(num_chips=0)


class TestFirmware:
    def test_deadlock_requires_all_conditions(self):
        base = dict(pe_utilization=1.0, pcie_queue_depth=8,
                    control_core_reads_host_memory=True)
        assert has_deadlock(SystemState(**base))
        assert not has_deadlock(SystemState(**{**base, "pe_utilization": 0.5}))
        assert not has_deadlock(SystemState(**{**base, "pcie_queue_depth": 0}))
        assert not has_deadlock(
            SystemState(**{**base, "control_core_reads_host_memory": False})
        )

    def test_mitigation_breaks_cycle(self):
        state = SystemState(1.0, 8, True)
        assert not has_deadlock(apply_firmware_mitigation(state))

    def test_wait_edges_include_noc_serialization(self):
        edges = wait_for_edges(SystemState(1.0, 8, True))
        assert (Component.NOC, Component.CONTROL_CORE) in edges

    def test_incidence_small_and_mitigated_to_zero(self):
        before = deadlock_incidence(num_servers=50_000, seed=1)
        after = deadlock_incidence(num_servers=50_000, mitigated=True, seed=1)
        assert 0 < before < 0.01  # the paper's ~0.1% order
        assert after == 0.0

    def test_rollout_timescales(self):
        """18-day typical, ~3 h emergency, ~1 h override."""
        assert 14 <= typical_rollout().total_days <= 22
        assert 2 <= emergency_rollout().total_hours <= 4
        assert override_rollout().total_hours <= 1.2

    def test_staged_detection_catches_before_fleet(self):
        result = staged_detection(issue_incidence=0.001, seed=0)
        assert result.detected_at_stage is not None
        assert result.servers_exposed < result.fleet_servers

    def test_tiny_incidence_may_reach_fleet(self):
        result = staged_detection(issue_incidence=1e-7, seed=0)
        assert result.detected_at_stage is None

    def test_zero_incidence_always_reaches_fleet(self):
        """A clean firmware build must sail through every ring regardless
        of seed, exposing the full fleet with no detection."""
        for seed in range(5):
            result = staged_detection(issue_incidence=0.0, seed=seed)
            assert result.detected_at_stage is None
            assert result.servers_exposed == result.fleet_servers

    def test_below_threshold_incidence_escapes_early_rings(self):
        """An incidence too small to trip the detection threshold in any
        pre-fleet ring reaches the whole fleet — the paper's argument for
        why the 0.1% deadlock escaped staged deployment."""
        # With an 80k fleet and a 1%-of-fleet canary ring, incidence that
        # yields < threshold expected hits per ring goes undetected.
        result = staged_detection(
            issue_incidence=1e-6,
            detection_threshold_servers=3,
            seed=1,
        )
        assert result.detected_at_stage is None
        assert result.servers_exposed == result.fleet_servers

    def test_certain_incidence_caught_at_first_ring(self):
        result = staged_detection(issue_incidence=1.0, seed=0)
        assert result.detected_at_stage is not None
        assert result.servers_exposed < result.fleet_servers

    def test_staged_detection_validation(self):
        with pytest.raises(ValueError):
            staged_detection(issue_incidence=1.5)
        with pytest.raises(ValueError):
            staged_detection(issue_incidence=-0.1)

    def test_restart_wave_partitioning(self):
        """Wave sizes honor the concurrency cap and cover the fleet."""
        plan = emergency_rollout()
        for fleet in (1, 5, 300, 80_000):
            waves = plan.restart_waves(fleet)
            assert sum(waves) == fleet
            assert all(0 < w <= plan.restart_wave_size(fleet) for w in waves)
        with pytest.raises(ValueError):
            plan.restart_waves(0)


class TestPower:
    def test_reduction_near_40_percent(self):
        outcome = provisioning_study(mtia2i_server(), seed=3)
        assert 0.30 <= outcome.reduction_fraction <= 0.50

    def test_revised_takes_higher_of_two(self):
        outcome = provisioning_study(mtia2i_server())
        assert outcome.revised_budget_w == max(
            outcome.experiment_budget_w, outcome.fleet_budget_w
        )

    def test_initial_budget_above_nameplate(self):
        server = mtia2i_server()
        assert stress_test_budget(server) > server.max_power_watts

    def test_power_sample_percentiles_ordered(self):
        sample = sample_production_power(mtia2i_server())
        assert sample.percentile(50) <= sample.percentile(90) <= sample.percentile(99)
