"""Golden-value regression tests for the reproduction's headline claims.

Each test pins a seeded measurement with an explicit tolerance so a
refactor cannot silently move a number the paper comparison rests on.
The same claims are pinned on the benchmark side by
:data:`repro.obs.golden.GOLDEN_SCALARS`; these run in tier-1 so drift is
caught before the benchmarks ever run.

Tolerances: count-derived ratios under a fixed seed are exact, so they
get equality or a tight relative band; simulator latencies get a couple
of percent for cross-platform float slack.
"""

import pytest

from repro.chaos import (
    CampaignConfig as ChaosCampaignConfig,
    run_scenario,
    scenario_by_name,
)
from repro.sdc import CampaignConfig, run_campaign
from repro.serving import (
    CoalescingConfig,
    ModelJobProfile,
    max_throughput_under_slo,
)
from repro.serving.faults import (
    PoolState,
    headroom_for_fault_tolerance,
    inject_device_faults,
)


class TestSdcGoldens:
    """Section 5: the protection ladder's headline numbers (seed 0)."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(CampaignConfig(trials=400, requests=8000, seed=0))

    def test_undetected_reduction_is_57x(self, result):
        # The flagship claim: ECC+ABFT leaves 57x fewer undetected
        # NE-impacting corruptions than running unprotected.
        assert result.undetected_impacting_ratio() == pytest.approx(
            57.0, rel=1e-9
        )

    def test_clean_ne_pinned(self, result):
        assert result.clean_ne == pytest.approx(0.6373322319208822, rel=1e-6)

    def test_full_profile_leaves_no_silent_impact(self, result):
        full = result.summary_for("full")
        assert full.coverage == 1.0
        assert full.undetected_ne_impacting == 0

    def test_coverage_ladder_counts_pinned(self, result):
        # (coverage, undetected, undetected-NE-impacting) per profile.
        ladder = {
            s.profile.name: (s.coverage, s.undetected, s.undetected_ne_impacting)
            for s in result.profiles
        }
        assert ladder["none"] == (0.0, 400, 57)
        assert ladder["ecc"] == (pytest.approx(0.6125), 155, 44)
        assert ladder["ecc+abft"] == (pytest.approx(0.94), 24, 1)
        assert ladder["full"] == (1.0, 0, 0)


class TestChaosGoldens:
    """Section 5.5: the retry-storm headline (seed 0).

    The same pair the ``sec5_chaos`` benchmark goldens pin: undefended
    the storm is metastable, defended the tier recovers immediately.
    """

    @pytest.fixture(scope="class")
    def storm_pair(self):
        config = ChaosCampaignConfig()
        storm = scenario_by_name("retry_storm")
        return (
            config,
            run_scenario(storm, config, defended=False),
            run_scenario(storm, config, defended=True),
        )

    def test_undefended_storm_is_metastable(self, storm_pair):
        _, off, _ = storm_pair
        assert not off.recovered
        assert off.post_clear_goodput_ratio == pytest.approx(
            0.0009628610729023383, rel=1.0
        )
        assert off.unavailability == pytest.approx(
            0.7263043113571548, rel=0.05
        )

    def test_defended_storm_recovers_immediately(self, storm_pair):
        config, _, on = storm_pair
        assert on.recovered
        assert on.time_to_recovery_s == 0.0
        assert on.post_clear_goodput_ratio == pytest.approx(
            0.9973865199449794, rel=0.01
        )
        assert on.post_clear_goodput_ratio >= config.recovery_threshold


class TestFleetGoldens:
    """The global region-outage capacity study verdict (seed 0).

    The same claims the ``sec5_fleet`` benchmark goldens pin, via the
    smoke sweep (which keeps both verdict sizes, so the numbers are
    identical to the full study's).
    """

    @pytest.fixture(scope="class")
    def study(self):
        from repro.fleet_global.capacity import smoke_study

        return smoke_study()

    def test_quiet_day_minimum_pinned(self, study):
        assert study.baseline_replicas == 4

    def test_outage_survival_costs_25_percent_overprovision(self, study):
        assert study.defended_replicas == 5
        assert study.overprovision_fraction == pytest.approx(0.25, rel=1e-9)

    def test_no_size_survives_undefended(self, study):
        assert study.undefended_replicas is None

    def test_verdict_point_fractions_pinned(self, study):
        point = study.point(5)
        assert point.undefended.loss_fraction == pytest.approx(
            0.19355545813239808, rel=0.05
        )
        assert point.defended.loss_fraction == pytest.approx(
            0.018851380973257344, rel=0.10
        )
        assert point.defended.p99_latency_s == pytest.approx(
            0.09661823659750723, rel=0.05
        )
        assert point.defended.regions[0].detection_lag_s == pytest.approx(
            0.8, rel=1e-6
        )


class TestHeadroomGoldens:
    """Section 5.4/5.5: closed-form headroom equals exhaustive search."""

    def _exhaustive(self, pool, fault_rate, max_delay_factor=1.5):
        target_utilization = 1.0 - 1.0 / max_delay_factor
        total = pool.devices
        while True:
            impact = inject_device_faults(
                PoolState(total, pool.device_throughput, pool.offered_load),
                fault_rate,
            )
            if (not impact.after.overloaded
                    and impact.after.utilization <= target_utilization):
                return total - pool.devices
            total += 1

    def test_closed_form_matches_exhaustive_search(self):
        for devices in (10, 37, 128, 300):
            for fault_rate in (0.0, 0.001, 0.01, 0.05, 0.2):
                for utilization in (0.5, 0.75, 0.9):
                    pool = PoolState(
                        devices=devices,
                        device_throughput=1000.0,
                        offered_load=devices * 1000.0 * utilization,
                    )
                    assert headroom_for_fault_tolerance(
                        pool, fault_rate
                    ) == self._exhaustive(pool, fault_rate), (
                        devices, fault_rate, utilization,
                    )

    def test_reference_pool_headroom_pinned(self):
        # The section 5.5 incident shape: 300 devices at 85% utilization
        # facing a 0.1% wedge incidence needs 466 extra devices to keep
        # queueing delay under 1.5x (the 1.5x budget caps utilization at
        # 1/3, so the pool must more than double).
        pool = PoolState(
            devices=300, device_throughput=1000.0, offered_load=255_000.0
        )
        assert headroom_for_fault_tolerance(pool, 0.001) == 466


class TestCoalescingGoldens:
    """Section 4.1: tuned coalescing reaches near-full batches.

    The paper's claim label is '>95% requests per batch'; our simulator's
    tuned configuration measures ~92% mean fill (see EXPERIMENTS.md for
    the paper-vs-measured discussion), and that measured value is what
    gets pinned.
    """

    def test_tuned_fill_fraction_pinned(self):
        outcome = max_throughput_under_slo(
            ModelJobProfile(
                remote_time_s=0.002,
                merge_time_s=0.004,
                remote_jobs_per_batch=2,
                dispatch_overhead_s=0.0005,
            ),
            CoalescingConfig(
                window_s=0.030, max_parallel_windows=4, max_batch_samples=1024
            ),
            duration_s=10.0,
            iterations=5,
        )
        assert outcome.meets_slo
        assert outcome.mean_fill_fraction == pytest.approx(
            0.9230967930385044, rel=0.02
        )
        assert outcome.mean_fill_fraction > 0.6
