"""Cross-package consistency checks: the model's internal bookkeeping
agrees with itself wherever two paths compute the same quantity."""

import dataclasses

import pytest

from repro.arch import gpu_spec, mtia1_spec, mtia2i_spec, mtia_nextgen_spec, spec_ratio
from repro.graph import OpGraph, fc, transpose
from repro.graph.passes import fuse_horizontal_fc
from repro.kernels import estimate_op
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import Executor
from repro.tco import GPU_COST, MTIA2I_COST, server_tco
from repro.tensors import DType, model_input, weight


class TestSpecConsistency:
    def test_dpe_config_reproduces_every_chip_peak(self):
        """The DPE geometry inferred from any chip's aggregate peak must
        reproduce that peak when multiplied back out."""
        from repro.kernels.gemm import _dpe_config_for

        for spec in (mtia2i_spec(), mtia1_spec(), gpu_spec(), mtia_nextgen_spec()):
            config = _dpe_config_for(spec)
            dtype = DType.FP16 if DType.FP16 in spec.gemm.peak_flops else DType.INT8
            reproduced = config.peak_flops(dtype) * spec.num_pes
            assert reproduced == pytest.approx(
                spec.peak_gemm_flops(dtype), rel=0.10  # tile-count rounding
            ), spec.name

    def test_spec_ratio_symmetry(self):
        forward = spec_ratio(mtia2i_spec(ecc_enabled=False), mtia1_spec())
        backward = spec_ratio(mtia1_spec(), mtia2i_spec(ecc_enabled=False))
        for key, value in forward.items():
            assert backward[key] == pytest.approx(1.0 / value)

    def test_int8_always_double_fp16(self):
        for spec in (mtia2i_spec(), mtia1_spec(), gpu_spec()):
            if DType.FP16 in spec.gemm.peak_flops and DType.INT8 in spec.gemm.peak_flops:
                ratio = spec.peak_gemm_flops(DType.INT8) / spec.peak_gemm_flops(DType.FP16)
                assert ratio == pytest.approx(2.0, rel=0.01), spec.name


class TestGraphExecutorConsistency:
    def test_report_flops_match_graph_flops(self):
        graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=512))
        report = Executor(mtia2i_spec()).run(graph, 512)
        assert report.total_flops == pytest.approx(graph.total_flops())

    def test_latency_is_sum_of_profiles(self):
        graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=512))
        report = Executor(mtia2i_spec()).run(graph, 512)
        assert report.latency_s == pytest.approx(
            sum(p.time_s for p in report.op_profiles)
        )

    def test_op_time_at_least_bottleneck(self):
        graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=512))
        report = Executor(mtia2i_spec()).run(graph, 512)
        for profile in report.op_profiles:
            floor = max(
                profile.compute_s, profile.issue_s, profile.dram_s,
                profile.sram_s, profile.noc_s, profile.host_s,
            )
            assert profile.time_s >= floor

    def test_kernel_estimate_matches_profile_compute(self):
        """The executor's per-op compute time is the kernel estimate
        divided by the chip's sustained fraction."""
        chip = mtia2i_spec()
        graph = OpGraph(name="one_fc")
        x = model_input(1024, 1024, name="x")
        op = graph.add(fc(x, weight(1024, 1024, name="w"), name="fc"))
        report = Executor(chip).run(graph, 1024)
        estimate = estimate_op(op, chip)
        assert report.op_profiles[0].compute_s == pytest.approx(
            estimate.compute_s / chip.sustained_gemm_fraction
        )


class TestFusionConsistency:
    def test_horizontal_fusion_estimate_bounded_by_parts(self):
        x = model_input(512, 512, name="x")
        graph = OpGraph(name="parallel")
        ops = [
            graph.add(fc(x, weight(512, 256, name=f"w{i}"), name=f"fc{i}"))
            for i in range(3)
        ]
        fused_graph = fuse_horizontal_fc(graph)
        chip = mtia2i_spec()
        fused_cost = estimate_op(fused_graph.ops[0], chip)
        parts = sum(estimate_op(op, chip).compute_s for op in ops)
        assert fused_cost.compute_s <= parts

    def test_fused_sub_ops_preserved(self):
        x = model_input(64, 64, name="x")
        graph = OpGraph(name="t")
        t = graph.add(transpose(x, name="t"))
        for i in range(2):
            graph.add(fc(t.output, weight(64, 32, name=f"w{i}"), name=f"fc{i}"))
        from repro.graph.passes import fuse_sibling_transpose_fc

        fused_graph = fuse_sibling_transpose_fc(graph)
        sub_ops = fused_graph.ops[0].attrs["sub_ops"]
        assert len(sub_ops) == 3


class TestTcoConsistency:
    def test_per_server_costs_scale_with_accelerator_price(self):
        from repro.arch import mtia2i_server

        cheap = dataclasses.replace(MTIA2I_COST, accelerator_cost_usd=1000)
        pricey = dataclasses.replace(MTIA2I_COST, accelerator_cost_usd=5000)
        delta = (
            server_tco(mtia2i_server(), pricey).capex_per_year
            - server_tco(mtia2i_server(), cheap).capex_per_year
        )
        assert delta == pytest.approx(24 * 4000 / MTIA2I_COST.depreciation_years)

    def test_gpu_accelerators_dominate_gpu_capex(self):
        from repro.arch import gpu_server

        breakdown = server_tco(gpu_server(), GPU_COST)
        accelerator_share = (
            8 * GPU_COST.accelerator_cost_usd
            / (8 * GPU_COST.accelerator_cost_usd + GPU_COST.platform_cost_usd)
        )
        assert accelerator_share > 0.75
        assert breakdown.capex_per_year > breakdown.provisioning_per_year
