"""Unit tests for repro.surrogate: features, models, verification, and
the three opt-in integrations (kernel tuning, capacity, power)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.arch import mtia2i_spec
from repro.autotune import autotune_model, exhaustive_tune, surrogate_tune
from repro.cluster.capacity import capacity_sweep, replicas_needed
from repro.cluster.service import ServiceModel
from repro.fastsim.memo import KernelLatencyMemo
from repro.kernels.gemm import default_variants
from repro.models.zoo import lc1
from repro.obs.metrics import MetricsRegistry
from repro.power.cluster_link import power_limited_capacity_sweep
from repro.surrogate import (
    DatasetRecorder,
    GemmFeatureSpace,
    RidgeRegressor,
    SurrogateModel,
    collect_executor_dataset,
    collect_gemm_dataset,
    train_capacity_surrogate,
    train_gemm_surrogate,
    train_power_surrogate,
    verified_argmin,
    verified_max_feasible,
    verified_min_feasible,
)
from repro.surrogate.features import GEMM_FEATURE_NAMES
from repro.tensors import DType, GemmShape

CHIP = mtia2i_spec()
# One small trained surrogate shared across the module: training is
# deterministic, so sharing it changes nothing but wall time.
SURROGATE, REPORTS = train_gemm_surrogate(
    CHIP, n_samples=800, seed=0, include_energy=True
)

QUERY_SHAPES = [(700, 1700, 800), (3000, 600, 2000), (150, 300, 150)]


class TestFeatures:
    def test_pair_matrix_shape_and_names(self):
        space = GemmFeatureSpace(CHIP)
        variants = default_variants()[:7]
        shapes = [(64, 128, 256)] * 7
        X = space.pair_matrix(shapes, variants)
        assert X.shape == (7, len(GEMM_FEATURE_NAMES))
        assert X.dtype == np.float32
        assert np.all(np.isfinite(X))

    def test_grid_factorization_consistent(self):
        """One S x V sweep must equal S single-shape sweeps cell for
        cell.  Tolerance is float32 ULPs, not zero: BLAS picks batch-
        size-dependent matvec kernels, so cross-batch accumulation
        order can differ even though each call is itself deterministic."""
        variants = default_variants()[::97]
        shapes = [(64, 128, 256), (700, 1700, 800), (31, 33, 35)]
        grid = SURROGATE.predict_time_grid(shapes, variants)
        assert grid.shape == (len(shapes), len(variants))
        for i, shape in enumerate(shapes):
            row = SURROGATE.predict_time_grid([shape], variants)
            np.testing.assert_allclose(grid[i], row[0], rtol=1e-5)

    def test_rank_variants_is_grid_argsort(self):
        variants = default_variants()[:200]
        ranking = SURROGATE.rank_variants((700, 1700, 800), variants)
        row = SURROGATE.predict_time_grid([(700, 1700, 800)], variants)[0]
        np.testing.assert_array_equal(
            ranking, np.argsort(row, kind="stable")
        )

    def test_dtype_mismatch_rejected(self):
        space = GemmFeatureSpace(CHIP, dtype=DType.FP16)
        recorder = DatasetRecorder()
        recorder(GemmShape(8, 8, 8), default_variants()[0], DType.INT8, 1e-6)
        assert recorder.to_dataset(space).X.shape[0] == 0


class TestModel:
    def test_ridge_recovers_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        w = np.array([1.5, -2.0, 0.5, 3.0])
        y = X @ w + 7.0
        ridge = RidgeRegressor(l2=1e-9)
        ridge.fit(X, y)
        np.testing.assert_allclose(ridge.predict(X), y, rtol=1e-6)

    def test_training_is_deterministic(self):
        a, _ = train_gemm_surrogate(CHIP, n_samples=400, seed=3)
        b, _ = train_gemm_surrogate(CHIP, n_samples=400, seed=3)
        variants = default_variants()[:50]
        ga = a.predict_time_grid(QUERY_SHAPES, variants)
        gb = b.predict_time_grid(QUERY_SHAPES, variants)
        np.testing.assert_array_equal(ga, gb)

    def test_holdout_error_bands(self):
        assert REPORTS["latency"].mape_holdout <= 0.10
        assert REPORTS["latency"].p95_rel_error_holdout <= 0.20
        assert REPORTS["energy"].mape_holdout <= 0.10
        assert REPORTS["latency"].n_holdout > 0

    def test_pickle_round_trip(self):
        clone = pickle.loads(pickle.dumps(SURROGATE))
        variants = default_variants()[:64]
        np.testing.assert_array_equal(
            clone.predict_time_grid(QUERY_SHAPES, variants),
            SURROGATE.predict_time_grid(QUERY_SHAPES, variants),
        )

    def test_log_targets_reject_nonpositive(self):
        model = SurrogateModel()
        X = np.ones((8, 2))
        with pytest.raises(ValueError):
            model.fit(X, np.zeros(8))


class TestVerify:
    def test_verified_argmin_returns_exact_value(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        # Ranking is wrong on purpose; top-3 still covers index 1.
        result = verified_argmin([4, 1, 3, 0, 2], lambda i: values[i], 3)
        assert result.best_index == 1
        assert result.best_value == 1.0
        assert result.exact_evaluations == 3
        assert set(result.evaluated) == {4, 1, 3}

    def test_min_feasible_matches_linear_scan(self):
        for boundary in range(0, 10):
            feasible = lambda i: i >= boundary  # noqa: E731
            scan = next(i for i in range(10) if feasible(i))
            for guess in range(-2, 12):
                answer, _ = verified_min_feasible(guess, 0, 9, feasible)
                assert answer == scan

    def test_min_feasible_infeasible_range(self):
        answer, calls = verified_min_feasible(5, 0, 9, lambda i: False)
        assert answer is None
        assert calls == 5  # 5..9 probed once each

    def test_max_feasible_mirror(self):
        for boundary in range(0, 10):
            feasible = lambda i: i <= boundary  # noqa: E731
            for guess in range(-2, 12):
                answer, _ = verified_max_feasible(guess, 0, 9, feasible)
                assert answer == boundary


class TestKernelIntegration:
    def test_surrogate_tune_matches_exhaustive_time(self):
        for mkn in QUERY_SHAPES:
            shape = GemmShape(*mkn)
            gold = exhaustive_tune(shape, CHIP)
            result = surrogate_tune(shape, CHIP, SURROGATE)
            assert result.kernel_time_s == pytest.approx(
                gold.kernel_time_s, rel=1e-12
            )
            assert result.evaluations == 16

    def test_surrogate_tune_counts_metrics(self):
        registry = MetricsRegistry()
        surrogate_tune(
            GemmShape(64, 128, 256), CHIP, SURROGATE, registry=registry
        )
        counters = registry.snapshot()["counters"]
        assert counters["surrogate.kernel.predictions"] == len(
            default_variants()
        )
        assert counters["surrogate.kernel.exact_evals"] == 16

    def test_surrogate_tune_rejects_wrong_chip_or_dtype(self):
        other = mtia2i_spec()
        with pytest.raises(ValueError):
            surrogate_tune(GemmShape(8, 8, 8), other, SURROGATE)
        with pytest.raises(ValueError):
            surrogate_tune(
                GemmShape(8, 8, 8), CHIP, SURROGATE, dtype=DType.INT8
            )

    def test_autotune_model_on_off_same_kernel_times(self):
        build = lc1().graph_at
        off = autotune_model(build, CHIP, model_name="lc1")
        on = autotune_model(
            build, CHIP, model_name="lc1",
            use_surrogate=True, surrogate=SURROGATE,
        )
        assert off.kernel_variants.keys() == on.kernel_variants.keys()
        for name, gold in off.kernel_variants.items():
            assert on.kernel_variants[name].kernel_time_s == pytest.approx(
                gold.kernel_time_s, rel=1e-12
            )
        evals_off = sum(r.evaluations for r in off.kernel_variants.values())
        evals_on = sum(r.evaluations for r in on.kernel_variants.values())
        assert evals_on < evals_off / 10

    def test_autotune_model_requires_surrogate(self):
        with pytest.raises(ValueError):
            autotune_model(lc1().graph_at, CHIP, use_surrogate=True)


class TestDataset:
    def test_recorder_rows_align_with_memo_misses(self):
        recorder = DatasetRecorder()
        memo = KernelLatencyMemo(CHIP, recorder=recorder)
        variants = default_variants()[:5]
        shape = GemmShape(96, 160, 224)
        for variant in variants + variants:  # second pass is all hits
            memo.measure(shape, variant, DType.FP16)
        assert len(recorder) == memo.misses == 5
        dataset = recorder.to_dataset(GemmFeatureSpace(CHIP))
        assert dataset.X.shape == (5, len(GEMM_FEATURE_NAMES))
        assert np.all(dataset.latency_s > 0)

    def test_collect_gemm_dataset_deduplicates(self):
        dataset, _space = collect_gemm_dataset(CHIP, n_samples=300, seed=1)
        assert dataset.X.shape[0] <= 300
        assert dataset.energy_j is not None
        assert np.all(dataset.energy_j > 0)

    def test_collect_executor_dataset(self):
        dataset = collect_executor_dataset(
            lc1().graph_at, CHIP, batches=(64,)
        )
        assert dataset.X.shape[0] > 0
        assert np.all(dataset.latency_s > 0)


class TestServingIntegrations:
    SERVICE = ServiceModel(mean_service_s=0.004, jitter_sigma=0.3)

    def test_replicas_needed_on_off_identical(self):
        surrogate, _ = train_capacity_surrogate(
            self.SERVICE, qps_points=(400.0, 1200.0),
            policies=("po2",), duration_s=6.0, max_replicas=40,
        )
        registry = MetricsRegistry()
        for qps in (500.0, 1000.0):
            off = replicas_needed(
                "po2", qps, self.SERVICE, duration_s=6.0, max_replicas=40
            )
            on = replicas_needed(
                "po2", qps, self.SERVICE, duration_s=6.0, max_replicas=40,
                use_surrogate=True, surrogate=surrogate, registry=registry,
            )
            assert off == on
        counters = registry.snapshot()["counters"]
        assert counters["surrogate.capacity.predictions"] == 2
        assert counters["surrogate.capacity.exact_runs"] >= 2

    def test_capacity_sweep_on_off_identical(self):
        surrogate, _ = train_capacity_surrogate(
            self.SERVICE, qps_points=(400.0, 1200.0),
            policies=("po2",), duration_s=6.0, max_replicas=40,
        )
        off = capacity_sweep(
            self.SERVICE, qps_points=(600.0,), policies=("po2",),
            duration_s=6.0,
        )
        on = capacity_sweep(
            self.SERVICE, qps_points=(600.0,), policies=("po2",),
            duration_s=6.0, use_surrogate=True, surrogate=surrogate,
        )
        assert off == on

    def test_power_sweep_on_off_identical(self):
        budgets = (1200.0, 1600.0, 2000.0, 2400.0)
        surrogate, _ = train_power_surrogate(
            self.SERVICE, probe_budgets_w=(1100.0, 1800.0, 2600.0),
            replicas=24, duration_s=6.0,
        )
        registry = MetricsRegistry()
        off = power_limited_capacity_sweep(
            self.SERVICE, budgets, replicas=24, duration_s=6.0
        )
        on = power_limited_capacity_sweep(
            self.SERVICE, budgets, replicas=24, duration_s=6.0,
            use_surrogate=True, surrogate=surrogate, registry=registry,
        )
        assert off == on
        counters = registry.snapshot()["counters"]
        assert counters["surrogate.power.exact_runs"] <= counters[
            "surrogate.power.linear_scan_runs"
        ]

    def test_use_surrogate_requires_model(self):
        with pytest.raises(ValueError):
            replicas_needed(
                "po2", 100.0, self.SERVICE, use_surrogate=True
            )
        with pytest.raises(ValueError):
            power_limited_capacity_sweep(
                self.SERVICE, (1200.0,), use_surrogate=True
            )
        with pytest.raises(ValueError):
            capacity_sweep(
                self.SERVICE, (100.0,), use_surrogate=True
            )
