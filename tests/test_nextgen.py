"""Tests for the projected next-generation MTIA (sections 8-9)."""

import pytest

from repro.arch import mtia2i_spec, mtia_nextgen_spec
from repro.perf import Executor, evaluate_llm, llama2_7b
from repro.tensors import DType


class TestNextGenSpec:
    def test_compute_scales(self):
        base = mtia2i_spec(ecc_enabled=False)
        nextgen = mtia_nextgen_spec(compute_scale=3.0)
        # ECC derate applies to the next-gen LPDDR too; compare raw peak.
        assert nextgen.peak_gemm_flops(DType.FP16) == pytest.approx(
            3.0 * base.peak_gemm_flops(DType.FP16)
        )

    def test_sram_doubles(self):
        assert mtia_nextgen_spec().sram.capacity_bytes == 2 * mtia2i_spec().sram.capacity_bytes

    def test_keeps_lpddr_cost_thesis(self):
        nextgen = mtia_nextgen_spec()
        # Next-gen LPDDR, not HBM: bandwidth stays well under 1 TB/s.
        assert nextgen.dram.bandwidth_bytes_per_s < 1e12
        assert not nextgen.dram_has_native_ecc
        # ECC stays enabled by default.
        assert nextgen.dram.bandwidth_bytes_per_s < 360e9

    def test_power_grows_sublinearly_with_compute(self):
        base, nextgen = mtia2i_spec(), mtia_nextgen_spec()
        assert nextgen.tdp_watts < 3 * base.tdp_watts

    def test_executor_runs_on_nextgen(self):
        import dataclasses

        from repro.models.dlrm import build_dlrm, small_dlrm

        graph = build_dlrm(dataclasses.replace(small_dlrm(), batch=512))
        report = Executor(mtia_nextgen_spec()).run(graph, 512, warmup_runs=1)
        assert report.throughput_samples_per_s > 0

    def test_nextgen_brings_7b_decode_to_the_edge(self):
        """The LPDDR-next projection (~360 GB/s) pulls Llama2-7B decode
        just under the 60 ms bar — small-LLM serving becomes borderline
        viable without abandoning the no-HBM cost thesis — while
        70B-class models remain far out of reach."""
        from repro.perf import llama3_70b

        small = evaluate_llm(llama2_7b(), mtia_nextgen_spec())
        assert small.prefill_meets_ttft
        assert small.decode_meets_latency
        assert 0.5 <= small.decode_latency_s / 0.060 <= 1.0  # barely under
        big = evaluate_llm(llama3_70b(), mtia_nextgen_spec())
        assert not big.viable
