"""Tests for graph optimization passes: fusion, scheduling, broadcast
deferral (paper sections 4.2 and 6)."""

import pytest

from repro.graph import OpGraph, OpType, broadcast, elementwise, fc, layernorm, transpose
from repro.graph.passes import (
    batch_layernorms,
    broadcast_savings,
    count_kernel_launches,
    defer_broadcast,
    fuse_horizontal_fc,
    fuse_sibling_transpose_fc,
    fuse_vertical,
    minimize_liveness,
    schedule_quality,
)
from repro.tensors import model_input, weight


def _chain_graph():
    x = model_input(64, 128, name="x")
    g = OpGraph()
    f1 = g.add(fc(x, weight(128, 128, name="w1"), name="fc1"))
    r1 = g.add(elementwise([f1.output], function="relu", name="relu1"))
    c1 = g.add(elementwise([r1.output], function="scale", name="scale1"))
    g.add(fc(c1.output, weight(128, 8, name="w2"), name="fc2"))
    return g


class TestVerticalFusion:
    def test_chain_fused(self):
        g = _chain_graph()
        fused_graph = fuse_vertical(g)
        assert count_kernel_launches(fused_graph) < count_kernel_launches(g)
        kinds = [op.op_type for op in fused_graph.ops]
        assert OpType.FUSED in kinds

    def test_fusion_preserves_flops(self):
        g = _chain_graph()
        assert fuse_vertical(g).total_flops() == pytest.approx(g.total_flops())

    def test_fusion_preserves_outputs(self):
        g = _chain_graph()
        fused_graph = fuse_vertical(g)
        assert {t.uid for t in fused_graph.graph_outputs()} == {
            t.uid for t in g.graph_outputs()
        }

    def test_multi_consumer_blocks_fusion(self):
        x = model_input(64, 128)
        g = OpGraph()
        f1 = g.add(fc(x, weight(128, 128), name="fc1"))
        # Two consumers of fc1 -> cannot fuse the chain.
        g.add(elementwise([f1.output], name="e1"))
        g.add(elementwise([f1.output], name="e2"))
        fused_graph = fuse_vertical(g)
        assert count_kernel_launches(fused_graph) == 3

    def test_fused_graph_schedulable(self):
        fuse_vertical(_chain_graph()).validate_schedule()


class TestSiblingTransposeFusion:
    def _graph(self, num_siblings=3):
        x = model_input(64, 128, name="x")
        g = OpGraph()
        t = g.add(transpose(x, name="t"))
        for i in range(num_siblings):
            g.add(fc(t.output, weight(64, 32, name=f"w{i}"), name=f"fc{i}"))
        return g

    def test_siblings_fused(self):
        """The paper's sibling transpose-FC fusion (up to 15% gain)."""
        g = self._graph()
        fused_graph = fuse_sibling_transpose_fc(g)
        assert count_kernel_launches(fused_graph) == 1
        assert fused_graph.ops[0].op_type is OpType.FUSED

    def test_single_consumer_not_fused(self):
        g = self._graph(num_siblings=1)
        assert count_kernel_launches(fuse_sibling_transpose_fc(g)) == 2

    def test_outputs_preserved(self):
        g = self._graph()
        fused_graph = fuse_sibling_transpose_fc(g)
        assert len(fused_graph.graph_outputs()) == 3


class TestHorizontalFusion:
    def test_parallel_fcs_fused(self):
        x = model_input(64, 128)
        g = OpGraph()
        for i in range(4):
            g.add(fc(x, weight(128, 32, name=f"w{i}"), name=f"fc{i}"))
        fused_graph = fuse_horizontal_fc(g)
        assert count_kernel_launches(fused_graph) == 1

    def test_different_inputs_not_fused(self):
        a, b = model_input(4, 8), model_input(4, 8)
        g = OpGraph()
        g.add(fc(a, weight(8, 8), name="fa"))
        g.add(fc(b, weight(8, 8), name="fb"))
        assert count_kernel_launches(fuse_horizontal_fc(g)) == 2


class TestLayernormBatching:
    def test_independent_layernorms_batched(self):
        """Section 6: hundreds of LayerNorms batched horizontally."""
        x = model_input(64, 128)
        g = OpGraph()
        f = g.add(fc(x, weight(128, 128), name="f"))
        for i in range(6):
            g.add(layernorm(f.output, name=f"ln{i}"))
        batched = batch_layernorms(g)
        launches = count_kernel_launches(batched)
        assert launches == 2  # the fc + one batched layernorm kernel

    def test_dependent_layernorms_not_merged(self):
        x = model_input(64, 128)
        g = OpGraph()
        ln1 = g.add(layernorm(x, name="ln1"))
        f = g.add(fc(ln1.output, weight(128, 128), name="f"))
        g.add(layernorm(f.output, name="ln2"))
        batched = batch_layernorms(g)
        # ln2 depends on f which depends on ln1: cannot batch.
        assert count_kernel_launches(batched) == 3

    def test_flops_preserved(self):
        x = model_input(64, 128)
        g = OpGraph()
        f = g.add(fc(x, weight(128, 128)))
        for i in range(4):
            g.add(layernorm(f.output, name=f"ln{i}"))
        assert batch_layernorms(g).total_flops() == pytest.approx(g.total_flops())


class TestScheduling:
    def _diamond(self):
        """A graph where eager scheduling bloats liveness."""
        x = model_input(64, 1024, name="x")
        g = OpGraph()
        # Several large branches off x, each reduced to small outputs.
        joins = []
        for i in range(4):
            big = g.add(fc(x, weight(1024, 4096, name=f"wide{i}"), name=f"wide_fc{i}"))
            small = g.add(fc(big.output, weight(4096, 8, name=f"narrow{i}"), name=f"narrow_fc{i}"))
            joins.append(small.output)
        from repro.graph import concat

        g.add(concat(joins, axis=1, name="join"))
        return g

    def test_minimize_liveness_is_valid(self):
        scheduled = minimize_liveness(self._diamond())
        scheduled.validate_schedule()

    def test_minimize_liveness_reduces_peak(self):
        """Interleaving wide+narrow pairs frees each big tensor before the
        next branch runs."""
        g = self._diamond()
        # Build a bad schedule: all wide FCs first.
        wide = [op for op in g.ops if op.name.startswith("wide")]
        narrow = [op for op in g.ops if op.name.startswith("narrow")]
        join = [op for op in g.ops if op.name == "join"]
        bad = g.reordered(wide + narrow + join)
        good = minimize_liveness(bad)
        assert good.peak_activation_bytes() < bad.peak_activation_bytes()

    def test_schedule_quality_metrics(self):
        metrics = schedule_quality(self._diamond())
        assert metrics["peak_activation_bytes"] > 0
        assert metrics["num_live_ranges"] > 0


class TestBroadcastDeferral:
    def _graph(self, chain_len=2):
        users = model_input(8, 64, name="users")
        g = OpGraph()
        b = g.add(broadcast(users, factor=4, name="ibb"))
        current = b.output
        for i in range(chain_len):
            op = fc(current, weight(current.shape[1], 64, name=f"uw{i}"), name=f"ufc{i}")
            op.attrs["user_side"] = True
            g.add(op)
            current = op.output
        g.add(fc(current, weight(64, 8, name="merge_w"), name="merge"))
        return g

    def test_deferral_shrinks_user_side_flops(self):
        g = self._graph()
        deferred = defer_broadcast(g)
        assert deferred.total_flops() < g.total_flops()

    def test_deferral_preserves_merge_shape(self):
        g = self._graph()
        deferred = defer_broadcast(g)
        merge = [op for op in deferred.ops if op.name == "merge"][0]
        assert merge.inputs[0].shape[0] == 32  # still the broadcast batch

    def test_deferral_reduces_footprint(self):
        g = self._graph(chain_len=3)
        deferred = defer_broadcast(g)
        savings = broadcast_savings(g, deferred)
        assert savings["footprint_reduction"] > 1.0

    def test_non_user_side_chain_untouched(self):
        users = model_input(8, 64)
        g = OpGraph()
        b = g.add(broadcast(users, factor=4))
        g.add(fc(b.output, weight(64, 8)))  # not marked user_side
        deferred = defer_broadcast(g)
        assert deferred.total_flops() == pytest.approx(g.total_flops())

    def test_deferred_graph_schedulable(self):
        defer_broadcast(self._graph()).validate_schedule()
