"""Tests for the executor, roofline, LLM model, and metrics."""

import dataclasses

import pytest

from repro.arch import gpu_spec, mtia1_spec, mtia2i_spec
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import (
    DECODE_REQUIREMENT_S,
    TTFT_REQUIREMENT_S,
    Executor,
    attainable,
    compare_reports,
    decode_report,
    dual_roofline,
    efficiency_from_report,
    evaluate_llm,
    llama2_7b,
    llama3_70b,
    llama3_8b,
    prefill_report,
    ridge_point,
    sram_cliff,
    sweep,
)
from repro.tensors import DType


def _small_graph(batch=256):
    return build_dlrm(dataclasses.replace(small_dlrm(), batch=batch))


class TestExecutor:
    def test_report_basics(self):
        report = Executor(mtia2i_spec()).run(_small_graph(), 256)
        assert report.latency_s > 0
        assert report.throughput_samples_per_s == pytest.approx(256 / report.latency_s)
        assert report.total_flops > 0
        assert report.avg_power_w > 0
        assert len(report.op_profiles) > 5

    def test_warmup_improves_dense_hit_rate(self):
        chip = mtia2i_spec()
        cold = Executor(chip).run(_small_graph(), 256, warmup_runs=0)
        warm = Executor(chip).run(_small_graph(), 256, warmup_runs=2)
        assert warm.dense_hit_rate >= cold.dense_hit_rate
        assert warm.dense_hit_rate > 0.9  # small model: weights resident

    def test_warm_latency_not_worse(self):
        chip = mtia2i_spec()
        cold = Executor(chip).run(_small_graph(), 256, warmup_runs=0)
        warm = Executor(chip).run(_small_graph(), 256, warmup_runs=2)
        assert warm.latency_s <= cold.latency_s * 1.01

    def test_activations_pinned_in_lls_for_small_model(self):
        report = Executor(mtia2i_spec()).run(_small_graph(), 256)
        assert report.activations_in_lls
        assert report.lls_bytes + report.llc_bytes == mtia2i_spec().sram.capacity_bytes

    def test_sparse_hit_rate_in_band(self):
        """Section 4.2: 40-60% of sparse accesses stay in SRAM."""
        report = Executor(mtia2i_spec()).run(_small_graph(1024), 1024, warmup_runs=2)
        assert 0.35 <= report.sparse_hit_rate <= 0.95

    def test_bigger_batch_higher_throughput(self):
        chip = mtia2i_spec()
        small = Executor(chip).run(_small_graph(128), 128)
        large = Executor(chip).run(_small_graph(2048), 2048)
        assert large.throughput_samples_per_s > small.throughput_samples_per_s

    def test_mtia2i_beats_mtia1(self):
        new = Executor(mtia2i_spec()).run(_small_graph(512), 512)
        old = Executor(mtia1_spec()).run(_small_graph(512), 512)
        assert new.throughput_samples_per_s > 1.5 * old.throughput_samples_per_s

    def test_bottleneck_histogram_sums_to_one(self):
        report = Executor(mtia2i_spec()).run(_small_graph(), 256)
        assert sum(report.bottleneck_histogram().values()) == pytest.approx(1.0)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            Executor(mtia2i_spec()).run(_small_graph(), 0)

    def test_deterministic(self):
        chip = mtia2i_spec()
        a = Executor(chip, seed=3).run(_small_graph(256), 256)
        b = Executor(chip, seed=3).run(_small_graph(256), 256)
        assert a.latency_s == pytest.approx(b.latency_s)

    def test_energy_consistent_with_power(self):
        report = Executor(mtia2i_spec()).run(_small_graph(), 256)
        assert report.energy_j == pytest.approx(report.avg_power_w * report.latency_s)
        assert report.avg_power_w <= mtia2i_spec().typical_watts * 1.01


class TestRoofline:
    def test_attainable_min_rule(self):
        assert attainable(10, peak_flops=100, bandwidth_bytes_per_s=5) == 50
        assert attainable(1000, peak_flops=100, bandwidth_bytes_per_s=5) == 100

    def test_ridge_point(self):
        chip = mtia2i_spec()
        ridge_sram = ridge_point(chip.peak_gemm_flops(DType.FP16), chip.sram.bandwidth_bytes_per_s)
        ridge_dram = ridge_point(chip.peak_gemm_flops(DType.FP16), chip.dram.bandwidth_bytes_per_s)
        assert ridge_dram > 10 * ridge_sram

    def test_sram_13x_bandwidth_gap(self):
        """Section 3.6: SRAM offers ~13x LPDDR's bandwidth."""
        chip = mtia2i_spec(ecc_enabled=False)
        gap = chip.sram.bandwidth_bytes_per_s / chip.dram.bandwidth_bytes_per_s
        assert gap == pytest.approx(13.2, rel=0.05)

    def test_sram_cliff_is_steep(self):
        """Performance drops sharply when the working set spills to DRAM."""
        cliff = sram_cliff(mtia2i_spec(), intensity_flops_per_byte=100)
        assert cliff > 5

    def test_dual_roofline_bounds(self):
        chip = mtia2i_spec()
        resident = dual_roofline(chip, 50, sram_resident_fraction=1.0)
        spilled = dual_roofline(chip, 50, sram_resident_fraction=0.0)
        assert resident.attainable_flops > spilled.attainable_flops
        assert spilled.bound == "dram"

    def test_compute_bound_at_high_intensity(self):
        point = dual_roofline(mtia2i_spec(), 1e6, sram_resident_fraction=1.0)
        assert point.bound == "compute"

    def test_sweep_monotone(self):
        points = sweep(mtia2i_spec(), [1, 10, 100, 1000])
        values = [p.attainable_flops for p in points]
        assert values == sorted(values)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            dual_roofline(mtia2i_spec(), 10, sram_resident_fraction=1.5)


class TestLlm:
    def test_llama2_7b_params_about_7b(self):
        assert llama2_7b().num_params == pytest.approx(7e9, rel=0.1)

    def test_llama3_8b_params_about_8b(self):
        assert llama3_8b().num_params == pytest.approx(8e9, rel=0.1)

    def test_llama2_7b_on_mtia_matches_paper(self):
        """Section 3.6: prefill meets 600 ms TTFT; decode misses 60 ms."""
        verdict = evaluate_llm(llama2_7b(), mtia2i_spec())
        assert verdict.prefill_meets_ttft
        assert not verdict.decode_meets_latency
        assert not verdict.viable

    def test_llama3_8b_on_mtia_same_shape(self):
        """Section 8 repeats the finding for Llama3-8B."""
        verdict = evaluate_llm(llama3_8b(), mtia2i_spec())
        assert verdict.prefill_meets_ttft
        assert not verdict.decode_meets_latency

    def test_llama_on_gpu_is_viable(self):
        verdict = evaluate_llm(llama2_7b(), gpu_spec())
        assert verdict.viable

    def test_llama3_70b_unsuitable(self):
        """Section 8: 70B-class models are out of reach for MTIA 2i."""
        verdict = evaluate_llm(llama3_70b(), mtia2i_spec())
        assert not verdict.viable

    def test_decode_memory_bound_on_mtia(self):
        report = decode_report(llama2_7b(), mtia2i_spec())
        assert report.memory_bound
        # The weight stream alone exceeds the decode budget.
        assert report.weight_stream_s > DECODE_REQUIREMENT_S

    def test_prefill_compute_bound_on_mtia(self):
        report = prefill_report(llama2_7b(), mtia2i_spec())
        assert not report.memory_bound
        assert report.latency_s < TTFT_REQUIREMENT_S

    def test_decode_kv_traffic_grows_with_context(self):
        short = decode_report(llama2_7b(), mtia2i_spec(), context_tokens=512)
        long = decode_report(llama2_7b(), mtia2i_spec(), context_tokens=8192)
        assert long.kv_stream_s > short.kv_stream_s


class TestMetrics:
    def test_efficiency_summary(self):
        report = Executor(mtia2i_spec()).run(_small_graph(), 256)
        summary = efficiency_from_report(report)
        assert summary.perf_per_watt > 0
        assert summary.flops_per_sample == pytest.approx(report.total_flops / 256)

    def test_compare_reports_produces_ratios(self):
        mtia_rep = Executor(mtia2i_spec()).run(_small_graph(512), 512)
        gpu_rep = Executor(gpu_spec()).run(_small_graph(512), 512)
        comparison = compare_reports(mtia_rep, gpu_rep)
        assert comparison.perf_per_tco_ratio > 0
        assert comparison.perf_per_watt_ratio > 0
        assert -1 < comparison.tco_reduction < 1
