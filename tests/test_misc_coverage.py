"""Coverage for smaller API surfaces not exercised elsewhere."""

import pytest

from repro.arch import mtia2i_spec
from repro.autotune import tune_coalescing
from repro.memory import MemoryHierarchy, Placement
from repro.models.hstu import HstuConfig, build_hstu, hstu_flops_per_request
from repro.perf import Executor
from repro.serving import ModelJobProfile
from repro.tensors import activation, weight


class TestHierarchyStats:
    def test_llc_hit_rate_tracks_accesses(self):
        hierarchy = MemoryHierarchy(mtia2i_spec())
        w = weight(512, 512)
        hierarchy.place(w, Placement.LLC)
        hierarchy.read(w)
        cold = hierarchy.llc_hit_rate()
        hierarchy.read(w)
        warm = hierarchy.llc_hit_rate()
        assert warm > cold

    def test_writeback_traffic_accumulates(self):
        hierarchy = MemoryHierarchy(mtia2i_spec())
        t = activation(512, 512)
        hierarchy.place(t, Placement.LLC)
        hierarchy.write(t)
        hierarchy.llc.flush()
        assert hierarchy.writeback_traffic().dram_bytes > 0

    def test_hierarchy_rejects_oversized_partition(self):
        from repro.memory import SramPartition

        chip = mtia2i_spec()
        too_big = SramPartition(
            lls_bytes=chip.sram.capacity_bytes,
            llc_bytes=chip.sram_partition_bytes,
            granularity_bytes=chip.sram_partition_bytes,
        )
        with pytest.raises(ValueError):
            MemoryHierarchy(chip, too_big)


class TestHstuHelpers:
    def test_flops_per_request(self):
        config = HstuConfig(
            name="h", batch=8, hidden_dim=64, num_layers=1, heads=2,
            mean_seq_len=16, max_seq_len=64, num_tables=2,
            rows_per_table=1000, embed_dim=32,
        )
        graph = build_hstu(config)
        assert hstu_flops_per_request(graph, 8) == pytest.approx(
            graph.total_flops() / 8
        )

    def test_seed_reproducible_lengths(self):
        config = HstuConfig(
            name="h", batch=32, hidden_dim=64, num_layers=1, heads=2,
            mean_seq_len=50, max_seq_len=200, num_tables=2,
            rows_per_table=1000, embed_dim=32, seed=9,
        )
        assert config.sample_seq_lengths() == config.sample_seq_lengths()


class TestExecutorOptions:
    def test_host_input_fraction_scales_host_traffic(self):
        import dataclasses as dc

        from repro.models.dlrm import build_dlrm, small_dlrm

        graph_full = build_dlrm(dc.replace(small_dlrm(), batch=1024))
        graph_half = build_dlrm(dc.replace(small_dlrm(), batch=1024))
        chip = mtia2i_spec()
        full = Executor(chip, host_input_fraction=1.0).run(graph_full, 1024)
        half = Executor(chip, host_input_fraction=0.5).run(graph_half, 1024)
        host_full = sum(p.host_s for p in full.op_profiles)
        host_half = sum(p.host_s for p in half.op_profiles)
        assert host_half == pytest.approx(host_full / 2, rel=0.01)

    def test_warmup_validation(self):
        import dataclasses as dc

        from repro.models.dlrm import build_dlrm, small_dlrm

        graph = build_dlrm(dc.replace(small_dlrm(), batch=128))
        with pytest.raises(ValueError):
            Executor(mtia2i_spec()).run(graph, 128, warmup_runs=-1)


class TestCoalescingTunerFast:
    def test_tiny_sweep_returns_best(self):
        profile = ModelJobProfile(
            remote_time_s=0.001, merge_time_s=0.002, remote_jobs_per_batch=1,
            dispatch_overhead_s=0.0002,
        )
        result = tune_coalescing(
            profile,
            max_batch_samples=256,
            windows_s=(0.005, 0.020),
            parallel_windows=(2,),
            duration_s=5.0,
        )
        assert len(result.candidates) == 2
        assert result.best.outcome.served_samples_per_s == max(
            c.outcome.served_samples_per_s for c in result.candidates
        )
