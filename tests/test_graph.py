"""Tests for the op-graph IR: ops, graph structure, liveness."""

import pytest

from repro.graph import (
    GraphError,
    OpGraph,
    broadcast,
    cast,
    concat,
    dequantize,
    elementwise,
    fc,
    fused,
    hstu_attention,
    interaction,
    layernorm,
    mha,
    quantize,
    reshape,
    softmax,
    tbe,
    transpose,
)
from repro.tensors import DType, activation, embedding_table, model_input, weight


def _simple_graph():
    """input -> fc -> relu -> fc -> out"""
    x = model_input(64, 128, name="x")
    g = OpGraph(name="simple")
    f1 = g.add(fc(x, weight(128, 256, name="w1"), name="fc1"))
    r1 = g.add(elementwise([f1.output], function="relu", name="relu1"))
    g.add(fc(r1.output, weight(256, 8, name="w2"), name="fc2"))
    return g


class TestOps:
    def test_fc_output_shape(self):
        op = fc(model_input(4, 8), weight(8, 16))
        assert op.output.shape == (4, 16)

    def test_fc_shape_mismatch(self):
        with pytest.raises(ValueError):
            fc(model_input(4, 8), weight(9, 16))

    def test_fc_flops(self):
        op = fc(model_input(4, 8), weight(8, 16))
        assert op.flops() == 2 * 4 * 8 * 16

    def test_tbe_pooled_output(self):
        tables = [embedding_table(100, 16) for _ in range(4)]
        op = tbe(tables, batch=8, avg_indices_per_lookup=5)
        assert op.output.shape == (8, 64)
        assert op.attrs["total_rows"] == 8 * 4 * 5

    def test_tbe_sequence_output(self):
        tables = [embedding_table(100, 16)]
        op = tbe(tables, batch=8, avg_indices_per_lookup=5, sequence=True)
        assert op.output.shape == (40, 16)

    def test_tbe_weighted_doubles_flops(self):
        tables = [embedding_table(100, 16)]
        plain = tbe(tables, batch=8, avg_indices_per_lookup=5)
        tables2 = [embedding_table(100, 16)]
        weighted = tbe(tables2, batch=8, avg_indices_per_lookup=5, weighted=True)
        assert weighted.flops() == 2 * plain.flops()

    def test_tbe_dim_mismatch(self):
        with pytest.raises(ValueError):
            tbe([embedding_table(10, 8), embedding_table(10, 16)], 4, 2.0)

    def test_layernorm_softmax_attrs(self):
        x = model_input(32, 64)
        ln = layernorm(x)
        assert ln.attrs == {"rows": 32, "cols": 64}
        sm = softmax(x)
        assert sm.flops() < ln.flops()  # 5 passes vs 8 flops/element

    def test_mha_flops_quadratic_in_seq(self):
        x = model_input(256, 512)
        short = mha(x, heads=4, head_dim=32, seq_len=16, batch=16)
        long = mha(x, heads=4, head_dim=32, seq_len=32, batch=16)
        assert long.flops() == 4 * short.flops()

    def test_hstu_flops_sum_over_lengths(self):
        x = model_input(100, 64)
        op = hstu_attention(x, seq_lengths=[10, 20], heads=2, head_dim=16)
        single = hstu_attention(x, seq_lengths=[10], heads=2, head_dim=16)
        assert op.flops() > single.flops()

    def test_transpose_reshape(self):
        x = model_input(4, 6)
        assert transpose(x).output.shape == (6, 4)
        assert reshape(x, (3, 8)).output.shape == (3, 8)
        with pytest.raises(ValueError):
            reshape(x, (5, 5))

    def test_concat(self):
        a, b = model_input(4, 6), model_input(4, 2)
        assert concat([a, b], axis=1).output.shape == (4, 8)

    def test_broadcast(self):
        op = broadcast(model_input(8, 16), factor=4)
        assert op.output.shape == (32, 16)
        with pytest.raises(ValueError):
            broadcast(model_input(8, 16), factor=0)

    def test_quantize_dequantize_dtypes(self):
        x = model_input(8, 16, dtype=DType.FP16)
        q = quantize(x)
        assert q.output.dtype is DType.INT8
        d = dequantize(q.output)
        assert d.output.dtype is DType.FP16

    def test_cast(self):
        x = model_input(8, 16, dtype=DType.FP32)
        assert cast(x, DType.FP16).output.dtype is DType.FP16

    def test_interaction_output(self):
        op = interaction(model_input(8, 64), batch=8, num_features=4, dim=16)
        assert op.output.shape == (8, 6)  # 4 choose 2

    def test_fused_inputs_outputs(self):
        x = model_input(4, 8)
        w1 = weight(8, 8)
        f1 = fc(x, w1, name="a")
        r1 = elementwise([f1.output], name="r")
        combo = fused([f1, r1], name="combo")
        # External inputs: x and w1; output: r1's output.
        assert {t.uid for t in combo.inputs} == {x.uid, w1.uid}
        assert combo.outputs[0].uid == r1.output.uid

    def test_fused_flops_sum(self):
        x = model_input(4, 8)
        f1 = fc(x, weight(8, 8))
        r1 = elementwise([f1.output])
        combo = fused([f1, r1])
        assert combo.flops() == f1.flops() + r1.flops()

    def test_weight_inputs_classification(self):
        op = fc(model_input(4, 8), weight(8, 16))
        assert len(op.weight_inputs()) == 1
        assert len(op.activation_inputs()) == 1


class TestGraph:
    def test_structure_queries(self):
        g = _simple_graph()
        assert len(g) == 3
        assert len(g.graph_inputs()) == 1
        assert len(g.graph_outputs()) == 1
        assert len(g.weights()) == 2

    def test_weight_bytes(self):
        g = _simple_graph()
        assert g.weight_bytes() == (128 * 256 + 256 * 8) * 2

    def test_total_flops(self):
        g = _simple_graph()
        expected = 2 * 64 * 128 * 256 + 64 * 256 + 2 * 64 * 256 * 8
        assert g.total_flops() == expected

    def test_flops_per_sample(self):
        g = _simple_graph()
        assert g.flops_per_sample(64) == g.total_flops() / 64
        with pytest.raises(ValueError):
            g.flops_per_sample(0)

    def test_producer_consumer(self):
        g = _simple_graph()
        fc1 = g.ops[0]
        relu = g.ops[1]
        assert g.producer_of(relu.inputs[0]) is fc1
        assert g.consumers_of(fc1.output) == [relu]

    def test_missing_producer_rejected(self):
        dangling = activation(4, 4)
        g = OpGraph()
        with pytest.raises(GraphError):
            g.add(elementwise([dangling]))

    def test_double_production_rejected(self):
        x = model_input(4, 4)
        op = elementwise([x])
        g = OpGraph([op])
        with pytest.raises(GraphError):
            g.add(op)

    def test_validate_schedule(self):
        g = _simple_graph()
        g.validate_schedule()
        bad = OpGraph(name="bad")
        bad.ops = [g.ops[1], g.ops[0], g.ops[2]]
        bad._producer = g._producer
        with pytest.raises(GraphError):
            bad.validate_schedule()

    def test_reordered_requires_permutation(self):
        g = _simple_graph()
        with pytest.raises(GraphError):
            g.reordered(g.ops[:2])

    def test_liveness_ranges(self):
        g = _simple_graph()
        ranges = {live.tensor.uid: live for live in g.liveness()}
        fc1_out = g.ops[0].output
        # Produced at step 0, last used at step 1.
        assert ranges[fc1_out.uid].start == 0
        assert ranges[fc1_out.uid].end == 1

    def test_peak_activation_bytes(self):
        g = _simple_graph()
        # At step 1 (relu): fc1 output (64x256) + relu output live together,
        # plus the graph input.
        peak = g.peak_activation_bytes()
        assert peak >= 2 * 64 * 256 * 2

    def test_buffer_requests_match_liveness(self):
        g = _simple_graph()
        requests = g.activation_buffer_requests()
        assert len(requests) == len(g.liveness())

    def test_embedding_bytes(self):
        tables = [embedding_table(1000, 64, name=f"t{i}") for i in range(3)]
        g = OpGraph()
        g.add(tbe(tables, batch=4, avg_indices_per_lookup=2))
        assert g.embedding_bytes() == 3 * 1000 * 64 * 2
        assert g.embedding_bytes() == g.weight_bytes()

    def test_summary_lists_ops(self):
        text = _simple_graph().summary()
        assert "fc1" in text and "relu1" in text and "fc2" in text
