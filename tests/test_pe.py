"""Tests for the PE engine models: DPE, SIMD, RISC-V issue, RE, MLU, CP,
FI, and the work-queue engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia1_spec, mtia2i_spec
from repro.pe import (
    CircularBuffer,
    CircularBufferError,
    DmaConfig,
    DpeConfig,
    MluConfig,
    PipelineStage,
    ReductionConfig,
    RiscvVectorConfig,
    accumulate_time,
    cross_pe_reduce_time,
    dma_time,
    dpe_compute_time,
    eager_launch_timeline,
    eager_viable,
    elementwise_time,
    fused_transpose_savings,
    gemm_issue,
    launch_reduction,
    lut_approximation,
    lut_gather_time,
    mtia2i_simd_config,
    overlapped_load_time,
    pipeline_time,
    reshape_time,
    rowwise_minmax,
    simulate_pipeline,
    tbe_issue,
    tile_utilization,
    transpose_time,
    vector_kernel_issue,
    weight_cache_passes,
)
from repro.tensors import DType, GemmShape


class TestDpe:
    def test_peak_matches_table2(self):
        """Per-PE peaks x 64 PEs reproduce Table 2's chip-wide numbers."""
        config = DpeConfig()
        assert 64 * config.peak_flops(DType.FP16) == pytest.approx(177e12, rel=0.01)
        assert 64 * config.peak_flops(DType.INT8) == pytest.approx(354e12, rel=0.01)

    def test_int8_macs_double_fp16(self):
        config = DpeConfig()
        assert config.macs_per_cycle(DType.INT8) == 2 * config.macs_per_cycle(DType.FP16)

    def test_full_tiles_full_utilization(self):
        assert tile_utilization(GemmShape(256, 2048, 256), DpeConfig(), DType.FP16) == 1.0

    def test_partial_tiles_waste_lanes(self):
        util = tile_utilization(GemmShape(16, 2048, 16), DpeConfig(), DType.FP16)
        assert util == pytest.approx(0.25)

    def test_compute_time_scales_with_flops(self):
        config = DpeConfig()
        t1 = dpe_compute_time(GemmShape(256, 1024, 256), config, DType.FP16)
        t2 = dpe_compute_time(GemmShape(256, 2048, 256), config, DType.FP16)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_sparsity_halves_time(self):
        config = DpeConfig()
        shape = GemmShape(256, 2048, 256)
        dense = dpe_compute_time(shape, config, DType.FP16)
        sparse = dpe_compute_time(shape, config, DType.FP16, sparse=True)
        assert sparse == pytest.approx(dense / 2)

    def test_sparsity_unsupported_raises(self):
        config = DpeConfig(sparsity_supported=False)
        with pytest.raises(ValueError):
            dpe_compute_time(GemmShape(32, 32, 32), config, DType.FP16, sparse=True)

    def test_weight_cache_passes(self):
        config = DpeConfig()
        small = weight_cache_passes(GemmShape(256, 512, 256), config, DType.FP16)
        large = weight_cache_passes(GemmShape(256, 32768, 256), config, DType.FP16)
        assert small == 1
        assert large > 1


class TestSimd:
    def test_chipwide_rate_matches_table2(self):
        config = mtia2i_simd_config()
        assert 64 * config.elements_per_s(DType.FP16) == pytest.approx(5.5e12, rel=0.01)

    def test_elementwise_time(self):
        config = mtia2i_simd_config()
        t = elementwise_time(86_400_000, config, DType.FP16)
        assert t == pytest.approx(86_400_000 / (64 * 1.35e9), rel=0.01)

    def test_lut_gather_piecewise_scales_with_table(self):
        config = mtia2i_simd_config()
        small = lut_gather_time(10_000, 4 * 1024, config, DType.FP16)
        large = lut_gather_time(10_000, 4 * 1024 * 1024, config, DType.FP16)
        assert large > small * 10

    def test_lut_approximation_accuracy(self):
        x = np.linspace(-4, 4, 1000)
        approx = lut_approximation("sigmoid", x)
        exact = 1 / (1 + np.exp(-x))
        assert np.max(np.abs(approx - exact)) < 1e-3

    def test_lut_all_functions_finite(self):
        x = np.linspace(-6, 6, 100)
        for fn in ("exp", "sigmoid", "tanh", "gelu", "rsqrt", "log", "reciprocal"):
            assert np.all(np.isfinite(lut_approximation(fn, x)))

    def test_lut_unknown_function(self):
        with pytest.raises(ValueError):
            lut_approximation("sinc", np.zeros(3))


class TestIssue:
    def test_advanced_instructions_cut_gemm_issue(self):
        """Section 3.3: multi-context + auto-increment fix the issue
        bottleneck."""
        chip = mtia2i_spec()
        shape = GemmShape(256, 2048, 256)
        fast = gemm_issue(shape, chip.issue, DType.FP16, use_advanced_instructions=True)
        slow = gemm_issue(shape, chip.issue, DType.FP16, use_advanced_instructions=False)
        assert slow.instructions > 8 * fast.instructions

    def test_mtia1_issues_slower(self):
        shape = GemmShape(256, 2048, 256)
        new = gemm_issue(shape, mtia2i_spec().issue, DType.FP16)
        old = gemm_issue(shape, mtia1_spec().issue, DType.FP16)
        assert old.issue_time_s > new.issue_time_s

    def test_tbe_indexed_dma_helps(self):
        """Indexed DMA_IN removes per-row address computation."""
        new = tbe_issue(10_000, mtia2i_spec().issue)
        old = tbe_issue(10_000, mtia1_spec().issue)
        assert old.instructions > 4 * new.instructions

    def test_tbe_wide_accumulate_helps(self):
        """128-row accumulation (vs 32) cuts SIMD instructions 4x."""
        issue = mtia2i_spec().issue
        wide = tbe_issue(12_800, issue, use_advanced_instructions=True)
        narrow = tbe_issue(12_800, issue, use_advanced_instructions=False)
        assert narrow.instructions > wide.instructions

    def test_vector_kernel_issue(self):
        est = vector_kernel_issue(1024, mtia2i_spec().issue, ops_per_instruction=16)
        assert est.instructions == pytest.approx(64)

    def test_vector_config_lanes(self):
        config = RiscvVectorConfig()
        assert config.elements_per_s(DType.FP16) == 32 * 1.35e9
        assert config.elements_per_s(DType.FP32) == 16 * 1.35e9


class TestReduction:
    def test_accumulate_time(self):
        config = ReductionConfig()
        assert accumulate_time(32 * 1000, config) == pytest.approx(
            1000 / config.frequency_hz
        )

    def test_cross_pe_reduce_scales_with_hops(self):
        config = ReductionConfig()
        short = cross_pe_reduce_time(1024, 4, num_pes=2, config=config)
        long = cross_pe_reduce_time(1024, 4, num_pes=8, config=config)
        assert long > short

    def test_rowwise_minmax(self):
        m = np.array([[1.0, -5.0, 3.0], [0.0, 2.0, 2.0]])
        lo, hi = rowwise_minmax(m)
        np.testing.assert_array_equal(lo, [-5.0, 0.0])
        np.testing.assert_array_equal(hi, [3.0, 2.0])

    def test_rowwise_minmax_rejects_1d(self):
        with pytest.raises(ValueError):
            rowwise_minmax(np.zeros(5))


class TestMlu:
    def test_transpose_slower_than_reshape(self):
        config = MluConfig()
        assert transpose_time(1 << 20, config) > reshape_time(1 << 20, config)

    def test_fused_transpose_saves(self):
        """Section 6: replacing Slice/Reshape/Concat with one transpose."""
        config = MluConfig()
        saved = fused_transpose_savings(1 << 20, num_fused_ops=3, config=config)
        assert saved > 0


class TestCommandProcessor:
    def test_circular_buffer_fifo(self):
        cb = CircularBuffer("cb", num_slots=2, slot_bytes=1024)
        cb.push("x")
        cb.push("y")
        assert cb.pop() == "x"
        assert cb.pop() == "y"

    def test_overflow_underflow(self):
        cb = CircularBuffer("cb", num_slots=1, slot_bytes=1024)
        cb.push(1)
        with pytest.raises(CircularBufferError):
            cb.push(2)
        cb.pop()
        with pytest.raises(CircularBufferError):
            cb.pop()

    def test_occupancy_tracking(self):
        cb = CircularBuffer("cb", num_slots=4, slot_bytes=128)
        for i in range(3):
            cb.push(i)
        assert cb.max_occupancy == 3
        assert cb.footprint_bytes == 4 * 128

    def test_pipeline_law(self):
        stages = [PipelineStage("a", 1.0), PipelineStage("b", 3.0), PipelineStage("c", 1.0)]
        # fill (5) + 9 more tiles at the 3.0 bottleneck.
        assert pipeline_time(stages, 10) == pytest.approx(5 + 9 * 3)

    def test_pipeline_empty(self):
        assert pipeline_time([], 10) == 0.0
        assert pipeline_time([PipelineStage("a", 1.0)], 0) == 0.0

    def test_simulation_matches_law_with_big_buffers(self):
        stages = [PipelineStage("a", 1.0), PipelineStage("b", 3.0), PipelineStage("c", 1.0)]
        assert simulate_pipeline(stages, 10, cb_slots=64) == pytest.approx(
            pipeline_time(stages, 10)
        )

    def test_small_buffers_serialize(self):
        """Undersized CBs let a fast producer stall — makespan grows."""
        stages = [PipelineStage("slow", 3.0), PipelineStage("fast", 1.0),
                  PipelineStage("slow2", 3.0)]
        tight = simulate_pipeline(stages, 20, cb_slots=1)
        roomy = simulate_pipeline(stages, 20, cb_slots=16)
        assert tight >= roomy


@given(
    times=st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=5),
    tiles=st.integers(min_value=1, max_value=30),
    slots=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_pipeline_simulation_bounds(times, tiles, slots):
    """Property: the finite-buffer makespan is at least the infinite-buffer
    pipeline law and at most fully serial execution."""
    stages = [PipelineStage(f"s{i}", t) for i, t in enumerate(times)]
    sim = simulate_pipeline(stages, tiles, cb_slots=slots)
    law = pipeline_time(stages, tiles)
    serial = tiles * sum(times)
    assert sim >= law - 1e-9
    assert sim <= serial + 1e-9


class TestDma:
    def test_dma_time(self):
        config = DmaConfig(bandwidth_bytes_per_s=64e9, setup_latency_s=1e-6)
        assert dma_time(64e9, config) == pytest.approx(1.0 + 1e-6)

    def test_transfer_count_adds_setup(self):
        config = DmaConfig(setup_latency_s=1e-6)
        assert dma_time(0, config, num_transfers=10) == pytest.approx(1e-5)

    def test_prefetch_hides_load(self):
        hidden = overlapped_load_time(10e-3, 8e-3, prefetch=True)
        exposed = overlapped_load_time(10e-3, 8e-3, prefetch=False)
        assert hidden < exposed
        assert hidden >= 10e-3

    def test_prefetch_cannot_hide_more_than_compute(self):
        t = overlapped_load_time(1e-3, 100e-3, prefetch=True)
        assert t == pytest.approx(1e-3 + 100e-3 - 1e-3 * 0.95)


class TestEagerMode:
    def test_mtia2i_launch_under_1us(self):
        chip = mtia2i_spec()
        assert chip.eager.job_launch_s < 1e-6
        assert chip.eager.job_replace_s < 0.5e-6

    def test_launch_reduction_about_80_percent(self):
        reduction = launch_reduction(mtia2i_spec().eager, mtia1_spec().eager)
        assert 0.75 <= reduction <= 0.85

    def test_timeline_broadcast_uses_replace(self):
        chip = mtia2i_spec()
        timeline = eager_launch_timeline([1e-5] * 10, chip.eager)
        expected = chip.eager.job_launch_s + 9 * chip.eager.job_replace_s
        assert timeline.launch_overhead_s == pytest.approx(expected)

    def test_timeline_without_broadcast_pays_full_launch(self):
        chip = mtia1_spec()
        timeline = eager_launch_timeline([1e-5] * 10, chip.eager)
        assert timeline.launch_overhead_s == pytest.approx(10 * chip.eager.job_launch_s)

    def test_eager_viability(self):
        chip2i, chip1 = mtia2i_spec(), mtia1_spec()
        # For 10 us median ops, MTIA 2i keeps overhead under 10%; MTIA 1
        # does not.
        assert eager_viable(chip2i, 10e-6)
        assert not eager_viable(chip1, 10e-6)

    def test_empty_timeline(self):
        timeline = eager_launch_timeline([], mtia2i_spec().eager)
        assert timeline.total_time_s == 0.0
