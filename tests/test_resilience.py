"""Tests for the fleet resilience simulator (section 5.5 closed loop)."""

import json

import pytest

from repro.reliability import emergency_rollout, typical_rollout
from repro.resilience import (
    Device,
    DeviceState,
    DrainPolicy,
    Event,
    EventKind,
    EventLog,
    FaultRates,
    HedgePolicy,
    LoadShedPolicy,
    ResilienceConfig,
    ResiliencePolicies,
    RetryPolicy,
    RolloutPolicy,
    TransitionError,
    evaluate_interval,
    fault_rates_from_reliability,
    presample_fault_arrivals,
    run_resilience,
    run_section_55_drill,
    to_resilience_trace,
    write_resilience_trace,
)
from repro.resilience.scenario import section_55_policies
from repro.units import GHZ

import numpy as np


# ---------------------------------------------------------------------------
# Device lifecycle state machine
# ---------------------------------------------------------------------------


class TestDeviceLifecycle:
    def test_full_cycle(self):
        device = Device(device_id=0)
        device.transition(DeviceState.WEDGED, 10.0)
        device.transition(DeviceState.DRAINING, 20.0)
        device.transition(DeviceState.REBOOTING, 25.0)
        device.transition(DeviceState.HEALTHY, 625.0)
        device.finalize(1000.0)
        assert device.state == DeviceState.HEALTHY
        assert device.state_seconds[DeviceState.WEDGED] == pytest.approx(10.0)
        assert device.state_seconds[DeviceState.DRAINING] == pytest.approx(5.0)
        assert device.state_seconds[DeviceState.REBOOTING] == pytest.approx(600.0)
        # Downtime = wedged + draining + rebooting.
        assert device.downtime_seconds() == pytest.approx(615.0)

    def test_illegal_transitions_raise(self):
        device = Device(device_id=0)
        with pytest.raises(TransitionError):
            device.transition(DeviceState.DRAINING, 1.0)  # healthy can't drain
        device.transition(DeviceState.WEDGED, 1.0)
        with pytest.raises(TransitionError):
            device.transition(DeviceState.HEALTHY, 2.0)  # wedge needs a reboot
        with pytest.raises(TransitionError):
            device.transition(DeviceState.DEGRADED, 2.0)

    def test_rotation_vs_serving(self):
        device = Device(device_id=0)
        assert device.in_rotation and device.serving
        device.transition(DeviceState.WEDGED, 0.0)
        # The crux of section 5.5: silently dead but still routed to.
        assert device.in_rotation and not device.serving
        assert device.throughput_scale == 0.0
        device.transition(DeviceState.DRAINING, 1.0)
        assert not device.in_rotation

    def test_degraded_scale(self):
        device = Device(device_id=0, degraded_scale=0.5)
        device.transition(DeviceState.DEGRADED, 0.0)
        assert device.throughput_scale == 0.5
        assert device.serving

    def test_health_checks(self):
        device = Device(device_id=0)
        assert device.health_check()
        device.transition(DeviceState.WEDGED, 0.0)
        assert not device.health_check()
        assert not device.health_check()
        assert device.consecutive_health_failures == 2

    def test_patched_immunity(self):
        device = Device(device_id=0)
        assert device.susceptible_to_deadlock
        device.patched = True
        assert not device.susceptible_to_deadlock


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_ordering_enforced(self):
        log = EventLog()
        log.append(Event(time_s=5.0, kind=EventKind.FAULT_DEADLOCK, device_id=1))
        with pytest.raises(ValueError):
            log.append(Event(time_s=1.0, kind=EventKind.REBOOT_DONE, device_id=1))

    def test_filters(self):
        log = EventLog()
        log.append(Event(time_s=1.0, kind=EventKind.FAULT_DEADLOCK, device_id=1))
        log.append(Event(time_s=2.0, kind=EventKind.FAULT_SDC, device_id=2))
        log.append(Event(time_s=3.0, kind=EventKind.FAULT_DEADLOCK, device_id=2))
        assert len(log.of_kind(EventKind.FAULT_DEADLOCK)) == 2
        assert len(log.for_device(2)) == 2
        assert log.first_of_kind(EventKind.FAULT_SDC).time_s == 2.0
        assert log.first_of_kind(EventKind.ROLLOUT_DONE) is None

    def test_jsonable_and_timeline(self):
        log = EventLog()
        log.append(Event(time_s=7200.0, kind=EventKind.SLO_AT_RISK,
                         detail={"wedged": 17.0}))
        plain = log.to_jsonable()
        assert plain == [{"time_s": 7200.0, "kind": "slo_at_risk",
                          "device_id": None, "detail": {"wedged": 17.0}}]
        assert "slo_at_risk" in log.timeline()
        assert "t=    2.00h" in log.timeline()


# ---------------------------------------------------------------------------
# Fault rates from the reliability models
# ---------------------------------------------------------------------------


class TestFaultRates:
    def test_rates_from_reliability_models(self):
        rates = fault_rates_from_reliability()
        # The firmware model's incidence lands in the paper's ~0.1%/day band.
        assert 0.0005 < rates.deadlock_per_device_hour * 24 < 0.005
        assert rates.ecc_ue_per_device_hour > 0
        assert rates.sdc_per_device_hour > 0

    def test_mitigated_firmware_kills_deadlocks(self):
        rates = fault_rates_from_reliability(mitigated=True)
        assert rates.deadlock_per_device_hour == 0.0

    def test_design_frequency_has_no_sdc_tail(self):
        rates = fault_rates_from_reliability(operating_frequency_hz=1.1 * GHZ)
        assert rates.sdc_per_device_hour == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRates(-1, 0, 0, 0)
        with pytest.raises(ValueError):
            fault_rates_from_reliability(deadlock_fraction_per_day=2.0)

    def test_presample_sorted_bounded_deterministic(self):
        rates = FaultRates(0.05, 0.01, 0.0, 0.02)
        first = presample_fault_arrivals(rates, 20, 3600.0, np.random.default_rng(4))
        again = presample_fault_arrivals(rates, 20, 3600.0, np.random.default_rng(4))
        assert first == again
        for family, arrivals in first.items():
            assert arrivals == sorted(arrivals)
            assert all(0 <= t < 3600.0 for t, _ in arrivals)
        assert first["sdc"] == []  # zero rate -> no arrivals


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_backoff_grows_and_caps(self):
        retry = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                            backoff_cap_s=0.5, jitter_fraction=0.0)
        assert retry.backoff_s(1) == pytest.approx(0.1)
        assert retry.backoff_s(2) == pytest.approx(0.2)
        assert retry.backoff_s(4) == pytest.approx(0.5)  # capped
        assert retry.backoff_s(10) == pytest.approx(0.5)

    def test_backoff_jitter_bounded(self):
        retry = RetryPolicy(backoff_base_s=0.1, jitter_fraction=0.5)
        rng = np.random.default_rng(0)
        for attempt in (1, 2, 3):
            base = RetryPolicy(backoff_base_s=0.1, jitter_fraction=0.0).backoff_s(attempt)
            value = retry.backoff_s(attempt, rng)
            assert base * 0.5 <= value <= base

    def test_worst_case_added_latency(self):
        retry = RetryPolicy(timeout_s=1.0, backoff_base_s=0.1,
                            backoff_multiplier=2.0, jitter_fraction=0.0)
        # Two timeouts + two backoffs before the third attempt.
        assert retry.worst_case_added_latency_s(3) == pytest.approx(1.1 + 1.2)

    def test_drain_reboot_mttr(self):
        drain = DrainPolicy(reboot_mttr_s=600.0, reboot_sigma=0.3)
        rng = np.random.default_rng(1)
        samples = [drain.sample_reboot_s(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(600.0, rel=0.05)
        assert DrainPolicy(reboot_sigma=0.0).sample_reboot_s(rng) == 600.0
        assert drain.detection_latency_s() == pytest.approx(180.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            HedgePolicy(hedge_after_s=0)
        with pytest.raises(ValueError):
            DrainPolicy(failures_to_drain=0)
        with pytest.raises(ValueError):
            LoadShedPolicy(max_utilization=0)
        with pytest.raises(ValueError):
            RolloutPolicy(detection_delay_s=-1)

    def test_rollout_defaults_to_emergency_plan(self):
        policy = RolloutPolicy(enabled=True)
        assert policy.resolved_plan().max_concurrent_restart_fraction == (
            emergency_rollout().max_concurrent_restart_fraction
        )

    def test_bundles(self):
        none = ResiliencePolicies.none()
        assert none.retry is None and none.drain is None
        assert not none.rollout.enabled and not none.shed.enabled
        prod = ResiliencePolicies.production()
        assert prod.retry is not None and prod.drain is not None
        assert prod.rollout.enabled


class TestRolloutWaves:
    def test_waves_cover_fleet_under_cap(self):
        plan = emergency_rollout()
        waves = plan.restart_waves(300)
        assert sum(waves) == 300
        cap = plan.restart_wave_size(300)
        assert all(w <= cap for w in waves)
        assert waves[-1] <= cap

    def test_small_fleet_gets_single_device_waves(self):
        plan = typical_rollout()  # 2% concurrency
        assert plan.restart_wave_size(10) == 1
        assert plan.restart_waves(10) == [1] * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            emergency_rollout().restart_waves(0)


# ---------------------------------------------------------------------------
# Interval arithmetic
# ---------------------------------------------------------------------------


_PATHS = {
    DeviceState.HEALTHY: (),
    DeviceState.DEGRADED: (DeviceState.DEGRADED,),
    DeviceState.WEDGED: (DeviceState.WEDGED,),
    DeviceState.DRAINING: (DeviceState.WEDGED, DeviceState.DRAINING),
    DeviceState.REBOOTING: (
        DeviceState.WEDGED, DeviceState.DRAINING, DeviceState.REBOOTING,
    ),
}


def _pool(states, degraded_scale=0.6):
    devices = {}
    for i, state in enumerate(states):
        device = Device(device_id=i, degraded_scale=degraded_scale)
        for step in _PATHS[state]:
            device.transition(step, 0.0)
        devices[i] = device
    return devices


class TestEvaluateInterval:
    def _metrics(self, states, policies, offered=8_000.0, **kwargs):
        defaults = dict(
            now_s=0.0,
            devices=_pool(states),
            offered_samples_per_s=offered,
            device_throughput=1000.0,
            policies=policies,
            base_p50_s=0.02,
            base_p99_s=0.08,
            baseline_utilization=0.8,
        )
        defaults.update(kwargs)
        return evaluate_interval(**defaults)

    def test_healthy_pool(self):
        metrics = self._metrics([DeviceState.HEALTHY] * 10,
                                ResiliencePolicies.none())
        assert metrics.goodput_fraction == pytest.approx(1.0)
        assert metrics.retry_amplification == pytest.approx(1.0)
        assert metrics.failed_fraction == 0.0
        assert not metrics.slo_at_risk
        assert metrics.p99_latency_s == pytest.approx(0.08)

    def test_wedged_without_retry_loses_their_share(self):
        states = [DeviceState.HEALTHY] * 8 + [DeviceState.WEDGED] * 2
        metrics = self._metrics(states, ResiliencePolicies.none())
        assert metrics.failed_fraction == pytest.approx(0.2)
        assert metrics.goodput_fraction == pytest.approx(0.8)

    def test_retry_recovers_goodput_with_amplification(self):
        states = [DeviceState.HEALTHY] * 8 + [DeviceState.WEDGED] * 2
        policies = ResiliencePolicies(retry=RetryPolicy(max_attempts=3))
        # 6k offered leaves headroom on the 8 survivors for the retried load.
        metrics = self._metrics(states, policies, offered=6_000.0)
        assert metrics.failed_fraction == pytest.approx(0.2**3)
        assert metrics.goodput_fraction > 0.99
        assert metrics.retry_amplification == pytest.approx(1 + 0.2 + 0.04)
        # The retried tail pushes P99 past the timeout.
        assert metrics.p99_latency_s > policies.retry.timeout_s

    def test_retry_amplification_can_overload_survivors(self):
        # At exactly-full surviving capacity the retried load overflows:
        # goodput dips below the no-retry wedge share would suggest.
        states = [DeviceState.HEALTHY] * 8 + [DeviceState.WEDGED] * 2
        policies = ResiliencePolicies(retry=RetryPolicy(max_attempts=3))
        metrics = self._metrics(states, policies, offered=8_000.0)
        assert metrics.utilization >= 0.95
        assert metrics.goodput_fraction < 1.0
        assert metrics.slo_at_risk

    def test_hedging_trades_attempts_for_latency(self):
        states = [DeviceState.HEALTHY] * 8 + [DeviceState.WEDGED] * 2
        retry_only = self._metrics(states, ResiliencePolicies(retry=RetryPolicy()))
        hedged = self._metrics(
            states,
            ResiliencePolicies(retry=RetryPolicy(),
                               hedge=HedgePolicy(enabled=True)),
        )
        assert hedged.p99_latency_s < retry_only.p99_latency_s
        assert hedged.retry_amplification > retry_only.retry_amplification
        assert hedged.failed_fraction < retry_only.failed_fraction

    def test_load_shedding_caps_utilization(self):
        # 8k offered onto 4 healthy devices = 2x overload.
        states = [DeviceState.HEALTHY] * 4 + [DeviceState.DRAINING] * 6
        policies = ResiliencePolicies(shed=LoadShedPolicy(max_utilization=0.9))
        metrics = self._metrics(states, policies)
        assert metrics.shed_fraction > 0.5
        assert metrics.utilization == pytest.approx(0.9)
        assert metrics.slo_at_risk

    def test_overload_without_shedding_drops_excess(self):
        states = [DeviceState.HEALTHY] * 4 + [DeviceState.DRAINING] * 6
        metrics = self._metrics(states, ResiliencePolicies.none())
        assert metrics.shed_fraction == 0.0
        assert metrics.goodput_samples_per_s == pytest.approx(4000.0)

    def test_all_devices_down(self):
        states = [DeviceState.REBOOTING] * 4
        metrics = self._metrics(states, ResiliencePolicies.none())
        assert metrics.goodput_samples_per_s == 0.0
        assert metrics.slo_at_risk

    def test_degraded_devices_reduce_capacity(self):
        healthy = self._metrics([DeviceState.HEALTHY] * 10,
                                ResiliencePolicies.none())
        degraded = self._metrics(
            [DeviceState.HEALTHY] * 5 + [DeviceState.DEGRADED] * 5,
            ResiliencePolicies.none(),
        )
        assert degraded.capacity_samples_per_s < healthy.capacity_samples_per_s
        assert degraded.utilization > healthy.utilization


# ---------------------------------------------------------------------------
# The full simulator: the acceptance arc
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def drill():
    """One shared section 5.5 drill (both arms, default paper-rate knobs)."""
    return run_section_55_drill(seed=0)


class TestSection55Arc:
    def test_baseline_goodput_degrades_monotonically(self, drill):
        series = drill.baseline.goodput_series
        assert series[0] == pytest.approx(1.0)
        # Monotone within a tiny tolerance (SDC blips are ~1e-4).
        assert all(b <= a + 1e-3 for a, b in zip(series, series[1:]))
        assert drill.baseline.final_goodput_fraction < 0.95

    def test_baseline_slo_trips_within_window(self, drill):
        trip = drill.baseline.first_slo_trip_s
        assert trip is not None
        assert trip < drill.config.duration_s
        assert drill.baseline.events.first_of_kind(EventKind.SLO_AT_RISK) is not None

    def test_mitigated_recovers_to_99_percent(self, drill):
        assert drill.recovered
        assert drill.mitigated.final_goodput_fraction >= 0.99

    def test_rollout_honors_concurrency_and_completes(self, drill):
        events = drill.mitigated.events
        assert events.first_of_kind(EventKind.ROLLOUT_TRIGGERED) is not None
        done = events.first_of_kind(EventKind.ROLLOUT_DONE)
        assert done is not None
        plan = emergency_rollout()
        cap = plan.restart_wave_size(drill.config.devices)
        waves = events.of_kind(EventKind.ROLLOUT_WAVE)
        assert waves and all(e.detail["devices"] <= cap for e in waves)
        # Every device got patched.
        assert len(events.of_kind(EventKind.DEVICE_PATCHED)) == drill.config.devices
        # Wall time in the emergency-rollout ballpark (paper: ~3 h).
        trigger = events.first_of_kind(EventKind.ROLLOUT_TRIGGERED)
        assert (done.time_s - trigger.time_s) / 3600.0 < 6.0

    def test_no_deadlocks_after_fleet_patched(self, drill):
        done = drill.mitigated.events.first_of_kind(EventKind.ROLLOUT_DONE)
        late = [
            e for e in drill.mitigated.events.of_kind(EventKind.FAULT_DEADLOCK)
            if e.time_s > done.time_s
        ]
        assert late == []

    def test_retry_amplification_visible_before_rollout(self, drill):
        assert drill.mitigated.peak_retry_amplification > 1.01

    def test_mitigation_cuts_unavailability(self, drill):
        assert (
            drill.mitigated.unavailability_device_minutes
            < 0.5 * drill.baseline.unavailability_device_minutes
        )

    def test_same_seed_identical_event_logs(self, drill):
        again = run_section_55_drill(seed=0)
        assert (
            again.baseline.events.to_jsonable()
            == drill.baseline.events.to_jsonable()
        )
        assert (
            again.mitigated.events.to_jsonable()
            == drill.mitigated.events.to_jsonable()
        )

    def test_different_seed_different_schedule(self, drill):
        other = run_section_55_drill(seed=1, duration_days=30)
        assert (
            other.baseline.events.to_jsonable()
            != drill.baseline.events.to_jsonable()
        )

    def test_summary_mentions_the_arc(self, drill):
        text = drill.summary()
        assert "slo_at_risk" in text
        assert "rollout" in text
        assert "recovered" in text


class TestDrainPath:
    """Health-check drain/quarantine with MTTR reboots (production bundle)."""

    def _run(self):
        rates = FaultRates(
            deadlock_per_device_hour=0.02,
            ecc_ue_per_device_hour=0.0,
            sdc_per_device_hour=0.0,
            throttle_per_device_hour=0.0,
        )
        config = ResilienceConfig(
            devices=40,
            device_throughput=1000.0,
            offered_load=28_000.0,
            duration_s=86_400.0,
            metrics_interval_s=600.0,
            seed=11,
        )
        return run_resilience(config, rates, ResiliencePolicies.production())

    def test_wedged_devices_get_drained_and_rebooted(self):
        report = self._run()
        wedges = report.events.of_kind(EventKind.FAULT_DEADLOCK)
        drains = report.events.of_kind(EventKind.DRAIN_START)
        reboots = report.events.of_kind(EventKind.REBOOT_DONE)
        assert wedges, "fault schedule should produce deadlocks"
        assert len(drains) == len(wedges)
        assert len(reboots) >= len(drains)
        # Detection latency: drain happens after the configured number of
        # failed health checks, not instantly.
        drain_policy = DrainPolicy()
        first_wedge = wedges[0]
        first_drain = next(
            e for e in drains if e.device_id == first_wedge.device_id
        )
        assert first_drain.time_s - first_wedge.time_s == pytest.approx(
            drain_policy.detection_latency_s(), abs=1.0
        )

    def test_drain_keeps_goodput_high(self):
        report = self._run()
        assert report.min_goodput_fraction > 0.95
        assert report.final_goodput_fraction > 0.99

    def test_throttle_episodes_recover(self):
        rates = FaultRates(0.0, 0.0, 0.0, 0.2, throttle_duration_s=1200.0)
        config = ResilienceConfig(
            devices=20, offered_load=12_000.0, duration_s=6 * 3600.0,
            metrics_interval_s=300.0, seed=2,
        )
        report = run_resilience(config, rates, ResiliencePolicies.production())
        throttles = report.events.of_kind(EventKind.FAULT_THROTTLE)
        ends = report.events.of_kind(EventKind.DEGRADE_END)
        assert throttles
        assert ends, "throttled devices must come back"
        # No device may end the window still degraded forever.
        assert report.intervals[-1].degraded <= len(throttles)


# ---------------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------------


class TestResilienceTrace:
    def _report(self):
        rates = FaultRates(0.05, 0.0, 0.01, 0.05)
        config = ResilienceConfig(
            devices=12, offered_load=8_000.0, duration_s=6 * 3600.0,
            metrics_interval_s=600.0, seed=5,
        )
        return run_resilience(config, rates, ResiliencePolicies.production())

    def test_trace_structure(self):
        report = self._report()
        doc = to_resilience_trace(report)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "C"} <= phases
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans and all(e["dur"] >= 0 for e in spans)
        assert doc["otherData"]["devices"] == 12
        counters = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert {"goodput_fraction", "wedged_devices", "p99_latency_ms"} <= counters

    def test_trace_written_to_disk(self, tmp_path):
        report = self._report()
        path = tmp_path / "resilience.json"
        write_resilience_trace(report, str(path))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


# ---------------------------------------------------------------------------
# Config validation and the scenario helper
# ---------------------------------------------------------------------------


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(devices=0)
        with pytest.raises(ValueError):
            ResilienceConfig(duration_s=0)
        with pytest.raises(ValueError):
            ResilienceConfig(base_p50_s=0.1, base_p99_s=0.05)
        with pytest.raises(ValueError):
            run_section_55_drill(utilization=1.5)

    def test_baseline_utilization(self):
        config = ResilienceConfig(devices=10, device_throughput=100.0,
                                  offered_load=850.0)
        assert config.baseline_utilization == pytest.approx(0.85)

    def test_policies_helper_matches_paper_story(self):
        policies = section_55_policies()
        assert policies.drain is None  # the wedge needs the rollout
        assert policies.rollout.enabled
        assert policies.retry is not None
