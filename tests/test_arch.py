"""Tests for chip and server specifications (Table 2, section 3.4)."""

import pytest

from repro.arch import (
    describe_chip,
    describe_pe,
    describe_software_stack,
    gpu_server,
    gpu_spec,
    grand_teton_socket,
    mtia1_spec,
    mtia2i_spec,
    mtia2i_server,
    spec_ratio,
)
from repro.arch.specs import GemmEngineSpec, IssueSpec, MemoryLevelSpec
from repro.tensors import DType
from repro.units import GB, GiB, KiB, MiB, TB


class TestTable2Values:
    """Every headline spec number from Table 2."""

    def setup_method(self):
        self.chip = mtia2i_spec(ecc_enabled=False)
        self.old = mtia1_spec()

    def test_mtia2i_frequency(self):
        assert self.chip.frequency_hz == pytest.approx(1.35e9)
        assert self.chip.design_frequency_hz == pytest.approx(1.1e9)

    def test_mtia2i_gemm_peaks(self):
        assert self.chip.peak_gemm_flops(DType.INT8) == pytest.approx(354e12)
        assert self.chip.peak_gemm_flops(DType.FP16) == pytest.approx(177e12)
        assert self.chip.peak_gemm_flops(DType.BF16) == pytest.approx(177e12)

    def test_mtia2i_sparsity_doubles(self):
        assert self.chip.peak_gemm_flops(DType.INT8, sparse=True) == pytest.approx(708e12)
        assert self.chip.peak_gemm_flops(DType.FP16, sparse=True) == pytest.approx(354e12)

    def test_mtia1_has_no_sparsity(self):
        assert self.old.gemm.sparsity_speedup == 1.0

    def test_memory_capacities(self):
        assert self.chip.local_memory.capacity_bytes == 384 * KiB
        assert self.chip.sram.capacity_bytes == 256 * MiB
        assert self.chip.dram.capacity_bytes == 128 * GiB
        assert self.old.local_memory.capacity_bytes == 128 * KiB
        assert self.old.sram.capacity_bytes == 128 * MiB

    def test_memory_bandwidths(self):
        assert self.chip.local_memory.bandwidth_bytes_per_s == pytest.approx(1 * TB)
        assert self.chip.sram.bandwidth_bytes_per_s == pytest.approx(2.7 * TB)
        assert self.chip.dram.bandwidth_bytes_per_s == pytest.approx(204.8 * GB)
        assert self.old.dram.bandwidth_bytes_per_s == pytest.approx(176 * GB)

    def test_host_link(self):
        assert self.chip.host_link.bandwidth_bytes_per_s == pytest.approx(32 * GB)
        assert self.old.host_link.bandwidth_bytes_per_s == pytest.approx(16 * GB)

    def test_power(self):
        assert self.chip.tdp_watts == 85.0
        assert self.chip.typical_watts == 65.0
        assert self.old.tdp_watts == 35.0

    def test_pe_grid(self):
        assert self.chip.num_pes == 64
        assert self.old.num_pes == 64

    def test_generation_ratios(self):
        """The narrative claims: >3x FLOPS, >3x SRAM BW, 3.3x NoC, 2x DRAM
        capacity, ~1.4x... DRAM bandwidth at the raw spec level is
        204.8/176 = 1.16x; the paper's ~1.4x figure reflects effective
        bandwidth; we assert the raw ratio band here."""
        ratios = spec_ratio(self.chip, self.old)
        assert ratios["gemm_flops"] > 3.0
        assert ratios["sram_bandwidth"] > 3.0
        assert ratios["noc_bandwidth"] == pytest.approx(3.3, rel=0.05)
        assert ratios["dram_capacity"] == pytest.approx(2.0)
        assert ratios["sram_capacity"] == pytest.approx(2.0)
        assert ratios["local_memory_capacity"] == pytest.approx(3.0)
        assert 1.1 < ratios["dram_bandwidth"] * 1.25 < 1.6  # effective band

    def test_gemm_to_simd_ratio_32_to_1(self):
        """Section 3.2: FP16 GEMM to FP32 SIMD ratio decreased to 32:1."""
        assert self.chip.gemm_to_simd_ratio(DType.FP16) == pytest.approx(32.0, rel=0.05)


class TestEccDerating:
    def test_ecc_enabled_derates_dram(self):
        with_ecc = mtia2i_spec(ecc_enabled=True)
        without = mtia2i_spec(ecc_enabled=False)
        ratio = with_ecc.dram.bandwidth_bytes_per_s / without.dram.bandwidth_bytes_per_s
        assert 0.85 <= ratio <= 0.90

    def test_native_ecc_chip_unchanged(self):
        gpu = gpu_spec()
        assert gpu.with_ecc_enabled() is gpu


class TestReclocking:
    def test_at_frequency_scales_compute(self):
        base = mtia2i_spec(ecc_enabled=False)
        slow = base.at_frequency(1.1e9)
        scale = 1.1 / 1.35
        assert slow.peak_gemm_flops(DType.FP16) == pytest.approx(177e12 * scale)
        assert slow.sram.bandwidth_bytes_per_s == pytest.approx(2.7e12 * scale)
        assert slow.noc_bandwidth_bytes_per_s == pytest.approx(
            base.noc_bandwidth_bytes_per_s * scale
        )

    def test_at_frequency_keeps_offchip(self):
        base = mtia2i_spec(ecc_enabled=False)
        slow = base.at_frequency(1.1e9)
        assert slow.dram.bandwidth_bytes_per_s == base.dram.bandwidth_bytes_per_s
        assert slow.host_link.bandwidth_bytes_per_s == base.host_link.bandwidth_bytes_per_s

    def test_overclock_ratio(self):
        assert mtia2i_spec().overclock_ratio == pytest.approx(1.35 / 1.1)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            mtia2i_spec().at_frequency(0)


class TestSpecValidation:
    def test_memory_level_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MemoryLevelSpec("x", capacity_bytes=0, bandwidth_bytes_per_s=1)
        with pytest.raises(ValueError):
            MemoryLevelSpec("x", capacity_bytes=1, bandwidth_bytes_per_s=0)

    def test_transfer_time(self):
        level = MemoryLevelSpec("x", capacity_bytes=1, bandwidth_bytes_per_s=1e9,
                                access_latency_s=1e-6)
        assert level.transfer_time(0) == 0.0
        assert level.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)
        with pytest.raises(ValueError):
            level.transfer_time(-1)

    def test_gemm_engine_unknown_dtype(self):
        engine = GemmEngineSpec(peak_flops={DType.FP16: 1.0})
        with pytest.raises(ValueError):
            engine.peak(DType.INT8)

    def test_issue_spec_validation(self):
        with pytest.raises(ValueError):
            IssueSpec(instructions_per_s=0)
        with pytest.raises(ValueError):
            IssueSpec(instructions_per_s=1, multi_context_amortization=0.5)


class TestServer:
    def test_grand_teton_socket(self):
        socket = grand_teton_socket()
        assert socket.cores == 96
        assert socket.dram_capacity_bytes == 12 * 96 * GiB
        assert socket.dram_bandwidth_bytes_per_s == pytest.approx(460 * GB)
        # 2 x 200 Gbps = 50 GB/s.
        assert socket.nic_bandwidth_bytes_per_s == pytest.approx(50e9)

    def test_mtia_server_shape(self):
        server = mtia2i_server()
        assert server.accelerators_per_server == 24
        assert server.accelerators_per_socket == 12
        assert server.accelerators_per_module == 2

    def test_per_accelerator_shares(self):
        """Section 3.4: 8 cores, 96 GB host DRAM (38 GB/s), ~4.17 GB/s
        Ethernet per accelerator."""
        server = mtia2i_server()
        assert server.host_cores_per_accelerator == pytest.approx(8.0)
        assert server.host_dram_per_accelerator_bytes == pytest.approx(96 * GiB)
        assert server.host_dram_bandwidth_per_accelerator == pytest.approx(460e9 / 12)
        assert server.nic_bandwidth_per_accelerator == pytest.approx(50e9 / 12, rel=0.01)

    def test_gpu_server_shape(self):
        assert gpu_server().accelerators_per_server == 8

    def test_power_totals(self):
        server = mtia2i_server()
        assert server.max_power_watts == pytest.approx(800 + 24 * 85)
        assert server.typical_power_watts < server.max_power_watts


class TestDescribe:
    def test_chip_description_mentions_grid_and_memories(self):
        text = describe_chip(mtia2i_spec())
        assert "8x8" in text
        assert "256 MiB" in text
        assert "lpddr5" in text

    def test_pe_description_lists_units(self):
        text = describe_pe(mtia2i_spec())
        for unit in ("Dot Product Engine", "SIMD Engine", "Command Processor",
                     "Memory Layout Unit", "Reduction Engine", "Fabric Interface"):
            assert unit in text

    def test_software_stack_layers_ordered(self):
        text = describe_software_stack()
        assert text.index("PyTorch") < text.index("Triton") < text.index("Firmware")
