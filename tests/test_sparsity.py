"""Tests for 2:4 structured sparsity (paper section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    natural_sparsity,
    prune_2_4,
    satisfies_2_4,
    sparse_trained_weights,
    sparsity_impact,
)


class TestPruning:
    def test_pattern_enforced(self):
        rng = np.random.default_rng(0)
        pruned = prune_2_4(rng.normal(size=(64, 32)))
        assert satisfies_2_4(pruned)

    def test_exactly_half_zeroed(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(128, 16))
        pruned = prune_2_4(w)
        assert np.count_nonzero(pruned) == w.size // 2

    def test_keeps_largest_magnitudes(self):
        w = np.array([[1.0], [0.1], [2.0], [0.2]])
        pruned = prune_2_4(w)
        np.testing.assert_array_equal(pruned[:, 0], [1.0, 0.0, 2.0, 0.0])

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        once = prune_2_4(rng.normal(size=(32, 8)))
        np.testing.assert_array_equal(prune_2_4(once), once)

    def test_validation(self):
        with pytest.raises(ValueError):
            prune_2_4(np.zeros(8))
        with pytest.raises(ValueError):
            prune_2_4(np.zeros((6, 4)))  # input dim not multiple of 4

    def test_satisfies_rejects_dense(self):
        assert not satisfies_2_4(np.ones((8, 4)))


class TestImpact:
    def test_dense_trained_weights_degrade(self):
        """The paper's finding: DLRM weights lack natural sparsity, so
        pruning costs quality."""
        rng = np.random.default_rng(3)
        impact = sparsity_impact(rng.normal(0, 0.05, size=(512, 128)))
        assert impact.natural_sparsity < 0.1
        assert impact.relative_output_error > 0.1
        assert not impact.acceptable()

    def test_sparse_trained_weights_prune_cheaply(self):
        impact = sparsity_impact(sparse_trained_weights(512, 128))
        assert impact.natural_sparsity > 0.5
        assert impact.relative_output_error < 0.1

    def test_pruned_mass_tracks_error(self):
        rng = np.random.default_rng(4)
        dense = sparsity_impact(rng.normal(size=(256, 64)))
        sparse = sparsity_impact(sparse_trained_weights(256, 64))
        assert dense.pruned_mass_fraction > sparse.pruned_mass_fraction

    def test_natural_sparsity_of_zero_matrix(self):
        assert natural_sparsity(np.zeros((8, 4))) == 1.0


@given(
    k_groups=st.integers(min_value=1, max_value=32),
    n=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_prune_2_4_properties(k_groups, n, seed):
    """Properties: pattern holds, surviving entries are unchanged, and
    the dropped entries never out-magnitude the kept ones in a group."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(4 * k_groups, n))
    pruned = prune_2_4(w)
    assert satisfies_2_4(pruned)
    kept = pruned != 0
    np.testing.assert_array_equal(pruned[kept], w[kept])
    grouped_w = np.abs(w).reshape(k_groups, 4, n)
    grouped_p = pruned.reshape(k_groups, 4, n)
    for g in range(k_groups):
        for c in range(n):
            kept_vals = np.abs(grouped_p[g, :, c][grouped_p[g, :, c] != 0])
            dropped = grouped_w[g, :, c][grouped_p[g, :, c] == 0]
            if kept_vals.size and dropped.size:
                assert kept_vals.min() >= dropped.max() - 1e-12
