"""Tests for the multi-host serving tier (repro.cluster)."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import (
    AdmissionConfig,
    Autoscaler,
    AutoscalerConfig,
    ClusterConfig,
    ClusterReport,
    HostPool,
    POLICY_NAMES,
    ServiceModel,
    ShardLocalityMap,
    capacity_sweep,
    default_service_model,
    locality_comparison,
    make_policy,
    policy_comparison,
    run_cluster,
)
from repro.fleet import AllocationError
from repro.obs import MetricsRegistry, TraceWriter
from repro.serving import DiurnalTrafficModel, diurnal_poisson_stream, poisson_stream


@dataclasses.dataclass
class FakeReplica:
    replica_id: int
    shard: int
    outstanding: int


def _service(mean_s: float = 0.02, jitter: float = 0.3) -> ServiceModel:
    return ServiceModel(mean_service_s=mean_s, jitter_sigma=jitter)


def _run(policy="po2", replicas=4, rate=120.0, duration=20.0, seed=0, **kwargs):
    requests = poisson_stream(
        rate_per_s=rate, duration_s=duration, samples_per_request=64, seed=seed
    )
    config = ClusterConfig(replicas=replicas, num_hosts=2, policy=policy,
                           seed=seed, **kwargs.pop("config", {}))
    return run_cluster(config, _service(), requests, **kwargs)


class TestServiceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceModel(mean_service_s=0.0)
        with pytest.raises(ValueError):
            ServiceModel(mean_service_s=0.01, jitter_sigma=-1)
        with pytest.raises(ValueError):
            ServiceModel(mean_service_s=0.01, cross_host_penalty=0.5)

    def test_jitter_is_mean_preserving(self):
        service = _service(mean_s=0.05, jitter=0.6)
        rng = np.random.default_rng(0)
        samples = [service.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.05, rel=0.02)

    def test_zero_jitter_is_deterministic(self):
        service = _service(mean_s=0.05, jitter=0.0)
        rng = np.random.default_rng(0)
        assert service.sample(rng) == 0.05

    def test_cross_host_penalty_applied(self):
        service = ServiceModel(mean_service_s=0.05, jitter_sigma=0.0,
                               cross_host_penalty=1.35)
        rng = np.random.default_rng(0)
        assert service.sample(rng, cross_host=True) == pytest.approx(0.0675)

    def test_default_model_from_serving_profile(self):
        service = default_service_model()
        # 2 remote jobs * (5 + 1) ms + 9 ms merge + 1 ms + 0.8 ms.
        assert service.mean_service_s == pytest.approx(0.0228)
        assert service.capacity_per_replica() == pytest.approx(1 / 0.0228)


class TestRoutingPolicies:
    def test_round_robin_cycles(self):
        policy = make_policy("round_robin")
        replicas = [FakeReplica(i, 0, 0) for i in range(3)]
        rng = np.random.default_rng(0)
        picks = [policy.choose(replicas, 0, rng).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_picks_least_outstanding(self):
        policy = make_policy("jsq")
        replicas = [FakeReplica(0, 0, 5), FakeReplica(1, 0, 1),
                    FakeReplica(2, 0, 3)]
        assert policy.choose(
            replicas, 0, np.random.default_rng(0)
        ).replica_id == 1

    def test_po2_picks_better_of_two_sampled(self):
        policy = make_policy("po2")
        replicas = [FakeReplica(0, 0, 9), FakeReplica(1, 0, 0),
                    FakeReplica(2, 0, 9)]
        rng = np.random.default_rng(0)
        # Over many draws the idle replica wins whenever sampled, so it
        # is chosen far more often than 1/3 of the time.
        picks = [policy.choose(replicas, 0, rng).replica_id
                 for _ in range(300)]
        assert picks.count(1) > 150

    def test_po2_single_candidate(self):
        policy = make_policy("po2")
        only = [FakeReplica(7, 0, 2)]
        assert policy.choose(only, 0, np.random.default_rng(0)).replica_id == 7

    def test_locality_prefers_shard_holder(self):
        policy = make_policy("locality")
        replicas = [FakeReplica(0, 0, 3), FakeReplica(1, 1, 0)]
        # Shard 0 traffic stays on replica 0 though replica 1 is idle.
        assert policy.choose(
            replicas, 0, np.random.default_rng(0)
        ).replica_id == 0

    def test_locality_spills_under_pressure(self):
        policy = make_policy("locality", spill_outstanding=4)
        replicas = [FakeReplica(0, 0, 4), FakeReplica(1, 1, 0)]
        assert policy.choose(
            replicas, 0, np.random.default_rng(0)
        ).replica_id == 1

    def test_empty_candidates(self):
        for name in POLICY_NAMES:
            assert make_policy(name).choose(
                [], 0, np.random.default_rng(0)
            ) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("rps")


class TestAdmission:
    def test_replica_cap(self):
        admission = AdmissionConfig(max_outstanding_per_replica=4)
        assert admission.replica_admissible(3)
        assert not admission.replica_admissible(4)

    def test_tier_cap(self):
        admission = AdmissionConfig(max_total_outstanding=10)
        assert admission.tier_admissible(9)
        assert not admission.tier_admissible(10)

    def test_unbounded_tier_by_default(self):
        assert AdmissionConfig().tier_admissible(10**9)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_outstanding_per_replica=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_total_outstanding=0)


class TestAutoscaler:
    def _scaler(self, **overrides):
        defaults = dict(min_replicas=1, max_replicas=20, cooldown_s=0.0)
        defaults.update(overrides)
        return Autoscaler(AutoscalerConfig(**defaults),
                          _service(mean_s=0.02, jitter=0.0))

    def test_holds_inside_band(self):
        scaler = self._scaler()
        assert scaler.desired_replicas(0.0, 4, 0.70, 140.0) == 4

    def test_scales_up_above_band(self):
        scaler = self._scaler()
        # 400 req/s * 20 ms = 8 busy-replicas -> 12 at 70% target.
        assert scaler.desired_replicas(0.0, 4, 0.95, 400.0) == 12

    def test_scales_down_below_band(self):
        scaler = self._scaler()
        assert scaler.desired_replicas(0.0, 8, 0.10, 30.0) == 1

    def test_cooldown_blocks_flapping(self):
        scaler = self._scaler(cooldown_s=60.0)
        assert scaler.desired_replicas(0.0, 2, 0.95, 400.0) == 12
        # Immediately after a change, stay put regardless of load.
        assert scaler.desired_replicas(10.0, 12, 0.10, 10.0) == 12
        assert scaler.desired_replicas(70.0, 12, 0.10, 10.0) == 1

    def test_predictive_provisions_ahead_of_ramp(self):
        model = DiurnalTrafficModel(mean_rate_per_s=200.0, peak_to_mean=2.0,
                                    day_length_s=3600.0)
        scaler = Autoscaler(
            AutoscalerConfig(min_replicas=1, max_replicas=40, cooldown_s=0.0,
                             predictive=True, predictive_lead_s=300.0),
            _service(mean_s=0.02, jitter=0.0),
            traffic_model=model,
        )
        # Mid-ramp with calm measured load: the forecast wins.
        t = 1200.0
        forecast = model.rate_at(t + 300.0)
        expected = int(np.ceil(forecast * 0.02 / 0.70))
        assert scaler.desired_replicas(t, 1, 0.70, 100.0) == expected

    def test_forecast_never_scales_down_inside_band(self):
        model = DiurnalTrafficModel(mean_rate_per_s=10.0, peak_to_mean=2.0)
        scaler = Autoscaler(
            AutoscalerConfig(min_replicas=1, max_replicas=40, cooldown_s=0.0),
            _service(mean_s=0.02, jitter=0.0),
            traffic_model=model,
        )
        # Forecast says 1 replica, but measured load is in-band at 8.
        assert scaler.desired_replicas(0.0, 8, 0.70, 300.0) == 8

    def test_clamps_to_bounds(self):
        scaler = self._scaler(min_replicas=2, max_replicas=6)
        assert scaler.desired_replicas(0.0, 4, 0.99, 10_000.0) == 6
        assert scaler.desired_replicas(100.0, 4, 0.01, 0.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_down_utilization=0.9)
        with pytest.raises(ValueError):
            AutoscalerConfig(tick_interval_s=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(predictive_lead_s=-1.0)


class TestHostPool:
    def test_acquire_release_round_trip(self):
        pool = HostPool(num_hosts=2)
        total = pool.free_accelerators()
        grants = [pool.acquire("m", 4) for _ in range(8)]
        assert pool.free_accelerators() == total - 32
        assert pool.hosts_in_use() == 2  # 32 accelerators spill past host 0
        for grant in grants:
            pool.release(grant)
        assert pool.free_accelerators() == total
        assert pool.hosts_in_use() == 0

    def test_first_fit_spills_to_next_host(self):
        pool = HostPool(num_hosts=2)
        hosts = {pool.acquire("m", 12).host_id for _ in range(4)}
        assert hosts == {0, 1}

    def test_exhaustion_raises(self):
        pool = HostPool(num_hosts=1)
        pool.acquire("a", 12)
        pool.acquire("b", 12)
        with pytest.raises(AllocationError):
            pool.acquire("c", 1)

    def test_pool_fragmentation(self):
        pool = HostPool(num_hosts=2)
        for _ in range(4):
            pool.acquire("m", 7)  # leaves 5 free on each socket
        stats = pool.fragmentation_stats(request_size=6)
        assert stats.free_total == 20
        assert stats.largest_socket_free == 5
        assert not stats.placeable

    def test_validation(self):
        with pytest.raises(ValueError):
            HostPool(num_hosts=0)
        with pytest.raises(ValueError):
            HostPool(num_hosts=1).fragmentation_stats(request_size=0)


class TestShardLocalityMap:
    def test_uniform_weights(self):
        shard_map = ShardLocalityMap.uniform(4)
        assert shard_map.num_shards == 4
        assert sum(shard_map.shard_weights) == pytest.approx(1.0)

    def test_sampling_follows_weights(self):
        shard_map = ShardLocalityMap(2, (0.9, 0.1))
        shards = shard_map.sample_shards(20_000, np.random.default_rng(0))
        assert np.mean(shards == 0) == pytest.approx(0.9, abs=0.02)

    def test_from_model_weights_by_bytes(self):
        shard_map = ShardLocalityMap.from_model("HC3", num_shards=4)
        assert shard_map.num_shards == 4
        assert sum(shard_map.shard_weights) == pytest.approx(1.0)
        assert all(w > 0 for w in shard_map.shard_weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardLocalityMap(0, ())
        with pytest.raises(ValueError):
            ShardLocalityMap(2, (0.5, 0.6))


class TestClusterSimulator:
    def test_conservation_and_no_shedding_when_provisioned(self):
        report = _run(replicas=6, rate=120.0)
        assert report.served + report.shed == report.offered
        assert report.shed == 0
        assert report.timed_out == 0
        assert report.offered > 1000

    def test_seeded_determinism(self):
        assert _run(seed=7) == _run(seed=7)

    def test_different_seeds_differ(self):
        assert _run(seed=1) != _run(seed=2)

    def test_registry_and_tracer_do_not_change_results(self):
        bare = _run()
        registry = MetricsRegistry()
        tracer = TraceWriter("cluster-test")
        observed = _run(registry=registry, tracer=tracer)
        assert bare.latencies_s == observed.latencies_s
        assert bare.event_log == observed.event_log
        assert registry.counter("cluster.admitted").value == bare.offered
        document = tracer.document()
        assert any(e.get("cat") == "service" for e in document["traceEvents"])

    def test_overload_sheds_and_conserves(self):
        report = _run(
            replicas=1, rate=200.0, duration=10.0,
            config={"admission": AdmissionConfig(max_outstanding_per_replica=4)},
        )
        assert report.shed > 0
        assert report.served + report.shed == report.offered
        shed_ids = [e for _, kind, e in report.event_log if kind == "shed"]
        assert len(shed_ids) == report.shed

    def test_tier_wide_admission_cap(self):
        report = _run(
            replicas=4, rate=400.0, duration=5.0,
            config={"admission": AdmissionConfig(max_total_outstanding=8)},
        )
        outstanding_cap = 8 + 1  # cap checked before enqueue
        assert report.shed > 0
        assert max(
            (e for _, kind, e in report.event_log if kind == "shed"),
            default=0,
        ) <= report.offered
        assert report.served + report.shed == report.offered
        assert outstanding_cap  # documents the check granularity

    def test_faults_drain_and_requests_retry(self):
        report = _run(
            replicas=4, rate=100.0, duration=60.0,
            config={"fault_rate_per_replica_hour": 120.0},
        )
        assert report.faults > 0
        assert report.retried > 0
        # Fault-stranded requests past the retry deadline are lost, not
        # bounced forever: conservation is now three-way.
        assert report.served + report.shed + report.timed_out == report.offered
        kinds = {kind for _, kind, _ in report.event_log}
        assert "fault" in kinds and "recover" in kinds

    def test_fault_retries_respect_deadline_cutoff(self):
        bounded = _run(
            replicas=4, rate=100.0, duration=60.0,
            config={"fault_rate_per_replica_hour": 400.0},
        )
        unbounded = _run(
            replicas=4, rate=100.0, duration=60.0,
            config={"fault_rate_per_replica_hour": 400.0,
                    "retry_deadline_slos": None},
        )
        # The cutoff converts late fault-retries into timeouts; disabling
        # it restores the old re-route-forever behaviour.
        assert bounded.timed_out > 0
        assert unbounded.timed_out == 0
        assert unbounded.served + unbounded.shed == unbounded.offered
        timeout_ids = [e for _, kind, e in bounded.event_log
                       if kind == "timeout"]
        assert len(timeout_ids) == bounded.timed_out == len(set(timeout_ids))

    def test_every_request_served_once(self):
        report = _run(replicas=4, rate=100.0, duration=30.0,
                      config={"fault_rate_per_replica_hour": 60.0})
        served = [e for _, kind, e in report.event_log if kind == "serve"]
        shed = [e for _, kind, e in report.event_log if kind == "shed"]
        assert len(served) == len(set(served)) == report.served
        assert not set(served) & set(shed)

    def test_no_locality_means_no_cross_host(self):
        report = _run(policy="jsq")
        assert report.cross_host_served == 0
        assert report.cross_host_fraction == 0.0

    def test_locality_policy_eliminates_cross_host(self):
        requests = poisson_stream(rate_per_s=60.0, duration_s=20.0,
                                  samples_per_request=64, seed=0)
        shard_map = ShardLocalityMap.uniform(4)
        jsq = run_cluster(
            ClusterConfig(replicas=8, num_hosts=2, policy="jsq"),
            _service(), requests, locality=shard_map,
        )
        local = run_cluster(
            ClusterConfig(replicas=8, num_hosts=2, policy="locality"),
            _service(), requests, locality=shard_map,
        )
        assert jsq.cross_host_fraction > 0.5
        assert local.cross_host_fraction < jsq.cross_host_fraction

    def test_autoscaler_tracks_diurnal_ramp(self):
        model = DiurnalTrafficModel(mean_rate_per_s=80.0, peak_to_mean=2.0,
                                    day_length_s=600.0)
        requests = diurnal_poisson_stream(model, duration_s=600.0, seed=0)
        autoscaler = Autoscaler(
            AutoscalerConfig(min_replicas=1, max_replicas=16,
                             tick_interval_s=10.0, cooldown_s=20.0),
            _service(), traffic_model=model,
        )
        report = run_cluster(
            ClusterConfig(replicas=1, num_hosts=2, policy="po2"),
            _service(), requests, autoscaler=autoscaler,
        )
        assert report.scale_events  # it reacted
        assert report.peak_replicas > 1  # scaled up for the peak
        assert report.served + report.shed == report.offered

    def test_pool_exhaustion_caps_scale_up(self):
        requests = poisson_stream(rate_per_s=900.0, duration_s=5.0,
                                  samples_per_request=64, seed=0)
        autoscaler = Autoscaler(
            AutoscalerConfig(min_replicas=1, max_replicas=64,
                             tick_interval_s=1.0, cooldown_s=0.0),
            _service(),
        )
        pool = HostPool(num_hosts=1)  # 24 accelerators, hard ceiling
        report = run_cluster(
            ClusterConfig(replicas=1, num_hosts=1, policy="po2"),
            _service(), requests, autoscaler=autoscaler, pool=pool,
        )
        assert report.peak_replicas <= 24
        assert report.served + report.shed == report.offered

    def test_config_validation(self):
        for bad in (
            dict(replicas=0),
            dict(accelerators_per_replica=0),
            dict(num_hosts=0),
            dict(p99_slo_s=0.0),
            dict(fault_rate_per_replica_hour=-1.0),
            dict(retry_deadline_slos=0.0),
        ):
            with pytest.raises(ValueError):
                ClusterConfig(**bad)

    def test_report_enforces_conservation(self):
        with pytest.raises(ValueError):
            ClusterReport(
                policy="po2", seed=0, duration_s=1.0, offered=10, served=8,
                shed=1, retried=0, cross_host_served=0, latencies_s=(),
                busy_seconds=0.0, replica_seconds=1.0, peak_replicas=1,
                final_replicas=1, faults=0, scale_events=(), event_log=(),
            )

    def test_report_percentiles_and_slo(self):
        report = _run(replicas=6, rate=120.0)
        assert 0 < report.p50_latency_s <= report.p99_latency_s
        assert report.meets_slo(report.p99_latency_s + 1e-9)
        assert not report.meets_slo(report.p50_latency_s / 10)
        assert "policy=po2" in report.summary()


class TestDiurnalTraffic:
    def test_rate_peaks_and_floors(self):
        model = DiurnalTrafficModel(mean_rate_per_s=100.0, peak_to_mean=2.0,
                                    day_length_s=86_400.0)
        assert model.peak_rate_per_s == pytest.approx(200.0)
        # Quarter-day after the trough sits at the mean.
        assert model.rate_at(21_600.0) == pytest.approx(100.0)
        assert min(
            model.rate_at(t) for t in np.linspace(0, 86_400, 97)
        ) >= 100.0 * model.floor_fraction

    def test_stream_is_seeded_deterministic(self):
        model = DiurnalTrafficModel(mean_rate_per_s=50.0)
        a = diurnal_poisson_stream(model, duration_s=300.0, seed=3)
        b = diurnal_poisson_stream(model, duration_s=300.0, seed=3)
        assert a == b
        assert a != diurnal_poisson_stream(model, duration_s=300.0, seed=4)

    def test_arrivals_sorted_and_bounded(self):
        model = DiurnalTrafficModel(mean_rate_per_s=50.0)
        requests = diurnal_poisson_stream(model, duration_s=500.0, seed=0)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0 <= t <= 500.0 for t in arrivals)

    def test_peak_window_busier_than_trough(self):
        model = DiurnalTrafficModel(mean_rate_per_s=100.0, peak_to_mean=2.5,
                                    day_length_s=1000.0)
        requests = diurnal_poisson_stream(model, duration_s=1000.0, seed=1)
        trough = sum(1 for r in requests if r.arrival_s < 200.0)
        peak = sum(1 for r in requests if 400.0 <= r.arrival_s < 600.0)
        assert peak > 2 * trough

    def test_bursts_add_arrivals(self):
        model = DiurnalTrafficModel(mean_rate_per_s=80.0, day_length_s=600.0)
        calm = diurnal_poisson_stream(model, duration_s=600.0, seed=2)
        bursty = diurnal_poisson_stream(
            model, duration_s=600.0, seed=2,
            burst_rate_per_hour=60.0, burst_factor=4.0, burst_duration_s=30.0,
        )
        assert len(bursty) > len(calm) * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_rate_per_s=0.0)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_rate_per_s=1.0, peak_to_mean=0.5)

    def test_phase_h_zero_is_byte_identical(self):
        """The fleet tier's timezone knob must not perturb existing
        users: with ``phase_h=0`` every rate is the exact pre-fleet
        float, and the generated stream is unchanged."""
        import math

        model = DiurnalTrafficModel(mean_rate_per_s=120.0, peak_to_mean=2.2,
                                    day_length_s=600.0, phase_s=37.0)
        assert model.phase_h == 0.0
        for t in np.linspace(0.0, 600.0, 113):
            angle = 2.0 * math.pi * (t + model.phase_s) / model.day_length_s
            raw = 1.0 + (model.peak_to_mean - 1.0) * math.sin(
                angle - math.pi / 2.0
            )
            expected = model.mean_rate_per_s * max(raw, model.floor_fraction)
            assert model.rate_at(float(t)) == expected  # exact, not approx
        assert diurnal_poisson_stream(
            model, duration_s=600.0, seed=7
        ) == diurnal_poisson_stream(
            dataclasses.replace(model, phase_h=0.0), duration_s=600.0, seed=7
        )

    def test_phase_h_moves_the_peak_east(self):
        model = DiurnalTrafficModel(mean_rate_per_s=100.0, peak_to_mean=2.0,
                                    day_length_s=24.0)
        # Unshifted peak at midday; 6 hours east peaks a quarter-day
        # earlier, whatever the compressed day length.
        assert model.rate_at(12.0) == pytest.approx(model.peak_rate_per_s)
        east = model.shifted(6.0)
        assert east.rate_at(6.0) == pytest.approx(model.peak_rate_per_s)
        assert east.rate_at(12.0) < model.rate_at(12.0)
        # Shifts compose; a full lap restores the curve.
        lap = model.shifted(24.0)
        for t in (0.0, 5.0, 17.5):
            assert lap.rate_at(t) == pytest.approx(model.rate_at(t))

    def test_phase_h_shifts_the_stream(self):
        model = DiurnalTrafficModel(mean_rate_per_s=100.0, peak_to_mean=2.5,
                                    day_length_s=1000.0)
        shifted = diurnal_poisson_stream(
            model.shifted(12.0), duration_s=1000.0, seed=1
        )
        # Half a day of shift puts the peak where the trough was.
        early = sum(1 for r in shifted if r.arrival_s < 200.0)
        middle = sum(1 for r in shifted if 400.0 <= r.arrival_s < 600.0)
        assert early > 2 * middle

    def test_scaled_multiplies_the_mean(self):
        model = DiurnalTrafficModel(mean_rate_per_s=100.0)
        assert model.scaled(0.25).mean_rate_per_s == pytest.approx(25.0)
        assert model.scaled(0.25).peak_to_mean == model.peak_to_mean
        with pytest.raises(ValueError):
            model.scaled(0.0)


class TestCapacityPlanning:
    def test_sweep_covers_grid_and_scalars(self):
        service = _service(mean_s=0.02, jitter=0.2)
        sweep = capacity_sweep(
            service, qps_points=[50.0], policies=("po2", "jsq"),
            duration_s=10.0,
        )
        assert len(sweep.points) == 2
        point = sweep.point("po2", 50.0)
        assert point.feasible
        assert point.replicas >= 1
        scalars = sweep.scalars()
        assert "replicas_po2_at_50qps" in scalars
        assert "po2" in sweep.table()
        with pytest.raises(KeyError):
            sweep.point("po2", 999.0)

    def test_more_qps_needs_no_fewer_replicas(self):
        service = _service(mean_s=0.02, jitter=0.2)
        low = capacity_sweep(service, [40.0], policies=("jsq",),
                             duration_s=10.0).point("jsq", 40.0)
        high = capacity_sweep(service, [160.0], policies=("jsq",),
                              duration_s=10.0).point("jsq", 160.0)
        assert high.replicas >= low.replicas


class TestGoldenShapes:
    """The two orderings the issue pins, on the benchmark configuration."""

    @pytest.fixture(scope="class")
    def probes(self):
        # Same configuration as benchmarks/test_cluster_capacity.py, so
        # these pins and the GOLDEN_SCALARS entries agree.
        service = default_service_model()
        tails = policy_comparison(service, target_utilization=0.85,
                                  duration_s=60.0)
        shards = locality_comparison(service, duration_s=60.0)
        return tails, shards

    def test_po2_beats_round_robin_at_high_utilization(self, probes):
        tails, _ = probes
        assert all(r.utilization >= 0.80 for r in tails.values())
        assert tails["po2"].p99_latency_s < tails["round_robin"].p99_latency_s

    def test_locality_cuts_cross_host_traffic(self, probes):
        _, shards = probes
        assert shards["jsq"].cross_host_fraction > 0.5
        assert shards["locality"].cross_host_fraction < 0.05

    def test_pinned_values(self, probes):
        tails, shards = probes
        assert tails["round_robin"].p99_latency_s == pytest.approx(
            0.1357294585487292, rel=0.05
        )
        assert tails["po2"].p99_latency_s == pytest.approx(
            0.11015150533913243, rel=0.05
        )
        assert shards["jsq"].cross_host_fraction == pytest.approx(
            0.7463783329834138, rel=0.05
        )
        assert shards["locality"].cross_host_fraction == 0.0
