"""Property-based tests for the global fleet tier's safety invariants.

Mirrors ``tests/test_chaos_properties.py`` one level up: Hypothesis
generates arbitrary region-scale drill schedules (outages, brownouts,
partitions at arbitrary times, on either arm) against small fleets and
asserts the two contracts the tier rests on:

* **global conservation** — every generated request reaches exactly one
  terminal outcome, ``served + shed + timed_out + spilled_served ==
  offered``, globally and per origin region, whatever the drill does;
* **bit-for-bit determinism** — the same config, drill, and arm produce
  an identical :class:`~repro.fleet_global.simulator.FleetReport`,
  event logs included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet_global import (
    FleetConfig,
    RegionEvent,
    RegionSpec,
    build_drill,
    run_fleet,
)
from repro.fleet_global.drills import EVENT_KINDS

DURATION_S = 6.0
REGION_NAMES = ("alpha", "beta")


def _fleet(seed: int) -> FleetConfig:
    return FleetConfig(
        regions=tuple(
            RegionSpec(name=name, timezone_offset_h=12.0 * index, replicas=3)
            for index, name in enumerate(REGION_NAMES)
        ),
        users_millions=1.0,
        duration_s=DURATION_S,
        seed=seed,
    )


region_events = st.builds(
    RegionEvent,
    region=st.sampled_from(REGION_NAMES),
    kind=st.sampled_from(EVENT_KINDS),
    at_s=st.floats(min_value=0.0, max_value=DURATION_S,
                   allow_nan=False, allow_infinity=False),
    duration_s=st.floats(min_value=0.1, max_value=DURATION_S,
                         allow_nan=False, allow_infinity=False),
    magnitude=st.floats(min_value=0.1, max_value=1.0,
                        allow_nan=False, allow_infinity=False),
)

drills = st.lists(region_events, min_size=0, max_size=4)


@settings(max_examples=40, deadline=None)
@given(events=drills, defended=st.booleans(),
       seed=st.integers(min_value=0, max_value=2**16))
def test_conservation_under_arbitrary_region_drills(events, defended, seed):
    fleet = _fleet(seed)
    report = run_fleet(
        fleet, build_drill(fleet, events), defended=defended
    )
    assert (report.served + report.shed + report.timed_out
            + report.spilled_served == report.offered)
    assert report.lb_shed <= report.shed
    for region in report.regions:
        assert (region.served + region.spilled_served + region.shed
                + region.timed_out == region.offered)
    assert report.offered == sum(r.offered for r in report.regions)
    # Every answered request has exactly one recorded global latency.
    assert len(report.latencies_s) == report.served + report.spilled_served
    if not defended:
        # Failover off means nothing ever leaves its home region.
        assert report.spilled_served == 0
        assert report.lb_shed == 0


@settings(max_examples=20, deadline=None)
@given(events=drills, defended=st.booleans(),
       seed=st.integers(min_value=0, max_value=2**16))
def test_fleet_runs_are_bit_for_bit_deterministic(events, defended, seed):
    fleet = _fleet(seed)
    drill = build_drill(fleet, events)
    first = run_fleet(fleet, drill, defended=defended)
    second = run_fleet(fleet, drill, defended=defended)
    assert first == second
    for a, b in zip(first.regions, second.regions):
        assert a.report.event_log == b.report.event_log


@settings(max_examples=20, deadline=None)
@given(events=st.lists(region_events, min_size=2, max_size=4),
       seed=st.integers(min_value=0, max_value=2**16))
def test_drill_compilation_is_event_order_independent(events, seed):
    """The same incidents in any order compile to the same drill —
    the merge tie-break at work one level up."""
    fleet = _fleet(seed)
    forward = build_drill(fleet, events)
    backward = build_drill(fleet, list(reversed(events)))
    assert forward.injections == backward.injections
    assert forward.unreachable == backward.unreachable
    assert forward.isolated == backward.isolated
