"""Tests for unit constants and formatters."""

from repro import units


def test_binary_prefixes():
    assert units.KiB == 1024
    assert units.MiB == 1024 ** 2
    assert units.GiB == 1024 ** 3


def test_decimal_prefixes():
    assert units.GB == 10 ** 9
    assert units.TB == 10 ** 12


def test_fmt_bytes_scales():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2048) == "2 KiB"
    assert "MiB" in units.fmt_bytes(256 * units.MiB)
    assert "GiB" in units.fmt_bytes(8 * units.GiB)


def test_fmt_bandwidth_scales():
    assert "GB/s" in units.fmt_bandwidth(204.8 * units.GB)
    assert "TB/s" in units.fmt_bandwidth(2.7 * units.TB)


def test_fmt_time_ranges():
    assert units.fmt_time(0) == "0 s"
    assert "ns" in units.fmt_time(5e-9)
    assert "us" in units.fmt_time(5e-6)
    assert "ms" in units.fmt_time(5e-3)
    assert units.fmt_time(2.0) == "2 s"


def test_fmt_flops():
    assert "TFLOP/s" in units.fmt_flops(177e12)
    assert "GFLOP/s" in units.fmt_flops(2e9)
