"""Tests for the workload builders and the model zoo (Table 1, Figure 6)."""

import dataclasses

import pytest

from repro.graph import OpType
from repro.models import (
    DhenConfig,
    DlrmConfig,
    EmbeddingBagConfig,
    HstuConfig,
    build_dhen,
    build_dlrm,
    build_hstu,
    figure6_models,
    small_dlrm,
    table1_models,
    table1_row,
)
class TestDlrmBuilder:
    def test_builds_valid_graph(self):
        graph = build_dlrm(small_dlrm())
        graph.validate_schedule()
        assert len(graph.graph_outputs()) == 1

    def test_has_canonical_components(self):
        graph = build_dlrm(small_dlrm())
        kinds = {op.op_type for op in graph.ops}
        assert OpType.FC in kinds
        assert OpType.TBE in kinds
        assert OpType.INTERACTION in kinds
        assert OpType.CONCAT in kinds

    def test_embedding_dominates_size(self):
        """Table 1: 90% of model size is embeddings."""
        graph = build_dlrm(small_dlrm())
        assert graph.embedding_bytes() / graph.weight_bytes() > 0.9

    def test_batch_scales_flops_linearly(self):
        config = small_dlrm()
        g1 = build_dlrm(dataclasses.replace(config, batch=256))
        g2 = build_dlrm(dataclasses.replace(config, batch=512))
        assert g2.total_flops() == pytest.approx(2 * g1.total_flops(), rel=0.01)

    def test_flops_per_sample_batch_invariant(self):
        config = small_dlrm()
        g1 = build_dlrm(dataclasses.replace(config, batch=256))
        g2 = build_dlrm(dataclasses.replace(config, batch=1024))
        assert g1.flops_per_sample(256) == pytest.approx(
            g2.flops_per_sample(1024), rel=0.01
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DlrmConfig(name="x", batch=0, num_dense_features=8,
                       bottom_mlp_dims=(8,), top_mlp_dims=(8,),
                       embeddings=(EmbeddingBagConfig(1, 10, 8, 1.0),))
        with pytest.raises(ValueError):
            EmbeddingBagConfig(num_tables=0, rows_per_table=10, embed_dim=8,
                               pooling_factor=1.0)


class TestDhenBuilder:
    def _config(self, **kwargs):
        defaults = dict(
            name="dhen", batch=128, hidden_dim=512, num_layers=3,
            num_dense_features=256,
            embeddings=(EmbeddingBagConfig(8, 10_000, 64, 4.0),),
            fm_features=16,
        )
        defaults.update(kwargs)
        return DhenConfig(**defaults)

    def test_builds_valid_graph(self):
        graph = build_dhen(self._config())
        graph.validate_schedule()

    def test_layers_have_layernorm_and_skip(self):
        graph = build_dhen(self._config())
        norms = [op for op in graph.ops if op.op_type is OpType.LAYERNORM]
        skips = [op for op in graph.ops if "skip" in op.name]
        assert len(norms) == 3
        assert len(skips) == 3

    def test_mha_variant_adds_attention(self):
        graph = build_dhen(self._config(mha_heads=4, batch=256))
        assert any(op.op_type is OpType.MHA for op in graph.ops)

    def test_deeper_stack_more_flops(self):
        shallow = build_dhen(self._config(num_layers=2))
        deep = build_dhen(self._config(num_layers=6))
        assert deep.total_flops() > 2 * shallow.total_flops()


class TestHstuBuilder:
    def _config(self, **kwargs):
        defaults = dict(
            name="hstu", batch=16, hidden_dim=128, num_layers=2, heads=4,
            mean_seq_len=64, max_seq_len=256, num_tables=4,
            rows_per_table=100_000, embed_dim=64,
        )
        defaults.update(kwargs)
        return HstuConfig(**defaults)

    def test_builds_valid_graph(self):
        graph = build_hstu(self._config())
        graph.validate_schedule()
        assert any(op.op_type is OpType.HSTU_ATTENTION for op in graph.ops)

    def test_sequence_tbe_used(self):
        graph = build_hstu(self._config())
        tbe_ops = [op for op in graph.ops if op.op_type is OpType.TBE]
        assert tbe_ops and tbe_ops[0].attrs["sequence"]

    def test_lengths_skewed_and_bounded(self):
        config = self._config()
        lengths = config.sample_seq_lengths()
        assert len(lengths) == 16
        assert max(lengths) <= 256
        assert min(lengths) >= 1

    def test_longer_histories_more_flops(self):
        short = build_hstu(self._config(mean_seq_len=32))
        long = build_hstu(self._config(mean_seq_len=128))
        assert long.total_flops() > 2 * short.total_flops()


class TestTable1:
    """Table 1's published coordinates, within loose synthetic tolerance."""

    def setup_method(self):
        self.rows = {m.name: table1_row(m) for m in table1_models()}

    def test_retrieval_coordinates(self):
        row = self.rows["retrieval"]
        assert 50 <= row.model_size_gb <= 110
        assert 0.001 <= row.gflops_per_sample <= 0.01

    def test_early_stage_coordinates(self):
        row = self.rows["early_stage"]
        assert 100 <= row.model_size_gb <= 300
        assert 0.01 <= row.gflops_per_sample <= 0.1

    def test_late_stage_coordinates(self):
        row = self.rows["late_stage"]
        assert 100 <= row.model_size_gb <= 300
        assert 0.2 <= row.gflops_per_sample <= 2.0

    def test_hstu_retrieval_coordinates(self):
        row = self.rows["hstu_retrieval"]
        assert 800 <= row.model_size_gb <= 1300  # ~1 TB
        assert 5 <= row.gflops_per_sample <= 20  # ~10 GF/request

    def test_hstu_ranking_coordinates(self):
        row = self.rows["hstu_ranking"]
        assert 1600 <= row.model_size_gb <= 2600  # ~2 TB
        assert 40 <= row.gflops_per_sample <= 120  # ~80 GF/request

    def test_embeddings_dominate_everywhere(self):
        for row in self.rows.values():
            assert row.embedding_fraction > 0.9

    def test_funnel_complexity_ordering(self):
        assert (
            self.rows["retrieval"].gflops_per_sample
            < self.rows["early_stage"].gflops_per_sample
            < self.rows["late_stage"].gflops_per_sample
            < self.rows["hstu_retrieval"].gflops_per_sample
            < self.rows["hstu_ranking"].gflops_per_sample
        )


class TestFigure6Zoo:
    def setup_method(self):
        self.models = figure6_models()

    def test_nine_models(self):
        assert [m.name for m in self.models] == [
            "LC1", "LC2", "LC3", "LC4", "LC5", "HC1", "HC2", "HC3", "HC4",
        ]

    def test_complexity_bands(self):
        """Section 7: LC 15-105 MF/sample; HC 480-1000 MF/sample, with
        over-60x spread across late-stage models."""
        flops = {
            m.name: m.graph().flops_per_sample(m.batch) / 1e6 for m in self.models
        }
        for name in ("LC1", "LC2", "LC3", "LC4", "LC5"):
            assert 10 <= flops[name] <= 130, name
        for name in ("HC1", "HC2", "HC3", "HC4"):
            assert 250 <= flops[name] <= 1100, name
        assert max(flops.values()) / min(flops.values()) > 20

    def test_lc1_has_largest_batch(self):
        batches = {m.name: m.batch for m in self.models}
        assert batches["LC1"] == 4096
        assert batches["LC1"] == max(batches.values())

    def test_hc1_biggest_batch_above_100mf(self):
        """Section 7: HC1's 2K batch is the largest of any model with
        >100 MFLOPS/sample."""
        big = [m for m in self.models
               if m.graph().flops_per_sample(m.batch) > 100e6]
        hc1 = [m for m in big if m.name == "HC1"][0]
        assert hc1.batch == max(m.batch for m in big)

    def test_hc3_hc4_sharded(self):
        shards = {m.name: m.accelerators for m in self.models}
        assert shards["HC3"] == 2
        assert shards["HC4"] == 2
        assert shards["LC1"] == 1

    def test_gpu_batches_at_least_mtia(self):
        for m in self.models:
            assert (m.gpu_batch or m.batch) >= m.batch

    def test_graph_at_builds_other_batches(self):
        m = self.models[0]
        assert m.graph_at(128).flops_per_sample(128) == pytest.approx(
            m.graph().flops_per_sample(m.batch), rel=0.05
        )
