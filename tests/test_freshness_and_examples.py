"""Tests for the weight-freshness model, plus example smoke tests."""

import subprocess
import sys

import pytest

from repro.arch import mtia1_spec, mtia2i_spec
from repro.perf import freshness_quality_gain, weight_update_latency


class TestFreshness:
    def test_eager_orders_of_magnitude_fresher(self):
        """Section 3.3: eager mode enables real-time weight updates."""
        report = weight_update_latency(2 << 30, mtia2i_spec())
        assert report.eager_update_s < 0.1
        assert report.graph_republish_s > 300
        assert report.speedup > 1000

    def test_compression_speeds_updates(self):
        chip = mtia2i_spec()
        raw = weight_update_latency(8 << 30, chip)
        compressed = weight_update_latency(8 << 30, chip, compression_saved_fraction=0.5)
        assert compressed.eager_update_s < raw.eager_update_s

    def test_mtia1_updates_slower_but_same_order(self):
        new = weight_update_latency(1 << 30, mtia2i_spec())
        old = weight_update_latency(1 << 30, mtia1_spec())
        assert old.eager_update_s > new.eager_update_s

    def test_quality_gain_monotone(self):
        fresh = freshness_quality_gain(60)
        stale = freshness_quality_gain(24 * 3600)
        assert fresh > stale
        assert 0 < stale < fresh <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weight_update_latency(-1, mtia2i_spec())
        with pytest.raises(ValueError):
            freshness_quality_gain(-1)


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "llm_feasibility.py", "capacity_planning.py",
     "sdc_campaign.py", "fleet_failover.py", "surrogate_sweep.py",
     "codesign_search.py"],
)
def test_fast_examples_run(script):
    """The quick examples execute cleanly end to end (the slow journey
    and productionization examples are exercised by the benchmarks)."""
    result = subprocess.run(
        [sys.executable, f"examples/{script}"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
