"""Tests for repro.codesign: the derived-chip constructor, the derived
cost model, the Pareto machinery, and a tiny end-to-end seeded search
(bit-for-bit deterministic, anchors ordered, every front point exact).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch import mtia2i_spec
from repro.codesign import (
    CandidateEval,
    CodesignObjective,
    DesignSpace,
    SearchConfig,
    derive_chip,
    dominates,
    front_ranks,
    pareto_front,
    run_codesign_search,
    select_by_rank,
)
from repro.graph import OpGraph, fc
from repro.models import figure6_models
from repro.tco.model import MTIA2I_COST, derived_cost_inputs
from repro.tensors import model_input, weight
from repro.tensors.tensor import stable_uid_scope
from repro.units import GB, GHZ, GiB, MiB

BASE = mtia2i_spec()


def _zoo(*names):
    by_name = {m.name: m for m in figure6_models()}
    return [by_name[n] for n in names]


# -- derive_chip ------------------------------------------------------


def test_derive_chip_no_overrides_is_base_object():
    assert derive_chip(BASE) is BASE


def test_derive_chip_name_only_changes_nothing_else():
    chip = derive_chip(BASE, name="renamed")
    assert chip.name == "renamed"
    assert dataclasses.replace(chip, name=BASE.name) == BASE


def test_derive_chip_rejects_degenerate_axes():
    with pytest.raises(ValueError):
        derive_chip(BASE, num_pes=0)
    with pytest.raises(ValueError):
        derive_chip(BASE, num_pes=30)  # not a square grid
    with pytest.raises(ValueError):
        derive_chip(BASE, frequency_hz=-1.0)
    with pytest.raises(ValueError):
        derive_chip(BASE, sram_capacity_bytes=0)
    with pytest.raises(ValueError):
        derive_chip(BASE, dram_bandwidth_bytes_per_s=float("nan"))
    with pytest.raises(ValueError):
        derive_chip(BASE, gemm_to_simd=0.5)  # ratio below 1
    with pytest.raises(ValueError):
        derive_chip(BASE, noc_bandwidth_bytes_per_s=True)  # bool


def test_derive_chip_identity_values_reproduce_physicals():
    chip = derive_chip(
        BASE,
        num_pes=BASE.num_pes,
        frequency_hz=BASE.frequency_hz,
        sram_capacity_bytes=BASE.sram.capacity_bytes,
        dram_capacity_bytes=BASE.dram.capacity_bytes,
    )
    assert chip.die_area_mm2 == pytest.approx(BASE.die_area_mm2)
    assert chip.typical_watts == pytest.approx(BASE.typical_watts)
    assert chip.tdp_watts == pytest.approx(BASE.tdp_watts)
    assert chip.noc_bandwidth_bytes_per_s == pytest.approx(
        BASE.noc_bandwidth_bytes_per_s
    )


def test_derive_chip_scaling_is_physical():
    more_pes = derive_chip(BASE, num_pes=144)
    assert more_pes.num_pes == 144
    scale = 144 / BASE.num_pes
    for dtype, flops in BASE.gemm.peak_flops.items():
        assert more_pes.gemm.peak_flops[dtype] == pytest.approx(
            flops * scale
        )
    assert more_pes.die_area_mm2 > BASE.die_area_mm2
    assert more_pes.typical_watts > BASE.typical_watts

    faster = derive_chip(BASE, frequency_hz=1.5 * GHZ)
    freq = 1.5 * GHZ / BASE.frequency_hz
    assert faster.design_frequency_hz == 1.5 * GHZ
    # Compute scales linearly; power superlinearly (f * V(f)^2).
    assert faster.gemm.peak_flops[
        next(iter(BASE.gemm.peak_flops))
    ] == pytest.approx(
        BASE.gemm.peak_flops[next(iter(BASE.gemm.peak_flops))] * freq
    )
    assert faster.typical_watts > BASE.typical_watts * freq
    # Frequency alone does not change iso-frequency area.
    assert faster.die_area_mm2 == pytest.approx(BASE.die_area_mm2)

    big_sram = derive_chip(BASE, sram_capacity_bytes=512 * MiB)
    assert big_sram.sram.capacity_bytes == 512 * MiB
    assert big_sram.sram.bandwidth_bytes_per_s > BASE.sram.bandwidth_bytes_per_s
    assert big_sram.die_area_mm2 > BASE.die_area_mm2

    fat_simd = derive_chip(BASE, gemm_to_simd=8.0)
    thin_simd = derive_chip(BASE, gemm_to_simd=64.0)
    key = next(iter(BASE.vector.peak_flops))
    assert fat_simd.vector.peak_flops[key] > BASE.vector.peak_flops[key]
    assert thin_simd.vector.peak_flops[key] < BASE.vector.peak_flops[key]
    assert fat_simd.die_area_mm2 > thin_simd.die_area_mm2


def test_derived_chip_tco_not_from_base_figures():
    big = derive_chip(BASE, num_pes=144, sram_capacity_bytes=512 * MiB)
    base_cost = derived_cost_inputs(BASE)
    big_cost = derived_cost_inputs(big)
    assert base_cost.accelerator_cost_usd == pytest.approx(
        MTIA2I_COST.accelerator_cost_usd
    )
    assert big_cost.accelerator_cost_usd > base_cost.accelerator_cost_usd

    more_dram = derive_chip(BASE, dram_capacity_bytes=256 * GiB)
    assert derived_cost_inputs(more_dram).accelerator_cost_usd == pytest.approx(
        base_cost.accelerator_cost_usd + 3.5 * (256 - 128)
    )


# -- stable uid scope -------------------------------------------------


def _tiny_graph():
    graph = OpGraph(name="uid-probe")
    graph.add(fc(model_input(8, 16, name="x"), weight(16, 32, name="w")))
    return graph


def test_stable_uid_scope_makes_rebuilds_identical():
    with stable_uid_scope():
        first = _tiny_graph()
    with stable_uid_scope():
        second = _tiny_graph()
    assert [op.uid for op in first.ops] == [op.uid for op in second.ops]
    assert [
        t.uid for op in first.ops for t in (*op.inputs, *op.outputs)
    ] == [t.uid for op in second.ops for t in (*op.inputs, *op.outputs)]


def test_stable_uid_scope_leaves_global_counters_alone():
    before = _tiny_graph()
    with stable_uid_scope():
        scoped = _tiny_graph()
    after = _tiny_graph()
    assert scoped.ops[0].uid >= 1 << 40
    # Unscoped allocation resumes exactly where it left off.
    assert after.ops[0].uid - before.ops[0].uid == len(before.ops)


# -- pareto -----------------------------------------------------------


def _ev(label, perf, ppt, ppw):
    return CandidateEval(
        label=label, point=None, chip_name=label, fidelity="serving",
        exact=True, feasible=True, area_mm2=1.0, typical_watts=1.0,
        accelerator_cost_usd=1.0, models=(), perf=perf,
        perf_per_tco=ppt, perf_per_watt=ppw,
    )


def test_pareto_front_drops_dominated_keeps_tradeoffs():
    a = _ev("a", 2.0, 1.0, 1.0)
    b = _ev("b", 1.0, 2.0, 1.0)
    c = _ev("c", 1.0, 1.0, 2.0)
    d = _ev("d", 0.5, 0.5, 0.5)  # dominated by all three
    front = pareto_front([d, c, b, a])
    assert {e.label for e in front} == {"a", "b", "c"}
    assert dominates(a, d) and not dominates(a, b)


def test_pareto_front_keeps_identical_vectors():
    twins = [_ev("x", 1.0, 1.0, 1.0), _ev("y", 1.0, 1.0, 1.0)]
    front = pareto_front(twins)
    assert [e.label for e in front] == ["x", "y"]  # label-sorted, both kept


def test_front_ranks_peel_and_select_by_rank():
    evals = [
        _ev("best", 3.0, 3.0, 3.0),
        _ev("mid", 2.0, 2.0, 2.0),
        _ev("worst", 1.0, 1.0, 1.0),
    ]
    ranks = front_ranks(evals)
    assert [[e.label for e in r] for r in ranks] == [
        ["best"], ["mid"], ["worst"],
    ]
    assert [e.label for e in select_by_rank(evals, 2)] == ["best", "mid"]
    assert select_by_rank(evals, 0) == ()


# -- objectives -------------------------------------------------------


def test_objective_infeasible_chip_scores_zero():
    objective = CodesignObjective(models=_zoo("HC2"))
    tiny_dram = derive_chip(BASE, dram_capacity_bytes=1 * GiB)
    evaluation = objective.evaluate(tiny_dram, "tiny", "device")
    assert not evaluation.feasible
    assert evaluation.objectives() == (0.0, 0.0, 0.0)
    # Any feasible candidate dominates it, so the front drops it.
    feasible = objective.evaluate(BASE, "base", "device")
    assert feasible.feasible and dominates(feasible, evaluation)


def test_objective_rejects_unknown_fidelity_and_missing_surrogate():
    objective = CodesignObjective(models=_zoo("LC1"))
    with pytest.raises(ValueError):
        objective.evaluate(BASE, "base", "exactly")
    with pytest.raises(ValueError):
        objective.evaluate(BASE, "base", "surrogate")  # no surrogate fitted


def test_search_config_validation():
    with pytest.raises(ValueError):
        SearchConfig(iterations=0)
    with pytest.raises(ValueError):
        SearchConfig(t_initial=0.1, t_final=0.2)
    with pytest.raises(ValueError):
        SearchConfig(device_rung_keep=2, serving_rung_keep=4)
    with pytest.raises(ValueError):
        SearchConfig(train_chips=1)


# -- end-to-end search ------------------------------------------------


TINY_SPACE = DesignSpace(
    num_pes=(64, 144),
    frequency_hz=(1.1 * GHZ, 1.35 * GHZ),
    sram_capacity_bytes=(256 * MiB,),
    dram_capacity_bytes=(64 * GiB, 128 * GiB),
    dram_bandwidth_bytes_per_s=(204.8 * GB,),
    gemm_to_simd=(32.0,),
    noc_scale=(1.0,),
)

TINY_CONFIG = SearchConfig(
    seed=3, iterations=8, device_rung_keep=4, serving_rung_keep=2,
    train_chips=4,
)


def _tiny_search():
    return run_codesign_search(
        TINY_SPACE, _zoo("LC1"), TINY_CONFIG, duration_s=2.0
    )


def test_search_front_exact_deterministic_and_anchored():
    first = _tiny_search()
    second = _tiny_search()
    assert first == second  # bit-for-bit, dataclass equality all the way
    assert first.front
    assert first.all_front_exact
    assert all(e.fidelity == "serving" for e in first.front)
    assert first.mtia2_dominates_mtia1
    assert first.anchors[0].label == "MTIA 1"
    assert first.anchors[1].label == "MTIA 2i"
    assert all(a.exact for a in first.anchors)
    assert first.candidates_scored <= TINY_SPACE.size()
    assert first.eval_reduction > 0
    # The anchors are real specs, never grid points.
    assert all(a.point is None for a in first.anchors)


def test_search_respects_space_grid():
    result = _tiny_search()
    for evaluation in result.serving_evals:
        TINY_SPACE.indices_of(evaluation.point)  # raises if off-grid
