"""Tests for dynamic INT8 quantization numerics and analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_spec
from repro.quant import (
    ACCUMULATOR_DTYPE,
    INT32_ACC_MAX,
    accumulate_int8,
    dequantize_accumulator,
    fc_quantization_report,
    fp16_matmul_error,
    plan_model_quantization,
    quantization_error,
    quantize_activations,
    quantize_per_group,
    quantize_per_tensor,
    quantize_rowwise,
    quantize_weights_static,
    quantized_matmul,
)
from repro.tensors import GemmShape


def _skewed_activations(rows=128, cols=256, seed=0):
    """Rows with wildly different dynamic ranges — the case that separates
    per-tensor from row-wise quantization."""
    rng = np.random.default_rng(seed)
    scales = np.exp(rng.normal(0, 1.5, size=(rows, 1)))
    return rng.normal(0, 1, size=(rows, cols)) * scales


class TestQuantizeNumerics:
    def test_rowwise_roundtrip_error_small(self):
        x = _skewed_activations()
        q = quantize_rowwise(x)
        rel = np.abs(q.dequantize() - x) / (np.abs(x).max(axis=1, keepdims=True))
        assert np.max(rel) < 1 / 127

    def test_per_tensor_worse_on_skewed_rows(self):
        x = _skewed_activations()
        rowwise = np.linalg.norm(quantize_rowwise(x).dequantize() - x)
        tensor = np.linalg.norm(quantize_per_tensor(x).dequantize() - x)
        assert rowwise < tensor

    def test_group_quantization_between(self):
        """Per-N-batch-item lands between per-tensor and row-wise."""
        x = _skewed_activations(rows=256)
        err_row = np.linalg.norm(quantize_rowwise(x).dequantize() - x)
        err_group = np.linalg.norm(quantize_per_group(x, 32).dequantize() - x)
        err_tensor = np.linalg.norm(quantize_per_tensor(x).dequantize() - x)
        assert err_row <= err_group <= err_tensor

    def test_values_in_int8_range(self):
        q = quantize_rowwise(_skewed_activations())
        assert q.values.dtype == np.int8
        assert q.values.min() >= -127 and q.values.max() <= 127

    def test_weight_static_per_channel(self):
        w = _skewed_activations(32, 64).T  # skew across output channels
        q = quantize_weights_static(w)
        assert q.scales.shape == (1, 32)

    def test_matmul_error_ordering_matches_paper(self):
        """Section 4.4: row-wise activations + static weights ~ FP16
        quality; per-tensor is measurably worse."""
        x = _skewed_activations()
        rng = np.random.default_rng(3)
        w = rng.normal(0, 0.05, size=(256, 64))
        err_rowwise = quantization_error(x, w, "rowwise")
        err_tensor = quantization_error(x, w, "tensor")
        assert err_rowwise < err_tensor
        assert err_rowwise < 0.02  # small enough for quality parity

    def test_fp16_error_smaller_but_same_magnitude_class(self):
        x = _skewed_activations()
        rng = np.random.default_rng(3)
        w = rng.normal(0, 0.05, size=(256, 64))
        assert fp16_matmul_error(x, w) < quantization_error(x, w, "rowwise")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            quantized_matmul(np.ones((2, 2)), quantize_weights_static(np.ones((2, 2))), "colwise")

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            quantize_rowwise(np.ones(5))


@given(
    rows=st.integers(min_value=1, max_value=32),
    cols=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_rowwise_quantization_bounded_error_property(rows, cols, seed):
    """Property: row-wise symmetric INT8 keeps each element within one
    quantization step of the original."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, size=(rows, cols)) * np.exp(rng.normal(0, 1, size=(rows, 1)))
    q = quantize_rowwise(x.astype(np.float32))
    steps = np.abs(q.dequantize() - x.astype(np.float32)) / np.maximum(q.scales, 1e-12)
    assert np.max(steps) <= 0.5 + 1e-3


class TestWideAccumulation:
    """The explicit-accumulator refactor: INT8 x INT8 accumulates in a
    wide dtype and asserts the 32-bit hardware range loudly."""

    def test_accumulator_dtype_and_exactness(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-127, 128, size=(8, 32)).astype(np.int8)
        w = rng.integers(-127, 128, size=(32, 4)).astype(np.int8)
        acc = accumulate_int8(x, w)
        assert acc.dtype == ACCUMULATOR_DTYPE
        assert np.array_equal(acc, x.astype(np.int64) @ w.astype(np.int64))

    def test_overflow_raises_loudly(self):
        """Worst-case operands one element past the 32-bit range must
        raise, not wrap — the silent-corruption mode the assertion
        exists to exclude."""
        k = INT32_ACC_MAX // (127 * 127) + 1
        x = np.full((1, k), 127, dtype=np.int8)
        w = np.full((k, 1), 127, dtype=np.int8)
        with pytest.raises(OverflowError):
            accumulate_int8(x, w)

    def test_worst_case_inside_range_accumulates(self):
        k = INT32_ACC_MAX // (127 * 127) - 1
        x = np.full((1, k), 127, dtype=np.int8)
        w = np.full((k, 1), -127, dtype=np.int8)
        acc = accumulate_int8(x, w)
        assert acc[0, 0] == -k * 127 * 127

    def test_quantized_matmul_decomposition_consistent(self):
        """quantized_matmul is exactly quantize -> accumulate ->
        dequantize; the refactor changed structure, not numerics."""
        rng = np.random.default_rng(1)
        x = _skewed_activations(16, 32, seed=2)
        w = rng.normal(0, 1, size=(32, 8))
        qw = quantize_weights_static(w)
        direct = quantized_matmul(x, qw)
        qx = quantize_activations(x)
        manual = dequantize_accumulator(
            accumulate_int8(qx.values, qw.values), qx.scales, qw.scales
        )
        assert np.array_equal(direct, manual)

    def test_activation_mode_dispatch(self):
        x = _skewed_activations(8, 16)
        assert np.array_equal(
            quantize_activations(x, "tensor").values, quantize_per_tensor(x).values
        )
        assert np.array_equal(
            quantize_activations(x, "group:4").values,
            quantize_per_group(x, 4).values,
        )
        with pytest.raises(ValueError):
            quantize_activations(x, "per-banana")


class TestQuantAnalysis:
    def test_large_fc_net_speedup_about_1_6(self):
        """Section 4.4: ~1.6x for 2048 x 2048 x 2048."""
        report = fc_quantization_report(GemmShape(2048, 2048, 2048), mtia2i_spec())
        assert report.raw_speedup == pytest.approx(2.0, rel=0.05)
        assert 1.45 <= report.net_speedup <= 1.75

    def test_small_fc_not_worthwhile(self):
        report = fc_quantization_report(GemmShape(256, 512, 512), mtia2i_spec())
        assert not report.worthwhile

    def test_overhead_erodes_speedup_more_for_small_shapes(self):
        small = fc_quantization_report(GemmShape(512, 1024, 1024), mtia2i_spec())
        large = fc_quantization_report(GemmShape(4096, 4096, 4096), mtia2i_spec())
        assert large.net_speedup > small.net_speedup

    def test_model_plan_selects_only_large_layers(self):
        """Only the largest FCs amortize the overhead (section 4.4)."""
        from repro.graph import OpGraph, fc
        from repro.tensors import model_input, weight

        g = OpGraph()
        x = model_input(2048, 2048)
        g.add(fc(x, weight(2048, 2048), name="big"))
        small_in = model_input(2048, 64)
        g.add(fc(small_in, weight(64, 64), name="small"))
        plan = plan_model_quantization(g, mtia2i_spec())
        assert "big" in plan.quantized_layers
        assert "small" not in plan.quantized_layers

    def test_quality_sensitive_layers_excluded(self):
        from repro.graph import OpGraph, fc
        from repro.tensors import model_input, weight

        g = OpGraph()
        x = model_input(2048, 2048)
        g.add(fc(x, weight(2048, 2048), name="first_layer"))
        plan = plan_model_quantization(
            g, mtia2i_spec(), quality_sensitive=["first_layer"]
        )
        assert plan.quantized_layers == []

    def test_end_to_end_gain_marginal_for_mixed_model(self):
        """Section 4.4: e2e improvements are often a few percent."""
        import dataclasses

        from repro.models.dlrm import build_dlrm, small_dlrm

        g = build_dlrm(dataclasses.replace(small_dlrm(), batch=512))
        plan = plan_model_quantization(g, mtia2i_spec())
        assert 1.0 <= plan.end_to_end_speedup < 1.5
