"""Property-based tests for the fastsim substrate (repro.fastsim).

Hypothesis drives the primitives the fast engines are built on and
checks the contracts every consumer relies on:

* queue equivalence — the calendar queue pops arbitrary event sets in
  exactly the binary heap's total (time, tiebreak) order, whatever the
  bucket width or insertion order;
* total ordering under ties — same-timestamp events drain in tiebreak
  order regardless of push order, and the cluster tier's
  ``injection_sort_key`` is permutation-invariant (any arrangement of
  the same injections sorts to one schedule);
* memo transparency — a memoized kernel latency equals the recomputed
  one, always, for any lookup sequence;
* vectorization identity — ``seeded_poisson_arrivals`` produces the
  same floats AND the same final generator state as the scalar
  ``t += rng.exponential(...)`` loop it replaced, so any draw made
  after the stream is also unchanged.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import mtia2i_spec
from repro.autotune import measure_variant
from repro.cluster.simulator import (
    INJECTION_KINDS,
    Injection,
    injection_sort_key,
)
from repro.fastsim import (
    CalendarQueue,
    EventEngine,
    KernelLatencyMemo,
    seeded_poisson_arrivals,
)
from repro.kernels.gemm import default_variants
from repro.tensors import DType, GemmShape

# Event times in a range that spans many calendar buckets, including
# exact duplicates (drawn times are rounded to force collisions).
event_times = st.lists(
    st.floats(min_value=0.0, max_value=50.0,
              allow_nan=False, allow_infinity=False).map(
        lambda t: round(t, 1)
    ),
    min_size=0,
    max_size=120,
)


class TestQueueEquivalence:
    @given(times=event_times, width=st.sampled_from((0.05, 0.25, 1.0, 8.0)))
    @settings(max_examples=60, deadline=None)
    def test_calendar_pops_in_heap_order(self, times, width):
        heap = EventEngine(backend="heap")
        calendar = EventEngine(backend="calendar", bucket_width=width)
        for payload, time_s in enumerate(times):
            heap.schedule(time_s, payload)
            calendar.schedule(time_s, payload)
        assert len(heap) == len(calendar) == len(times)
        while heap:
            assert heap.pop() == calendar.pop()
        assert not calendar

    @given(times=event_times)
    @settings(max_examples=40, deadline=None)
    def test_rebucketing_preserves_order(self, times):
        # A pathologically wide bucket forces everything into one bucket
        # and (past the threshold) a rebucketing cascade; order must
        # survive the resize.
        wide = EventEngine(backend="calendar", bucket_width=1e6)
        reference = EventEngine(backend="heap")
        for payload, time_s in enumerate(times):
            wide.schedule(time_s, payload)
            reference.schedule(time_s, payload)
        drained = [wide.pop() for _ in range(len(wide))]
        expected = [reference.pop() for _ in range(len(reference))]
        assert drained == expected

    @given(
        ties=st.lists(st.integers(min_value=0, max_value=10**6),
                      min_size=1, max_size=60, unique=True),
        backend=st.sampled_from(("heap", "calendar")),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_timestamp_drains_in_tiebreak_order(self, ties, backend):
        # Every event lands at t=1.0; the explicit tiebreak alone must
        # decide the order, whatever order the pushes arrived in.
        engine = EventEngine(backend=backend)
        for tiebreak in ties:
            engine.schedule(1.0, f"payload-{tiebreak}", tiebreak=tiebreak)
        popped = [engine.pop()[1] for _ in range(len(engine))]
        assert popped == sorted(ties)

    @given(times=event_times)
    @settings(max_examples=40, deadline=None)
    def test_default_tiebreak_is_fifo_at_equal_times(self, times):
        # Without explicit tiebreaks the engine falls back to insertion
        # sequence, so equal-time events drain first-scheduled-first.
        engine = EventEngine(backend="calendar", bucket_width=0.5)
        for payload, time_s in enumerate(times):
            engine.schedule(time_s, payload)
        drained = [engine.pop() for _ in range(len(engine))]
        assert drained == sorted(drained, key=lambda e: (e[0], e[1]))

    @given(
        times=event_times,
        mid_drain=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaved_push_pop(self, times, mid_drain):
        # Pops interleaved with pushes (the simulator's actual access
        # pattern) still come out globally sorted.
        calendar = CalendarQueue(bucket_width=0.25)
        first, second = times[: len(times) // 2], times[len(times) // 2:]
        for seq, time_s in enumerate(first):
            calendar.push((time_s, seq, None))
        drained = [
            calendar.pop() for _ in range(min(mid_drain, len(calendar)))
        ]
        for seq, time_s in enumerate(second, start=len(first)):
            calendar.push((time_s, seq, None))
        while len(calendar):
            drained.append(calendar.pop())
        # Each pop returns the global minimum of what was enqueued, so
        # the prefix drained early is sorted and below the later pushes
        # only where times allow; the full multiset must be preserved.
        assert sorted(drained) == sorted(
            (t, s, None) for s, t in enumerate(first + second)
        )
        tail = drained[len(drained) - len(second) - (len(first) - mid_drain):]
        assert tail == sorted(tail)


injections = st.lists(
    st.builds(
        Injection,
        time_s=st.floats(min_value=0.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False).map(
            lambda t: round(t, 1)
        ),
        kind=st.sampled_from(INJECTION_KINDS),
        targets=st.lists(
            st.integers(min_value=0, max_value=7), max_size=3
        ).map(tuple),
        magnitude=st.floats(min_value=1.0, max_value=8.0,
                            allow_nan=False, allow_infinity=False),
    ),
    max_size=30,
)


class TestInjectionOrdering:
    @given(schedule=injections, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_sort_is_permutation_invariant(self, schedule, seed):
        shuffled = list(schedule)
        np.random.default_rng(seed).shuffle(shuffled)
        assert (
            sorted(shuffled, key=injection_sort_key)
            == sorted(schedule, key=injection_sort_key)
        )

    @given(schedule=injections)
    @settings(max_examples=40, deadline=None)
    def test_paired_events_net_to_recovered(self, schedule):
        # At one timestamp, the harming kind of each pair sorts before
        # its recovery kind, so zero-duration pairs leave replicas up.
        ordered = sorted(schedule, key=injection_sort_key)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.time_s == later.time_s:
                assert (
                    INJECTION_KINDS.index(earlier.kind)
                    <= INJECTION_KINDS.index(later.kind)
                )


gemm_dims = st.integers(min_value=1, max_value=4096)


class TestMemoTransparency:
    @given(
        m=gemm_dims, k=gemm_dims, n=gemm_dims,
        variant_indices=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=8
        ),
        dtype=st.sampled_from((DType.FP16, DType.INT8)),
    )
    @settings(max_examples=40, deadline=None)
    def test_memoized_equals_recomputed(
        self, m, k, n, variant_indices, dtype
    ):
        chip = mtia2i_spec()
        memo = KernelLatencyMemo(chip)
        shape = GemmShape(m, k, n)
        variants = default_variants()
        for index in variant_indices:
            variant = variants[index % len(variants)]
            bare = measure_variant(shape, variant, chip, dtype)
            # Twice through the memo: the miss then the hit.
            assert measure_variant(
                shape, variant, chip, dtype, memo=memo
            ) == bare
            assert measure_variant(
                shape, variant, chip, dtype, memo=memo
            ) == bare
        assert memo.hits >= len(variant_indices)


class TestVectorizedArrivals:
    @given(
        rate=st.floats(min_value=0.5, max_value=500.0,
                       allow_nan=False, allow_infinity=False),
        horizon=st.floats(min_value=0.01, max_value=30.0,
                          allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_loop_values_and_state(self, rate, horizon, seed):
        fast_rng = np.random.default_rng(seed)
        arrivals = seeded_poisson_arrivals(fast_rng, rate, horizon)

        scalar_rng = np.random.default_rng(seed)
        expected = []
        t = 0.0
        while True:
            t += scalar_rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            expected.append(t)

        assert arrivals.tolist() == expected
        # Same exponential draws consumed, in the same order: a draw
        # made after the stream must match too.
        assert fast_rng.random() == scalar_rng.random()
