"""Tests for the global fleet tier (repro.fleet_global).

Covers the region/fleet configuration (timezone phases, traffic shares,
power-budget throttles), the probe-eye health monitor (detection lag,
flap damping, up/down hysteresis), the deterministic spill router, the
drill compiler (outage/brownout/partition semantics, staged global
rollouts), the composed fleet simulator's conservation and attribution,
and the region-outage capacity study's verdict logic.
"""

import dataclasses
import math

import pytest

from repro.fleet_global import (
    FailoverConfig,
    FleetConfig,
    HealthMonitor,
    RegionEvent,
    RegionSpec,
    SpillRouter,
    build_drill,
    global_firmware_rollout,
    rate_for_users,
    region_outage_drill,
    run_capacity_study,
    run_fleet,
    standard_fleet,
    standard_regions,
)
from repro.fleet_global.regions import PEAK_RPS_PER_MILLION_USERS
from repro.fleet_global.simulator import TERMINAL_KINDS


class TestRegions:
    def test_rate_for_users_quotes_the_peak(self):
        # 2M users at peak-to-mean 2.0: peak rate 2*PEAK, mean rate half.
        assert rate_for_users(2.0, peak_to_mean=2.0) == pytest.approx(
            PEAK_RPS_PER_MILLION_USERS
        )
        with pytest.raises(ValueError):
            rate_for_users(0.0)

    def test_standard_regions_phase_eight_hours_apart(self):
        regions = standard_regions()
        assert [r.timezone_offset_h for r in regions] == [0.0, 8.0, 16.0]
        assert len({r.name for r in regions}) == 3

    def test_traffic_models_split_the_global_mean(self):
        fleet = standard_fleet()
        models = [fleet.traffic_model(spec) for spec in fleet.regions]
        total = sum(m.mean_rate_per_s for m in models)
        assert total == pytest.approx(fleet.global_mean_rate_s)
        # Timezone phase is threaded through phase_h, day compressed to
        # the run duration.
        assert [m.phase_h for m in models] == [0.0, 8.0, 16.0]
        assert all(m.day_length_s == fleet.duration_s for m in models)

    def test_traffic_share_skews_the_split(self):
        regions = (
            RegionSpec(name="big", traffic_share=3.0),
            RegionSpec(name="small", traffic_share=1.0),
        )
        fleet = FleetConfig(regions=regions)
        big = fleet.traffic_model(regions[0]).mean_rate_per_s
        small = fleet.traffic_model(regions[1]).mean_rate_per_s
        assert big == pytest.approx(3.0 * small)

    def test_unbudgeted_region_has_no_throttle(self):
        assert RegionSpec(name="r").throttle() is None

    def test_power_budget_throttles_the_region(self):
        tight = RegionSpec(name="r", power_budget_w_per_server=900.0)
        throttle = tight.throttle()
        assert throttle is not None
        assert throttle.multiplier(0.0) > 1.0  # service times stretch

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(regions=())
        with pytest.raises(ValueError):
            FleetConfig(regions=(
                RegionSpec(name="a"), RegionSpec(name="a"),
            ))
        with pytest.raises(KeyError):
            standard_fleet().region_index("atlantis")


class TestHealthMonitor:
    CFG = FailoverConfig(probe_interval_s=0.5, probe_lag_s=0.25,
                         down_after=2, up_after=2)

    def test_healthy_region_is_never_detected_down(self):
        monitor = HealthMonitor((), horizon_s=20.0, config=self.CFG)
        assert monitor.detected_down == ()
        assert not monitor.down_at(10.0)
        assert monitor.detection_lag_s() == math.inf

    def test_detection_lags_the_truth(self):
        monitor = HealthMonitor(
            ((5.0, 12.0),), horizon_s=20.0, config=self.CFG
        )
        assert len(monitor.detected_down) == 1
        start, end = monitor.detected_down[0]
        # Two failed probes after the outage plus probe lag: detection
        # strictly after the truth, recovery strictly after the heal.
        assert start > 5.0
        assert end > 12.0
        assert monitor.detection_lag_s() == pytest.approx(start - 5.0)
        assert not monitor.down_at(5.0)  # before detection
        assert monitor.down_at(start)
        assert monitor.down_at((start + end) / 2)
        assert not monitor.down_at(end)

    def test_flap_damping_ignores_a_single_bad_probe(self):
        # One probe observes the blip; the streak never reaches 2.
        blip = ((0.70, 0.80),)  # only the t=1.0 probe (observes 0.75) fails
        monitor = HealthMonitor(blip, horizon_s=10.0, config=self.CFG)
        assert monitor.detected_down == ()

    def test_unhealed_outage_stays_detected_down(self):
        monitor = HealthMonitor(
            ((5.0, math.inf),), horizon_s=10.0, config=self.CFG
        )
        assert monitor.detected_down[-1][1] == math.inf
        assert monitor.down_at(1e9)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(((5.0, 4.0),), horizon_s=10.0, config=self.CFG)


class TestSpillRouter:
    def _router(self, truth=((2.0, 8.0),), **kwargs):
        config = FailoverConfig(**kwargs) if kwargs else FailoverConfig()
        monitor = HealthMonitor(truth, horizon_s=20.0, config=config)
        return SpillRouter(
            monitors=[monitor, None, None],
            replicas=[4, 4, 8],
            capacity_requests=[100.0, 100.0, 200.0],
            config=config,
        )

    def test_healthy_home_stays_home(self):
        router = self._router()
        assignment = router.assign(0, 0.5)
        assert assignment.region == 0
        assert not assignment.spilled and not assignment.lb_shed

    def test_detected_down_spills_to_least_loaded_per_replica(self):
        router = self._router()
        down_at = router.monitors[0].detected_down[0][0]
        # Preload region 1 so region 2 is the lighter per-replica choice.
        for _ in range(4):
            router.assign(1, 0.1)
        assignment = router.assign(0, down_at + 0.1)
        assert assignment.spilled
        assert assignment.region == 2
        assert router.spilled_out[0] == 1
        assert router.spilled_in[2] == 1

    def test_index_breaks_per_replica_load_ties(self):
        router = self._router()
        down_at = router.monitors[0].detected_down[0][0]
        # Equal load per replica everywhere: lowest index wins.
        assert router.assign(0, down_at + 0.1).region == 1

    def test_spill_admission_cap_sheds_at_the_lb(self):
        config = FailoverConfig(max_spill_load=0.5)
        monitor = HealthMonitor(((0.0, 10.0),), horizon_s=20.0, config=config)
        router = SpillRouter(
            monitors=[monitor, None],
            replicas=[4, 4],
            capacity_requests=[100.0, 4.0],  # cap admits only 2 spills
            config=config,
        )
        outcomes = [router.assign(0, 1.0 + 0.01 * i) for i in range(4)]
        assert [a.spilled for a in outcomes] == [True, True, False, False]
        assert [a.lb_shed for a in outcomes] == [False, False, True, True]
        assert router.lb_shed == 2

    def test_partitioned_region_serves_home_but_refuses_spill(self):
        config = FailoverConfig()
        outage = HealthMonitor(((0.0, 10.0),), horizon_s=20.0, config=config)
        cut = HealthMonitor(((0.0, 10.0),), horizon_s=20.0, config=config)
        router = SpillRouter(
            monitors=[outage, None, None],
            replicas=[4, 4, 4],
            capacity_requests=[100.0, 100.0, 100.0],
            config=config,
            spill_monitors=[outage, cut, None],
        )
        down_at = outage.detected_down[0][0]
        # Region 1 is partitioned: its own traffic stays home...
        assert not router.assign(1, down_at + 0.1).spilled
        # ...but region 0's failover must skip it and land on region 2.
        assert router.assign(0, down_at + 0.1).region == 2

    def test_router_validation(self):
        with pytest.raises(ValueError):
            SpillRouter(monitors=[None], replicas=[1, 2],
                        capacity_requests=[1.0, 2.0])


class TestDrills:
    def test_region_event_validation(self):
        with pytest.raises(ValueError):
            RegionEvent(region="r", kind="earthquake", at_s=0.0,
                        duration_s=1.0)
        with pytest.raises(ValueError):
            RegionEvent(region="r", kind="outage", at_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            RegionEvent(region="r", kind="brownout", at_s=0.0,
                        duration_s=1.0, magnitude=0.0)

    def test_outage_takes_every_replica_and_marks_unreachable(self):
        fleet = standard_fleet(replicas_per_region=8)
        drill = region_outage_drill(fleet, region="eu-west", at_s=5.0,
                                    duration_s=3.0)
        schedule = drill.injections_for("eu-west")
        downed = {
            target for injection in schedule if injection.kind == "down"
            for target in injection.targets
        }
        assert downed == set(range(8))
        assert drill.unreachable_for("eu-west") == ((5.0, 8.0),)
        assert drill.injections_for("us-east") == ()
        assert drill.first_fault_s == 5.0
        assert drill.all_clear_s == 8.0

    def test_default_drill_covers_the_first_region_peak(self):
        fleet = standard_fleet()
        drill = region_outage_drill(fleet)
        start, end = drill.unreachable_for(fleet.regions[0].name)[0]
        # phase_h=0 peaks mid-run; the default window must cover it.
        assert start < fleet.duration_s / 2 < end

    def test_brownout_trips_a_fraction_of_power_domains(self):
        fleet = standard_fleet(replicas_per_region=8)
        drill = build_drill(fleet, [RegionEvent(
            region="us-east", kind="brownout", at_s=2.0, duration_s=4.0,
            magnitude=0.5,
        )])
        schedule = drill.injections_for("us-east")
        downed = {
            target for injection in schedule if injection.kind == "down"
            for target in injection.targets
        }
        assert 0 < len(downed) < 8  # partial, not a full outage
        assert drill.unreachable_for("us-east") == ()  # probes stay green

    def test_partition_is_isolated_not_unreachable(self):
        fleet = standard_fleet()
        drill = build_drill(fleet, [RegionEvent(
            region="ap-south", kind="partition", at_s=1.0, duration_s=2.0,
        )])
        assert drill.injections_for("ap-south") == ()
        assert drill.unreachable_for("ap-south") == ()
        assert drill.isolated_for("ap-south") == ((1.0, 3.0),)

    def test_global_rollout_staggers_regions(self):
        fleet = standard_fleet()
        schedules = global_firmware_rollout(
            fleet, at_s=2.0, region_gap_s=5.0
        )
        starts = [
            min(i.time_s for i in schedules[spec.name])
            for spec in fleet.regions
        ]
        assert starts == pytest.approx([2.0, 7.0, 12.0])
        with pytest.raises(ValueError):
            global_firmware_rollout(fleet, at_s=0.0, region_gap_s=-1.0)


def _small_fleet(**kwargs):
    defaults = dict(replicas_per_region=5, users_millions=2.0,
                    duration_s=12.0, seed=3)
    defaults.update(kwargs)
    return standard_fleet(**defaults)


class TestRunFleet:
    def test_quiet_day_conserves_and_never_spills(self):
        report = run_fleet(_small_fleet())
        assert (report.served + report.shed + report.timed_out
                + report.spilled_served == report.offered)
        assert report.spilled_served == 0 and report.lb_shed == 0
        assert report.offered == sum(r.offered for r in report.regions)

    def test_outage_conservation_holds_on_both_arms(self):
        fleet = _small_fleet()
        drill = region_outage_drill(fleet)
        for defended in (False, True):
            report = run_fleet(fleet, drill, defended=defended)
            assert (report.served + report.shed + report.timed_out
                    + report.spilled_served == report.offered)
            for region in report.regions:
                assert (region.served + region.spilled_served + region.shed
                        + region.timed_out == region.offered)

    def test_undefended_outage_loses_the_dead_regions_peak(self):
        fleet = _small_fleet()
        drill = region_outage_drill(fleet)
        undefended = run_fleet(fleet, drill, defended=False)
        dead = undefended.region(fleet.regions[0].name)
        assert dead.loss_fraction > 0.3
        assert undefended.spilled_served == 0  # no failover, no spill

    def test_defended_outage_spills_and_bounds_the_loss(self):
        fleet = _small_fleet()
        drill = region_outage_drill(fleet)
        undefended = run_fleet(fleet, drill, defended=False)
        defended = run_fleet(fleet, drill, defended=True)
        assert defended.spilled_served > 0
        assert defended.loss_fraction < undefended.loss_fraction / 3
        dead = defended.region(fleet.regions[0].name)
        assert dead.detection_lag_s < 2.0
        # Spilled answers pay both inter-region legs.
        assert defended.p99_latency_s >= undefended.p99_latency_s

    def test_spilled_latency_carries_the_round_trip(self):
        failover = FailoverConfig(spill_one_way_s=0.05)
        fleet = _small_fleet()
        drill = region_outage_drill(fleet)
        report = run_fleet(fleet, drill, defended=True, failover=failover)
        assert report.spilled_served > 0
        # Every latency at least clears the forward+return legs for the
        # spilled population: the global max must exceed 2x one-way.
        assert max(report.latencies_s) > 2 * failover.spill_one_way_s

    def test_terminal_events_attribute_exactly_once(self):
        fleet = _small_fleet()
        drill = region_outage_drill(fleet)
        report = run_fleet(fleet, drill, defended=True)
        terminal = sum(
            1 for region in report.regions
            for _, kind, _ in region.report.event_log
            if kind in TERMINAL_KINDS
        )
        assert terminal + report.lb_shed == report.offered
        assert len(report.latencies_s) == report.answered

    def test_fleet_runs_are_deterministic(self):
        fleet = _small_fleet()
        drill = region_outage_drill(fleet)
        assert run_fleet(fleet, drill, defended=True) == run_fleet(
            fleet, drill, defended=True
        )

    def test_seed_changes_the_run(self):
        base = run_fleet(_small_fleet())
        other = run_fleet(_small_fleet(seed=99))
        assert base.offered != other.offered or (
            base.latencies_s != other.latencies_s
        )

    def test_rollout_injections_layer_over_the_drill(self):
        fleet = _small_fleet()
        schedules = global_firmware_rollout(
            fleet, at_s=2.0, region_gap_s=3.0, regression_slow=1.5,
            rollback_at_s=4.0,
        )
        report = run_fleet(fleet, defended=True, extra_injections=schedules)
        assert (report.served + report.shed + report.timed_out
                + report.spilled_served == report.offered)


class TestCapacityStudy:
    def test_study_verdict_and_table(self):
        # The short 12 s day concentrates the detection-window loss, so
        # the loss budget scales up with it (the pinned study uses the
        # full day and the default budget).
        study = run_capacity_study(
            users_millions=2.0, sizes=(2, 3, 5), duration_s=12.0, seed=3,
            max_loss_fraction=0.05,
        )
        assert study.undefended_replicas is None
        assert study.defended_replicas is not None
        if study.baseline_replicas is not None:
            assert study.baseline_replicas <= study.defended_replicas
            assert study.overprovision_fraction >= 0.0
        table = study.table()
        assert "repl/region" in table
        assert "verdict" in study.summary() or "widen" in study.summary()
        scalars = study.scalars()
        assert scalars["capacity.undefended_replicas"] == -1.0

    def test_study_validation(self):
        with pytest.raises(ValueError):
            run_capacity_study(sizes=())
        with pytest.raises(ValueError):
            run_capacity_study(sizes=(0,))
