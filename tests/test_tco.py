"""Tests for the TCO model."""

import pytest

from repro.arch import gpu_server, mtia2i_server
from repro.tco import (
    GPU_COST,
    MTIA2I_COST,
    CostInputs,
    compare_platforms,
    measured_server_power_watts,
    perf_per_tco,
    perf_per_watt,
    server_tco,
)


class TestServerTco:
    def test_breakdown_components_positive(self):
        breakdown = server_tco(mtia2i_server(), MTIA2I_COST)
        assert breakdown.capex_per_year > 0
        assert breakdown.energy_per_year > 0
        assert breakdown.provisioning_per_year > 0
        assert breakdown.total_per_year == pytest.approx(
            breakdown.capex_per_year
            + breakdown.energy_per_year
            + breakdown.provisioning_per_year
        )

    def test_mtia_server_much_cheaper(self):
        """The structural fact behind the 44%: an MTIA server costs a
        fraction of a GPU server."""
        mtia = server_tco(mtia2i_server(), MTIA2I_COST)
        gpu = server_tco(gpu_server(), GPU_COST)
        assert gpu.total_per_year > 2 * mtia.total_per_year

    def test_capex_dominates_gpu_tco(self):
        gpu = server_tco(gpu_server(), GPU_COST)
        assert gpu.capex_per_year > gpu.energy_per_year

    def test_custom_power_input(self):
        low = server_tco(mtia2i_server(), MTIA2I_COST, avg_power_watts=1000)
        high = server_tco(mtia2i_server(), MTIA2I_COST, avg_power_watts=3000)
        assert high.energy_per_year > low.energy_per_year
        # Provisioning is nameplate-based, unchanged.
        assert high.provisioning_per_year == low.provisioning_per_year

    def test_cost_inputs_validation(self):
        with pytest.raises(ValueError):
            CostInputs(accelerator_cost_usd=1, platform_cost_usd=1, depreciation_years=0)
        with pytest.raises(ValueError):
            CostInputs(accelerator_cost_usd=1, platform_cost_usd=1, pue=0.9)


class TestMeasuredPower:
    """Threading measured execution power through the TCO model."""

    def _report(self):
        from repro.arch.mtia import mtia2i_spec
        from repro.models.zoo import hc1
        from repro.perf.executor import Executor

        model = hc1()
        return Executor(mtia2i_spec()).run(
            model.graph(), model.batch, warmup_runs=1
        )

    def test_measured_server_power_between_idle_and_nameplate(self):
        server = mtia2i_server()
        report = self._report()
        measured = measured_server_power_watts(server, report)
        assert measured < server.typical_power_watts
        assert measured > server.platform_power_watts * 0.8

    def test_report_lowers_energy_term_for_memory_bound_model(self):
        """A ranking model leaves the compute array partly idle, so its
        measured draw sits below nameplate typical — and the nameplate
        default silently overstates the energy bill."""
        server = mtia2i_server()
        report = self._report()
        nameplate = server_tco(server, MTIA2I_COST)
        measured = server_tco(server, MTIA2I_COST, report=report)
        assert measured.energy_per_year < nameplate.energy_per_year
        # Provisioning stays nameplate-based: racks are built for peak.
        assert measured.provisioning_per_year == nameplate.provisioning_per_year

    def test_measured_perf_per_watt_beats_nameplate(self):
        server = mtia2i_server()
        report = self._report()
        throughput = report.throughput_samples_per_s * server.accelerators_per_server
        measured = perf_per_watt(throughput, server=server, report=report)
        nameplate = perf_per_watt(throughput, server.typical_power_watts)
        assert measured > nameplate

    def test_perf_per_watt_requires_a_power_source(self):
        with pytest.raises(ValueError):
            perf_per_watt(1000.0)
        with pytest.raises(ValueError):
            perf_per_watt(1000.0, server=mtia2i_server())

    def test_explicit_power_wins_over_report(self):
        server = mtia2i_server()
        report = self._report()
        explicit = server_tco(
            server, MTIA2I_COST, avg_power_watts=1234.0, report=report
        )
        direct = server_tco(server, MTIA2I_COST, avg_power_watts=1234.0)
        assert explicit.energy_per_year == direct.energy_per_year


class TestComparison:
    def test_equal_perf_reflects_tco_gap(self):
        """If a chip-for-chip-weaker MTIA still matches the GPU server's
        total throughput, Perf/TCO tracks the cost ratio."""
        comparison = compare_platforms(
            "iso-perf",
            mtia_chip_throughput=1000,  # 24 chips -> 24k
            gpu_chip_throughput=3000,  # 8 GPUs -> 24k
            mtia_chip_power_w=65,
            gpu_chip_power_w=450,
        )
        assert comparison.mtia_server_throughput == pytest.approx(
            comparison.gpu_server_throughput
        )
        assert comparison.perf_per_tco_ratio > 2

    def test_tco_reduction_arithmetic(self):
        comparison = compare_platforms(
            "x", mtia_chip_throughput=1000, gpu_chip_throughput=3000,
            mtia_chip_power_w=65, gpu_chip_power_w=450,
        )
        expected = 1.0 - 1.0 / comparison.perf_per_tco_ratio
        assert comparison.tco_reduction == pytest.approx(expected)

    def test_sharding_costs_a_small_tax(self):
        base = compare_platforms(
            "x", 1000, 3000, 65, 450, mtia_accelerators_per_model=1
        )
        sharded = compare_platforms(
            "x", 1000, 3000, 65, 450, mtia_accelerators_per_model=2
        )
        assert sharded.mtia_server_throughput < base.mtia_server_throughput
        assert sharded.mtia_server_throughput > 0.9 * base.mtia_server_throughput

    def test_perf_per_watt_helper(self):
        assert perf_per_watt(1000, 500) == 2.0
        with pytest.raises(ValueError):
            perf_per_watt(1000, 0)

    def test_perf_per_tco_helper(self):
        value = perf_per_tco(1_000_000, mtia2i_server(), MTIA2I_COST)
        assert value > 0
