"""Tests for multi-model server co-location (paper section 3.4)."""

import pytest

from repro.arch import mtia2i_server, mtia2i_spec
from repro.fleet import (
    AllocationError,
    ColocationRequest,
    HOST_DRAM_AMPLIFICATION_NAIVE,
    HOST_DRAM_AMPLIFICATION_OPTIMIZED,
    colocate,
)
from repro.models import lc1, hc3
from repro.perf import Executor


@pytest.fixture(scope="module")
def lc1_report():
    model = lc1()
    return Executor(mtia2i_spec()).run(model.graph(), model.batch, warmup_runs=1)


@pytest.fixture(scope="module")
def hc3_report():
    model = hc3()
    return Executor(mtia2i_spec()).run(model.graph(), model.batch, warmup_runs=1)


class TestColocation:
    def test_placements_cover_all_instances(self, lc1_report, hc3_report):
        result = colocate(
            mtia2i_server(),
            [
                ColocationRequest("LC1", lc1_report, instances=20),
                ColocationRequest("HC3", hc3_report, instances=2,
                                  accelerators_per_instance=2),
            ],
        )
        assert len(result.placements) == 22
        used = [a for p in result.placements for a in p.accelerator_ids]
        assert len(used) == len(set(used)) == 24

    def test_sharded_instances_stay_on_one_socket(self, hc3_report):
        result = colocate(
            mtia2i_server(),
            [ColocationRequest("HC3", hc3_report, instances=4,
                               accelerators_per_instance=2)],
        )
        per_socket = mtia2i_server().accelerators_per_socket
        for placement in result.placements:
            sockets = {a // per_socket for a in placement.accelerator_ids}
            assert len(sockets) == 1

    def test_optimized_copies_avoid_host_bound(self, lc1_report):
        """After Meta's copy-elimination work, a full server of LC1 fits
        within host DRAM bandwidth."""
        result = colocate(
            mtia2i_server(),
            [ColocationRequest("LC1", lc1_report, instances=24)],
            amplification=HOST_DRAM_AMPLIFICATION_OPTIMIZED,
        )
        assert result.host_bound_sockets == []
        assert all(p.derate == 1.0 for p in result.placements)

    def test_naive_copies_make_host_the_bottleneck(self, lc1_report):
        """Section 3.4: before the optimizations, host DRAM bandwidth is
        the bottleneck for low-complexity models on all 24 accelerators."""
        result = colocate(
            mtia2i_server(),
            [ColocationRequest("LC1", lc1_report, instances=24)],
            amplification=HOST_DRAM_AMPLIFICATION_NAIVE,
        )
        assert len(result.host_bound_sockets) == 2
        assert all(p.derate < 1.0 for p in result.placements)

    def test_high_complexity_models_do_not_contend(self, hc3_report):
        """HC models move few host bytes per second — no contention."""
        result = colocate(
            mtia2i_server(),
            [ColocationRequest("HC3", hc3_report, instances=12,
                               accelerators_per_instance=2)],
            amplification=HOST_DRAM_AMPLIFICATION_NAIVE,
        )
        assert result.host_bound_sockets == []

    def test_total_throughput_aggregates(self, lc1_report):
        result = colocate(
            mtia2i_server(),
            [ColocationRequest("LC1", lc1_report, instances=6)],
        )
        assert result.total_effective_throughput("LC1") == pytest.approx(
            6 * lc1_report.throughput_samples_per_s, rel=0.01
        )

    def test_over_capacity_rejected(self, lc1_report):
        with pytest.raises(AllocationError):
            colocate(
                mtia2i_server(),
                [ColocationRequest("LC1", lc1_report, instances=25)],
            )

    def test_request_validation(self, lc1_report):
        with pytest.raises(ValueError):
            ColocationRequest("x", lc1_report, instances=0)
