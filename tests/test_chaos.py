"""Tests for the chaos tier (repro.chaos).

Covers the fault-domain topology and its correlated injection builders
(including the physics gating: no budget breach, no trip; no thermal
excursion, no throttle), the overload-defense state machines, the
brownout ladder, the scenario catalog, and the campaign scoring —
plus the contract the whole tier rests on: with every hook left at its
default, the cluster simulator's output is identical to a run that
never heard of the chaos tier.
"""

import dataclasses
import math

import pytest

from repro.chaos import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    BrownoutConfig,
    BrownoutController,
    BrownoutRung,
    CircuitBreaker,
    DefenseConfig,
    DefenseRuntime,
    FaultDomainTopology,
    TokenBucket,
    default_ladder,
    firmware_rollout,
    host_failure,
    measure_ladder_quality,
    merge_schedules,
    network_partition,
    power_domain_trip,
    quality_cost_of_run,
    rack_failure,
    run_scenario,
    scenario_by_name,
    smoke_config,
    standard_catalog,
    thermal_emergency,
    thermal_slow_factor,
)
from repro.chaos.campaign import CampaignConfig
from repro.cluster import ClusterConfig, ServiceModel, run_cluster
from repro.reliability.firmware import emergency_rollout
from repro.serving import Request, with_priorities
import numpy as np


class TestFaultDomainTopology:
    def test_sizes_round_up(self):
        topo = FaultDomainTopology(
            replicas=10, replicas_per_host=2, hosts_per_rack=2,
            racks_per_power_domain=2,
        )
        assert topo.num_hosts == 5
        assert topo.num_racks == 3
        assert topo.num_power_domains == 2

    def test_membership_nests(self):
        topo = FaultDomainTopology(replicas=16)
        for r in range(topo.replicas):
            host = topo.host_of(r)
            assert r in topo.replicas_on_host(host)
            assert topo.rack_of(r) == host // topo.hosts_per_rack
            assert topo.power_domain_of(r) == (
                topo.rack_of(r) // topo.racks_per_power_domain
            )
            assert topo.tor_of(r) == topo.rack_of(r)

    def test_racks_partition_the_replicas(self):
        topo = FaultDomainTopology(replicas=13, replicas_per_host=3)
        seen = []
        for rack in range(topo.num_racks):
            seen.extend(topo.replicas_in_rack(rack))
        assert sorted(seen) == list(range(topo.replicas))

    def test_power_domains_partition_the_replicas(self):
        topo = FaultDomainTopology(replicas=12, hosts_per_rack=2)
        seen = []
        for domain in range(topo.num_power_domains):
            seen.extend(topo.replicas_in_power_domain(domain))
        assert sorted(seen) == list(range(topo.replicas))

    def test_bounds_are_checked(self):
        topo = FaultDomainTopology(replicas=4)
        with pytest.raises(ValueError):
            topo.host_of(4)
        with pytest.raises(ValueError):
            topo.replicas_in_rack(99)
        with pytest.raises(ValueError):
            FaultDomainTopology(replicas=0)


class TestInjectionBuilders:
    topo = FaultDomainTopology(
        replicas=12, replicas_per_host=2, hosts_per_rack=2,
        racks_per_power_domain=2,
    )

    def test_host_failure_is_a_down_up_pair(self):
        schedule = host_failure(self.topo, host=1, at_s=5.0, duration_s=3.0)
        assert [i.kind for i in schedule] == ["down", "up"]
        assert schedule[0].targets == self.topo.replicas_on_host(1)
        assert schedule[1].time_s == pytest.approx(8.0)

    def test_rack_failure_takes_every_host_together(self):
        schedule = rack_failure(self.topo, rack=0, at_s=1.0, duration_s=2.0)
        assert schedule[0].targets == self.topo.replicas_in_rack(0)
        assert len(schedule[0].targets) == 4  # 2 hosts x 2 replicas

    def test_partition_uses_partition_heal_kinds(self):
        schedule = network_partition(self.topo, rack=1, at_s=1.0,
                                     duration_s=2.0)
        assert [i.kind for i in schedule] == ["partition", "heal"]

    def test_power_trip_holds_within_budget(self):
        assert power_domain_trip(
            self.topo, domain=0, at_s=1.0, duration_s=2.0,
            demand_w_per_server=100.0, budget_w_per_server=200.0,
        ) == []

    def test_power_trip_fires_on_breach(self):
        schedule = power_domain_trip(
            self.topo, domain=0, at_s=1.0, duration_s=2.0,
            demand_w_per_server=250.0, budget_w_per_server=200.0,
        )
        assert [i.kind for i in schedule] == ["down", "up"]
        assert schedule[0].targets == self.topo.replicas_in_power_domain(0)

    def test_thermal_slow_factor_is_physics_gated(self):
        # A load the heatsink can reject leaves the tier alone...
        assert thermal_slow_factor(30.0) == 1.0
        assert thermal_emergency(self.topo, rack=0, at_s=1.0,
                                 duration_s=2.0, power_w=30.0) == []
        # ...and a real excursion throttles by the derived ratio.
        factor = thermal_slow_factor(150.0)
        assert factor > 1.5
        schedule = thermal_emergency(self.topo, rack=0, at_s=1.0,
                                     duration_s=2.0, power_w=150.0)
        assert schedule[0].kind == "slow"
        assert schedule[0].magnitude == pytest.approx(factor)
        assert schedule[1].kind == "slow_end"

    def test_firmware_rollout_honors_the_concurrency_cap(self):
        plan = emergency_rollout()
        schedule = firmware_rollout(self.topo, at_s=0.0, plan=plan)
        waves = [i for i in schedule if i.kind == "down"]
        cap = max(1, int(self.topo.num_hosts
                         * plan.max_concurrent_restart_fraction))
        per_wave_hosts = [
            len({r // self.topo.replicas_per_host for r in w.targets})
            for w in waves
        ]
        assert all(hosts <= cap for hosts in per_wave_hosts)
        # Every host restarts exactly once across the waves.
        restarted = [r for w in waves for r in w.targets]
        assert sorted(restarted) == list(range(self.topo.replicas))

    def test_firmware_regression_ends_at_rollback(self):
        schedule = firmware_rollout(
            self.topo, at_s=0.0, restart_s=1.0, wave_gap_s=2.0,
            plan=emergency_rollout(), regression_slow=1.5,
            rollback_at_s=4.0,
        )
        slows = [i for i in schedule if i.kind == "slow"]
        ends = [i for i in schedule if i.kind == "slow_end"]
        assert slows and ends
        # No wave starting after the rollback carries the bad build.
        assert all(i.time_s - 1.0 < 4.0 for i in slows)
        assert len(ends) == 1 and ends[0].time_s == pytest.approx(4.0)
        # The rollback restores exactly the hosts that were regressed.
        assert sorted(ends[0].targets) == sorted(
            r for i in slows for r in i.targets
        )

    def test_merge_schedules_time_orders(self):
        a = host_failure(self.topo, host=0, at_s=5.0, duration_s=1.0)
        b = host_failure(self.topo, host=1, at_s=2.0, duration_s=1.0)
        merged = merge_schedules(a, b)
        assert [i.time_s for i in merged] == sorted(i.time_s for i in merged)

    def test_merge_schedules_is_argument_order_independent(self):
        """The documented tie-break: same-timestamp injections sort by
        kind declaration order, then targets, then magnitude — so any
        argument order merges to the same schedule."""
        a = host_failure(self.topo, host=0, at_s=3.0, duration_s=2.0)
        b = host_failure(self.topo, host=1, at_s=3.0, duration_s=2.0)
        c = rack_failure(self.topo, rack=1, at_s=3.0, duration_s=1.0)
        assert merge_schedules(a, b, c) == merge_schedules(c, b, a)
        assert merge_schedules(b, a) == merge_schedules(a, b)

    def test_same_timestamp_down_sorts_before_up(self):
        from repro.cluster import Injection, injection_sort_key

        # A zero-duration outage: the pair shares one timestamp.  The
        # tie-break must execute down before up so the net state is
        # recovered, not wedged.
        down = Injection(time_s=4.0, kind="down", targets=(0,))
        up = Injection(time_s=4.0, kind="up", targets=(0,))
        merged = merge_schedules([up], [down])
        assert [i.kind for i in merged] == ["down", "up"]
        assert injection_sort_key(down) < injection_sort_key(up)
        # ...and likewise for the other paired kinds.
        slow = Injection(time_s=4.0, kind="slow", targets=(0,),
                         magnitude=2.0)
        slow_end = Injection(time_s=4.0, kind="slow_end", targets=(0,))
        assert injection_sort_key(slow) < injection_sort_key(slow_end)
        cut = Injection(time_s=4.0, kind="partition", targets=(0,))
        heal = Injection(time_s=4.0, kind="heal", targets=(0,))
        assert injection_sort_key(cut) < injection_sort_key(heal)

    def test_sort_key_is_a_total_order_over_all_fields(self):
        from repro.cluster import Injection, injection_sort_key

        events = [
            Injection(time_s=1.0, kind="down", targets=(1,)),
            Injection(time_s=1.0, kind="down", targets=(0,)),
            Injection(time_s=1.0, kind="slow", targets=(0,), magnitude=3.0),
            Injection(time_s=1.0, kind="slow", targets=(0,), magnitude=2.0),
        ]
        keys = [injection_sort_key(e) for e in sorted(
            events, key=injection_sort_key
        )]
        assert keys == sorted(keys)
        # Distinct events get distinct keys: every field participates.
        assert len(set(keys)) == len(events)

    def test_simulator_sorts_same_time_injections_deterministically(self):
        """The constructor applies the same total order, so permuting a
        schedule with same-timestamp events cannot change the run."""
        from repro.cluster import Injection

        service = ServiceModel(mean_service_s=0.02, jitter_sigma=0.2)
        requests = [
            Request(arrival_s=0.01 * i, samples=8, request_id=i)
            for i in range(40)
        ]
        schedule = [
            Injection(time_s=0.1, kind="down", targets=(0,)),
            Injection(time_s=0.1, kind="down", targets=(1,)),
            Injection(time_s=0.1, kind="up", targets=(0,)),
            Injection(time_s=0.3, kind="up", targets=(1,)),
        ]
        config = ClusterConfig(replicas=3, num_hosts=2, seed=0)
        forward = run_cluster(config, service, requests,
                              injections=schedule)
        backward = run_cluster(config, service, requests,
                               injections=list(reversed(schedule)))
        assert forward == backward


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)  # burst exhausted
        assert bucket.take(0.1)  # 1 token refilled after 100 ms
        assert not bucket.take(0.1)

    def test_time_must_not_run_backwards(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        bucket.take(5.0)
        with pytest.raises(ValueError):
            bucket.take(4.0)


class TestCircuitBreaker:
    config = BreakerConfig(failure_threshold=2, cooldown_s=1.0,
                           probe_quota=2, close_after_successes=2)

    def test_trips_after_threshold_failures(self):
        breaker = CircuitBreaker(self.config)
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(0.5)  # inside cooldown

    def test_half_open_probes_then_closes(self):
        breaker = CircuitBreaker(self.config)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)  # cooldown elapsed -> half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.on_dispatch(1.0)
        assert breaker.allow(1.0)
        breaker.on_dispatch(1.0)
        assert not breaker.allow(1.0)  # probe quota spent
        breaker.record_success(1.1)
        breaker.record_success(1.2)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(self.config)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.on_dispatch(1.0)
        breaker.record_failure(1.1)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(1.5)  # cooldown restarted at 1.1
        assert breaker.allow(2.2)


class TestDefenseRuntime:
    def test_default_config_is_inert(self):
        assert DefenseConfig().inert
        assert not DefenseConfig.full().inert

    def test_deadline_propagation_counts_drops(self):
        runtime = DefenseRuntime(DefenseConfig(deadline_s=0.3))
        assert not runtime.past_deadline(0.2, arrival_s=0.0)
        assert runtime.past_deadline(0.4, arrival_s=0.0)
        assert runtime.deadline_drops == 1

    def test_backoff_grows_and_caps(self):
        runtime = DefenseRuntime(DefenseConfig(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5,
            backoff_jitter=0.0,
        ))
        rng = np.random.default_rng(0)
        delays = [runtime.backoff_s(a, rng) for a in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_backoff_jitter_is_seeded_and_bounded(self):
        runtime = DefenseRuntime(DefenseConfig(
            backoff_base_s=0.1, backoff_jitter=0.5, backoff_max_s=1.0,
        ))
        first = [runtime.backoff_s(0, np.random.default_rng(7))
                 for _ in range(10)]
        second = [runtime.backoff_s(0, np.random.default_rng(7))
                  for _ in range(10)]
        assert first == second  # same seed, same jitter
        assert all(0.05 <= d <= 0.15 for d in first)

    def test_retry_tokens_deny_when_exhausted(self):
        runtime = DefenseRuntime(DefenseConfig(
            retry_tokens_per_s=1.0, retry_token_burst=1.0,
        ))
        assert runtime.take_retry_token(0.0)
        assert not runtime.take_retry_token(0.0)
        assert runtime.retries_denied == 1


class TestBrownout:
    def _config(self):
        return BrownoutConfig(
            rungs=(
                BrownoutRung("full", 1.0, 0),
                BrownoutRung("cheap", 0.5, 0),
                BrownoutRung("tiny", 0.25, 1),
            ),
            enter_at=8.0, exit_at=4.0, step=4.0,
        )

    def test_hysteresis_escalates_and_descends(self):
        controller = BrownoutController(self._config())
        assert controller.on_route(0.0, outstanding=4, up_replicas=1) == 0
        assert controller.on_route(1.0, outstanding=9, up_replicas=1) == 1
        # Between exit (4) and the next enter (12): holds at level 1.
        assert controller.on_route(2.0, outstanding=6, up_replicas=1) == 1
        assert controller.on_route(3.0, outstanding=13, up_replicas=1) == 2
        assert controller.on_route(4.0, outstanding=1, up_replicas=1) == 0

    def test_priority_floor_sheds_best_effort_at_depth(self):
        controller = BrownoutController(self._config())
        controller.on_route(0.0, outstanding=20, up_replicas=1)  # -> tiny
        assert controller.admit(1)
        assert not controller.admit(0)
        assert controller.shed_below_floor == 1

    def test_rung_zero_must_be_full_service(self):
        with pytest.raises(ValueError):
            BrownoutConfig(rungs=(BrownoutRung("half", 0.5, 0),))

    def test_default_ladder_gets_monotonically_cheaper(self):
        ladder = default_ladder()
        multipliers = [r.service_multiplier for r in ladder.rungs]
        assert multipliers[0] == 1.0
        assert multipliers == sorted(multipliers, reverse=True)
        assert ladder.rungs[-1].priority_floor >= 1

    def test_ladder_quality_orders_by_damage(self):
        deltas = measure_ladder_quality(num_requests=6000, seed=0)
        assert set(deltas) == {"full", "fp16", "int8", "tiny"}
        # The control arm's own delta is the noise floor; the tiny
        # model's quality damage towers over it.
        assert abs(deltas["fp16"]) <= abs(deltas["tiny"])
        assert deltas["tiny"] > abs(deltas["full"]) + 0.005

    def test_quality_cost_weights_by_served(self):
        deltas = {"full": 0.0, "tiny": 0.1}
        cost = quality_cost_of_run((("full", 75), ("tiny", 25)), deltas)
        assert cost == pytest.approx(0.025)
        assert quality_cost_of_run((), deltas) == 0.0


class TestScenarios:
    def test_catalog_names_are_unique(self):
        names = [s.name for s in standard_catalog()]
        assert len(names) == len(set(names)) == 7

    def test_every_scenario_builds_against_the_default_topology(self):
        topo = CampaignConfig().topology()
        for scenario in standard_catalog():
            schedule = scenario.injections(topo)
            assert schedule, scenario.name
            assert all(i.time_s >= scenario.fault_at_s for i in schedule)

    def test_retry_storm_ships_impatient_clients(self):
        storm = scenario_by_name("retry_storm")
        assert storm.client is not None
        assert storm.client.max_retries is None

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_by_name("solar_flare")


class TestCampaign:
    def test_headline_pair_on_the_smoke_fleet(self):
        config = smoke_config()
        storm = scenario_by_name("retry_storm")
        off = run_scenario(storm, config, defended=False)
        on = run_scenario(storm, config, defended=True)
        # The metastable signature: the fault clears, goodput does not.
        assert not off.recovered
        assert off.post_clear_goodput_ratio < 0.5
        assert on.recovered
        assert on.post_clear_goodput_ratio >= config.recovery_threshold
        # Conservation holds under the storm, defended or not.
        for outcome in (off, on):
            report = outcome.report
            assert (report.served + report.shed + report.timed_out
                    == report.offered)
        assert math.isinf(off.time_to_recovery_s)
        assert off.scalars()[
            "retry_storm.undefended.time_to_recovery_s"] == -1.0

    def test_scenario_runs_are_deterministic(self):
        config = smoke_config()
        scenario = scenario_by_name("single_host")
        first = run_scenario(scenario, config, defended=True)
        second = run_scenario(scenario, config, defended=True)
        assert first.report == second.report
        assert first.scalars() == second.scalars()

    def test_campaign_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(utilization=1.5)
        with pytest.raises(ValueError):
            CampaignConfig(recovery_threshold=0.0)


class TestByteIdentityContract:
    """Inert chaos hooks must not perturb the cluster simulator."""

    def _requests(self):
        rng = np.random.default_rng(3)
        clock, requests = 0.0, []
        for i in range(300):
            clock += float(rng.exponential(0.01))
            requests.append(Request(arrival_s=clock, samples=8, request_id=i))
        return requests

    def test_inert_hooks_leave_the_run_untouched(self):
        config = ClusterConfig(replicas=4, num_hosts=2, seed=11,
                               fault_rate_per_replica_hour=150.0)
        service = ServiceModel(mean_service_s=0.02, jitter_sigma=0.4)
        requests = self._requests()
        bare = run_cluster(config, service, requests)
        hooked = run_cluster(
            config, service, requests,
            defense=DefenseRuntime(DefenseConfig()),  # inert
            injections=(), brownout=None, client=None,
        )
        assert bare == hooked

    def test_priorities_default_to_zero_and_replace_cleanly(self):
        requests = self._requests()
        assert all(r.priority == 0 for r in requests)
        weighted = with_priorities(requests, (0.5, 0.3, 0.2), seed=0)
        assert len(weighted) == len(requests)
        assert {r.priority for r in weighted} <= {0, 1, 2}
        assert [r.arrival_s for r in weighted] == [
            r.arrival_s for r in requests
        ]
        again = with_priorities(requests, (0.5, 0.3, 0.2), seed=0)
        assert [r.priority for r in again] == [r.priority for r in weighted]


def test_campaign_scalars_cover_both_arms():
    config = dataclasses.replace(smoke_config(), duration_s=12.0)
    storm = scenario_by_name("single_host")
    off = run_scenario(storm, config, defended=False)
    on = run_scenario(storm, config, defended=True)
    assert set(off.scalars()) == {
        "single_host.undefended.post_clear_goodput",
        "single_host.undefended.time_to_recovery_s",
        "single_host.undefended.slo_breach_s",
        "single_host.undefended.unavailability",
    }
    assert all(key.startswith("single_host.defended.") for key in on.scalars())
