"""Differential tests: the fastsim engines versus the reference paths.

The PR-8 determinism contract: porting the hot simulation loops onto
:mod:`repro.fastsim` (ready-heap scheduling, calendar-queue events,
clean-artifact caching) changes *runtime only*.  Every report field —
every float, every count, every event-log entry, and the Chrome trace
bytes — must match the reference implementation exactly, not
approximately.  These tests run the same seeded scenarios through each
engine and assert structural equality, which for tuples of floats is
byte-identity.

The reference arms are:

* serving — ``schedule_batches(engine="reference")``, the original
  O(n^2) pending-list scan kept verbatim in
  :mod:`repro.fastsim.reference`;
* cluster / chaos / fleet — ``engine="reference"``, the heap engine
  plus per-event revalidation of every incremental counter against a
  from-scratch recount (the NeuroScalar-style online verifier), and
  ``engine="calendar"``, the bucketed queue that must pop in the same
  total order as the heap.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.chaos import CampaignConfig as ChaosCampaignConfig
from repro.chaos import run_scenario, scenario_by_name
from repro.cluster import (
    AdmissionConfig,
    ClientRetryConfig,
    ClusterConfig,
    Injection,
    default_service_model,
    run_cluster,
)
from repro.fleet_global import region_outage_drill, run_fleet, standard_fleet
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceWriter
from repro.serving.batcher import CoalescingConfig, coalesce
from repro.serving.scheduler import ModelJobProfile, schedule_batches
from repro.serving.workload import poisson_stream

ENGINES = ("fast", "calendar", "reference")


def _schedule_fingerprint(result, registry):
    """Every observable of one scheduling run, floats untouched."""
    depth = registry.histogram("serving.scheduler.runnable_depth")
    return (
        result.device_busy_s,
        result.makespan_s,
        tuple(
            (c.remote_done_s, c.merge_done_s, c.batch.formed_at_s)
            for c in result.completions
        ),
        tuple(result.request_latencies()),
        result.latency_percentile(99.0),
        depth._count,
        depth._sum,
        tuple(depth._buckets),
    )


class TestServingScheduler:
    def test_fast_matches_reference(self):
        profile = ModelJobProfile(
            remote_time_s=0.004,
            merge_time_s=0.009,
            remote_jobs_per_batch=2,
            dispatch_overhead_s=0.001,
            merge_submission_delay_s=0.0008,
        )
        requests = poisson_stream(
            rate_per_s=150.0, duration_s=8.0,
            samples_per_request=64, seed=11,
        )
        batches = coalesce(
            requests,
            CoalescingConfig(
                window_s=0.01, max_parallel_windows=4, max_batch_samples=512
            ),
        )
        fingerprints = {}
        for engine in ("fast", "reference"):
            registry = MetricsRegistry(enabled=True)
            result = schedule_batches(
                batches, profile, registry=registry, engine=engine
            )
            fingerprints[engine] = _schedule_fingerprint(result, registry)
        assert fingerprints["fast"] == fingerprints["reference"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            schedule_batches(
                (), ModelJobProfile(
                    remote_time_s=0.001, merge_time_s=0.001,
                    remote_jobs_per_batch=1,
                ),
                engine="warp",
            )


def _chaotic_cluster_run(engine: str):
    """A cluster run exercising every event family the engines order:
    arrivals, departures, faults, autoscale-free injections (outage,
    slowdown, partition), and client retry timers."""
    service = default_service_model()
    requests = poisson_stream(
        rate_per_s=9.0 / service.mean_service_s * 0.75,
        duration_s=12.0,
        samples_per_request=64,
        seed=5,
    )
    config = ClusterConfig(
        replicas=9,
        num_hosts=3,
        policy="po2",
        admission=AdmissionConfig(),
        fault_rate_per_replica_hour=40.0,
        seed=5,
    )
    injections = (
        Injection(time_s=2.0, kind="down", targets=(0, 1)),
        Injection(time_s=4.0, kind="up", targets=(0, 1)),
        Injection(time_s=5.0, kind="slow", targets=(2, 3), magnitude=4.0),
        Injection(time_s=7.0, kind="slow_end", targets=(2, 3)),
        Injection(time_s=8.0, kind="partition", targets=(4,)),
        Injection(time_s=9.5, kind="heal", targets=(4,)),
    )
    return run_cluster(
        config, service, requests,
        client=ClientRetryConfig(timeout_s=0.3, max_retries=2),
        injections=injections,
        engine=engine,
    )


class TestClusterEngines:
    def test_all_engines_byte_identical(self):
        reports = {engine: _chaotic_cluster_run(engine) for engine in ENGINES}
        assert reports["fast"] == reports["reference"]
        assert reports["fast"] == reports["calendar"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            _chaotic_cluster_run("warp")


def _trace_sha256(tracer: TraceWriter) -> str:
    document = json.dumps(tracer.document(), sort_keys=True)
    return hashlib.sha256(document.encode()).hexdigest()


class TestChaosScenario:
    def test_defended_storm_identical_across_engines(self):
        scenario = scenario_by_name("retry_storm")
        config = ChaosCampaignConfig(duration_s=15.0)
        outcomes = {}
        hashes = {}
        for engine in ENGINES:
            tracer = TraceWriter("chaos-equivalence")
            outcomes[engine] = run_scenario(
                scenario, config, defended=True, tracer=tracer, engine=engine
            )
            hashes[engine] = _trace_sha256(tracer)
        assert outcomes["fast"] == outcomes["reference"]
        assert outcomes["fast"] == outcomes["calendar"]
        # The Chrome trace is the strictest observable: every event's
        # timestamp, lane, and payload, serialized — equal bytes or bust.
        assert hashes["fast"] == hashes["reference"] == hashes["calendar"]


class TestFleetDay:
    def test_outage_drill_identical_across_engines(self):
        fleet = standard_fleet(replicas_per_region=4, duration_s=24.0, seed=3)
        drill = region_outage_drill(fleet)
        reports = {
            engine: run_fleet(fleet, drill, defended=True, engine=engine)
            for engine in ENGINES
        }
        assert reports["fast"] == reports["reference"]
        assert reports["fast"] == reports["calendar"]
