"""Tests for the silent-data-corruption subsystem (sections 5.1/5.2/5.6).

The campaign-level assertions mirror the subsystem's acceptance bar:
bit-identical reruns under one seed, a monotone protection ladder, and
ECC + ABFT cutting undetected NE-impacting corruptions by >= 10x.
"""

import dataclasses

import numpy as np
import pytest

from repro.fleet.abtest import run_ab_test
from repro.reliability.overclock import DESIGN_FREQUENCY_HZ
from repro.resilience.faults import fault_rates_from_reliability
from repro.sdc import (
    CampaignConfig,
    CorruptionSite,
    CtrServingPipeline,
    DEFAULT_SITE_WEIGHTS,
    FleetScreeningModel,
    ProtectionProfile,
    abft_activation_checksum,
    abft_col_check,
    abft_overhead_fraction,
    abft_row_check,
    abft_weight_checksum,
    accumulator_bound,
    expected_blast_window_s,
    hash_rows,
    plan_injections,
    read_word_through_ecc,
    read_word_unprotected,
    run_campaign,
    sdc_fault_rates,
    sites_in,
    standard_profiles,
    triple_flip_escape_rate,
    verify_row_hashes,
)
from repro.sdc.sites import (
    flip_fp16_bit,
    flip_int8_bit,
    read_array_word,
    recurrent_rows,
    write_array_word,
)
from repro.units import GHZ


class TestEccWordChannel:
    WORD = 0xDEAD_BEEF_1234_5678

    def test_single_flip_corrects(self):
        for bit in (0, 31, 63):
            result = read_word_through_ecc(self.WORD, (bit,))
            assert result.outcome == "corrected"
            assert result.data == self.WORD

    def test_double_flip_detects_without_miscorrect(self):
        rng = np.random.default_rng(0)
        for _ in range(40):
            bits = tuple(int(b) for b in rng.choice(64, size=2, replace=False))
            result = read_word_through_ecc(self.WORD, bits)
            assert result.outcome == "detected"
            assert result.data == self.WORD  # surfaced, not consumed

    def test_triple_flip_mostly_escapes_silently(self):
        """Odd-weight errors alias to single-bit syndromes, so SEC-DED
        miscorrects nearly all of them — the documented escape path."""
        rate = triple_flip_escape_rate(samples=300, seed=1)
        assert rate > 0.9
        assert triple_flip_escape_rate(samples=300, seed=1) == rate

    def test_silent_escape_returns_a_different_word(self):
        rng = np.random.default_rng(2)
        seen_silent = False
        for _ in range(20):
            bits = tuple(int(b) for b in rng.choice(64, size=3, replace=False))
            result = read_word_through_ecc(self.WORD, bits)
            if result.outcome == "silent":
                seen_silent = True
                assert result.data != self.WORD
        assert seen_silent

    def test_unprotected_path_keeps_every_flip(self):
        """The ECC-off arm corrupts the same logical bits, so coverage
        deltas are attributable to the codec alone."""
        bits = (3, 17, 44)
        expected = self.WORD ^ sum(1 << b for b in bits)
        result = read_word_unprotected(self.WORD, bits)
        assert result.data == expected
        assert result.outcome == "silent"
        assert read_word_unprotected(self.WORD, ()).outcome == "clean"


class TestAbft:
    @staticmethod
    def _operands(seed=0, m=16, k=24, n=6):
        rng = np.random.default_rng(seed)
        x = rng.integers(-127, 128, size=(m, k)).astype(np.int8)
        w = rng.integers(-127, 128, size=(k, n)).astype(np.int8)
        acc = x.astype(np.int64) @ w.astype(np.int64)
        return x, w, acc

    def test_clean_identities_hold_exactly(self):
        x, w, acc = self._operands()
        assert abft_col_check(acc, abft_activation_checksum(x), w)
        assert abft_row_check(acc, x, abft_weight_checksum(w))

    def test_weight_corruption_breaks_row_check_only(self):
        """The row check folds the publish-time weight checksum, so a
        corrupted weight word breaks it; the col check recomputes with
        the corrupted weights and cannot see the change."""
        x, w, acc = self._operands()
        w_checksum = abft_weight_checksum(w)  # publish time, clean
        corrupt = w.copy()
        flip_int8_bit(corrupt, 5, 6)
        acc_bad = x.astype(np.int64) @ corrupt.astype(np.int64)
        assert not abft_row_check(acc_bad, x, w_checksum)
        assert abft_col_check(acc_bad, abft_activation_checksum(x), corrupt)

    def test_activation_corruption_breaks_col_check_only(self):
        """The col checksum predates the datapath, so a stuck activation
        lane breaks it; the row check recomputes from the corrupted
        activations and cannot."""
        x, w, acc = self._operands()
        x_checksum = abft_activation_checksum(x)  # pre-datapath, clean
        corrupt = x.copy()
        flip_int8_bit(corrupt, 9, 3)
        acc_bad = corrupt.astype(np.int64) @ w.astype(np.int64)
        assert not abft_col_check(acc_bad, x_checksum, w)
        assert abft_row_check(acc_bad, corrupt, abft_weight_checksum(w))

    def test_accumulator_corruption_breaks_both(self):
        x, w, acc = self._operands()
        acc_bad = acc.copy()
        acc_bad[4, 2] ^= 1 << 12
        assert not abft_col_check(acc_bad, abft_activation_checksum(x), w)
        assert not abft_row_check(acc_bad, x, abft_weight_checksum(w))

    def test_overhead_small_at_production_shape(self):
        assert abft_overhead_fraction(256, 1024, 1024) < 0.01
        with pytest.raises(ValueError):
            abft_overhead_fraction(0, 1, 1)

    def test_accumulator_bound(self):
        assert accumulator_bound(64) == 64 * 127 * 127


class TestRowHashing:
    def test_intact_table_verifies(self):
        table = np.arange(32, dtype=np.float16).reshape(4, 8)
        assert verify_row_hashes(table, hash_rows(table)) is None

    def test_any_bit_flip_is_located(self):
        table = np.arange(32, dtype=np.float16).reshape(4, 8)
        published = hash_rows(table)
        flip_fp16_bit(table, 17, 9)
        assert verify_row_hashes(table, published) == 17 // 8

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            hash_rows(np.zeros(4, dtype=np.float16))


class TestScreeningModel:
    def test_no_marginal_chips_at_design_frequency(self):
        model = FleetScreeningModel(operating_frequency_hz=DESIGN_FREQUENCY_HZ)
        assert model.marginal_chip_fraction() < 1e-12

    def test_overclock_opens_a_tail(self):
        shipped = FleetScreeningModel()  # 1.35 GHz
        assert 0 < shipped.marginal_chip_fraction() < 0.01
        aggressive = FleetScreeningModel(operating_frequency_hz=1.5 * GHZ)
        assert aggressive.marginal_chip_fraction() > shipped.marginal_chip_fraction()

    def test_sdc_rate_scales_with_tail(self):
        model = FleetScreeningModel()
        assert model.sdc_rate_per_chip_hour() == pytest.approx(
            model.marginal_chip_fraction() * 0.05
        )

    def test_latency_and_overhead_tradeoff(self):
        weekly = FleetScreeningModel()
        daily = dataclasses.replace(weekly, interval_s=86_400.0)
        assert daily.mean_detection_latency_s() < weekly.mean_detection_latency_s()
        assert daily.overhead_fraction() > weekly.overhead_fraction()

    def test_perfect_sensitivity_means_half_interval(self):
        model = FleetScreeningModel(sensitivity=1.0)
        assert model.mean_detection_latency_s() == pytest.approx(
            0.5 * model.interval_s
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetScreeningModel(sensitivity=1.5)
        with pytest.raises(ValueError):
            FleetScreeningModel(interval_s=100.0, screen_duration_s=200.0)


class TestInjectionPlanning:
    _ARGS = dict(
        weight_values_size=64, table_shape=(128, 16), num_features=64
    )

    def test_deterministic_fixed_order(self):
        first = plan_injections(100, np.random.default_rng(5), **self._ARGS)
        again = plan_injections(100, np.random.default_rng(5), **self._ARGS)
        assert first == again
        other = plan_injections(100, np.random.default_rng(6), **self._ARGS)
        assert first != other

    def test_all_sites_drawn_and_counted(self):
        injections = plan_injections(400, np.random.default_rng(0), **self._ARGS)
        counts = sites_in(injections)
        assert sum(counts.values()) == 400
        assert all(counts[site] > 0 for site in DEFAULT_SITE_WEIGHTS)

    def test_memory_faults_target_both_stores(self):
        injections = plan_injections(600, np.random.default_rng(1), **self._ARGS)
        stores = {
            i.store for i in injections if i.site is CorruptionSite.MEMORY_WORD
        }
        assert stores == {"embedding", "weights"}

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_injections(0, np.random.default_rng(0), **self._ARGS)
        with pytest.raises(ValueError):
            plan_injections(
                10, np.random.default_rng(0),
                weight_values_size=64, table_shape=(128, 16), num_features=64,
                site_weights={site: 0.0 for site in CorruptionSite},
            )


class TestBitSurgery:
    def test_word_roundtrip(self):
        array = np.arange(16, dtype=np.int8).reshape(4, 4)
        word = read_array_word(array, 1)
        write_array_word(array, 1, word ^ (1 << 9))
        assert read_array_word(array, 1) == word ^ (1 << 9)
        with pytest.raises(IndexError):
            read_array_word(array, 2)

    def test_int8_flip_is_involutive(self):
        array = np.arange(8, dtype=np.int8)
        original = array.copy()
        flip_int8_bit(array, 3, 7)
        assert array[3] != original[3]
        flip_int8_bit(array, 3, 7)
        assert np.array_equal(array, original)

    def test_fp16_flip_touches_one_element(self):
        array = np.zeros((2, 4), dtype=np.float16)
        flip_fp16_bit(array, 5, 14)
        assert np.count_nonzero(array) == 1

    def test_recurrent_rows_deterministic(self):
        first = recurrent_rows(1000, 0.02, seed=3)
        assert np.array_equal(first, recurrent_rows(1000, 0.02, seed=3))
        assert 0 < first.sum() < 100


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return CtrServingPipeline(seed=0)

    @pytest.fixture(scope="class")
    def requests(self, pipeline):
        return pipeline.sample(1500, seed=1)

    def test_clean_serve_passes_every_check(self, pipeline, requests):
        result = pipeline.serve(requests, pipeline.clean_state())
        assert result.abft_ok and result.range_guard_ok and result.row_hash_ok
        assert not result.overflowed
        assert np.all((result.predictions > 0) & (result.predictions < 1))

    def test_weight_flip_breaks_row_check(self, pipeline, requests):
        state = pipeline.clean_state()
        flip_int8_bit(state.weight_values, 10, 6)
        result = pipeline.serve(requests, state)
        assert not result.abft_row_ok
        assert result.abft_col_ok  # col check recomputes with corrupt W
        assert result.row_hash_ok  # the table is untouched

    def test_table_flip_breaks_row_hash_not_abft(self, pipeline, requests):
        state = pipeline.clean_state()
        flip_fp16_bit(state.table, 33, 2)
        result = pipeline.serve(requests, state)
        assert not result.row_hash_ok
        assert result.abft_ok  # checksums postdate the gather

    def test_exponent_blowup_trips_embed_guard(self, pipeline, requests):
        state = pipeline.clean_state()
        # Force a huge exponent on an element some request gathers.
        state.table.reshape(-1).view(np.uint16)[5] = 0x7A00  # ~5e4
        result = pipeline.serve(requests, state)
        assert not result.embed_guard_ok
        assert not result.row_hash_ok

    def test_serve_is_deterministic(self, pipeline, requests):
        first = pipeline.serve(requests, pipeline.clean_state())
        again = pipeline.serve(requests, pipeline.clean_state())
        assert np.array_equal(first.predictions, again.predictions)

    def test_surviving_corruption_propagates_through_ab_harness(self, pipeline):
        model = pipeline.ab_model()
        clean = run_ab_test(
            model, pipeline.backend(), pipeline.backend(),
            num_requests=30000, seed=5,
        )
        assert clean.quality_parity()
        corrupt = pipeline.clean_state()
        flip_int8_bit(corrupt.weight_values, 3, 6)
        broken = run_ab_test(
            model, pipeline.backend(), pipeline.backend(corrupt),
            num_requests=30000, seed=5,
        )
        assert broken.treatment_ne > broken.control_ne
        assert broken.ne_delta > 2 * clean.ne_delta
        assert not broken.quality_parity()


class TestCampaign:
    CONFIG = CampaignConfig(trials=200, requests=4000, seed=0)

    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(self.CONFIG)

    def test_bit_identical_rerun(self, result):
        assert run_campaign(self.CONFIG) == result

    def test_seed_changes_the_fault_list(self, result):
        other = run_campaign(dataclasses.replace(self.CONFIG, seed=3))
        assert other != result

    def test_ladder_monotone(self, result):
        """Adding detectors never reduces coverage or increases the
        silent NE-impacting residue (identical fault list per rung)."""
        coverages = [s.coverage for s in result.profiles]
        assert coverages == sorted(coverages)
        residue = [s.undetected_ne_impacting for s in result.profiles]
        assert residue == sorted(residue, reverse=True)
        overheads = [s.overhead_fraction for s in result.profiles]
        assert overheads == sorted(overheads)

    def test_acceptance_ratio_at_least_10x(self, result):
        """The subsystem's acceptance bar: ECC + ABFT cut undetected
        NE-impacting corruptions >= 10x versus no protection."""
        assert result.summary_for("none").undetected_ne_impacting >= 10
        assert result.undetected_impacting_ratio() >= 10

    def test_none_profile_detects_nothing(self, result):
        none = result.summary_for("none")
        assert none.coverage == 0.0
        assert none.overhead_fraction == 0.0

    def test_full_profile_near_total_coverage(self, result):
        full = result.summary_for("full")
        assert full.coverage > 0.95
        assert full.undetected_ne_impacting == 0

    def test_every_profile_faces_the_same_faults(self, result):
        lists = [
            tuple(o.injection for o in s.outcomes) for s in result.profiles
        ]
        assert all(faults == lists[0] for faults in lists[1:])

    def test_three_plus_sites_and_detectors_exercised(self, result):
        assert sum(1 for c in result.site_counts.values() if c > 0) >= 3
        full = result.summary_for("full")
        assert len(full.detector_counts) >= 3


class TestResilienceLink:
    CONFIG = CampaignConfig(trials=120, requests=2500, seed=2)

    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(self.CONFIG)

    def test_only_sdc_fields_replaced(self, result):
        base = fault_rates_from_reliability()
        rates = sdc_fault_rates(result.summary_for("full"), base=base)
        assert rates.deadlock_per_device_hour == base.deadlock_per_device_hour
        assert rates.ecc_ue_per_device_hour == base.ecc_ue_per_device_hour
        assert rates.throttle_per_device_hour == base.throttle_per_device_hour
        assert rates.sdc_per_device_hour == pytest.approx(
            FleetScreeningModel().sdc_rate_per_chip_hour()
        )

    def test_protection_shrinks_the_blast_window(self, result):
        """Undetected-impacting events poison traffic for the out-of-band
        window; detection replaces that with measured latency."""
        unprotected = expected_blast_window_s(result.summary_for("none"))
        protected = expected_blast_window_s(result.summary_for("full"))
        assert protected < unprotected
        assert unprotected > 0

    def test_window_validation(self, result):
        with pytest.raises(ValueError):
            expected_blast_window_s(
                result.summary_for("none"), undetected_window_s=0.0
            )


def test_standard_profiles_ladder():
    names = [p.name for p in standard_profiles()]
    assert names == ["none", "ecc", "ecc+abft", "full"]
    assert ProtectionProfile("x").enabled("overflow")  # always-on hardware
    assert not ProtectionProfile("x").enabled("abft")
