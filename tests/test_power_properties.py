"""Property-based tests for repro.power invariants.

Hypothesis drives the thermal and power models with randomized inputs
and checks the physics that must hold for *every* input:

* RC stepping converges to the closed-form steady state for random
  networks, powers, and (oversized) time steps — the explicit-Euler
  sub-stepping can never diverge or settle on the wrong fixed point;
* the per-op activity trace integrates back to the executor's energy
  for random op profiles and temperatures — power attribution splits
  energy, it never creates or destroys it;
* water-filling conserves the budget and never over-grants a chip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.mtia import mtia2i_spec
from repro.perf.executor import ExecutionReport, OpProfile
from repro.power import RcStage, ThermalNetwork, activity_trace, water_fill

finite = dict(allow_nan=False, allow_infinity=False)

stages = st.lists(
    st.builds(
        RcStage,
        name=st.just("stage"),
        heat_capacity_j_per_c=st.floats(min_value=1.0, max_value=500.0, **finite),
        resistance_c_per_w=st.floats(min_value=0.01, max_value=2.0, **finite),
    ),
    min_size=1,
    max_size=4,
)


def _profile(index, time_s, compute_frac, sram_s, dram_s):
    return OpProfile(
        op_name=f"op{index}",
        op_type="fc",
        time_s=time_s,
        compute_s=time_s * compute_frac,
        issue_s=0.0,
        dram_s=dram_s,
        sram_s=sram_s,
        noc_s=0.0,
        host_s=0.0,
        launch_s=0.0,
        bottleneck="compute",
        dram_bytes=0.0,
        sram_bytes=0.0,
        flops=0.0,
    )


op_specs = st.lists(
    st.tuples(
        st.floats(min_value=1e-6, max_value=0.01, **finite),  # time_s
        st.floats(min_value=0.0, max_value=1.0, **finite),  # compute fraction
        st.floats(min_value=0.0, max_value=0.01, **finite),  # sram_s
        st.floats(min_value=0.0, max_value=0.01, **finite),  # dram_s
    ),
    min_size=1,
    max_size=8,
)


class TestThermalConvergence:
    @given(
        stages=stages,
        power=st.floats(min_value=0.0, max_value=150.0, **finite),
        dt=st.floats(min_value=0.1, max_value=500.0, **finite),
    )
    @settings(max_examples=40, deadline=None)
    def test_stepping_converges_to_closed_form(self, stages, power, dt):
        network = ThermalNetwork(stages, ambient_c=40.0)
        target = network.steady_state(power)
        temps = network.initial_state()
        # March well past the slowest system mode — bounded above by
        # (total C) x (total R), which dominates every eigenvalue of the
        # chain.  Sub-stepping makes any caller dt stable, so grow dt
        # rather than truncate time when the network is slow.
        total_c = sum(s.heat_capacity_j_per_c for s in network.stages)
        horizon = 30.0 * total_c * network.total_resistance_c_per_w
        dt = max(dt, horizon / 3000.0)
        for _ in range(int(np.ceil(horizon / dt)) + 1):
            temps = network.step(temps, power, dt)
        assert np.all(np.isfinite(temps))
        assert np.max(np.abs(temps - target)) < max(0.05, 0.001 * power)

    @given(stages=stages, power=st.floats(min_value=0.0, max_value=150.0, **finite))
    @settings(max_examples=40, deadline=None)
    def test_steady_state_is_a_fixed_point(self, stages, power):
        network = ThermalNetwork(stages, ambient_c=40.0)
        target = network.steady_state(power)
        stepped = network.step(target, power, 10.0)
        assert np.max(np.abs(stepped - target)) < 1e-6

    @given(stages=stages, power=st.floats(min_value=0.0, max_value=150.0, **finite))
    @settings(max_examples=40, deadline=None)
    def test_temperatures_decrease_along_the_chain(self, stages, power):
        network = ThermalNetwork(stages, ambient_c=40.0)
        target = network.steady_state(power)
        assert np.all(np.diff(target) <= 1e-9)
        assert target[-1] >= network.ambient_c - 1e-9


class TestTraceIntegral:
    @given(
        specs=op_specs,
        temperature=st.one_of(
            st.none(), st.floats(min_value=20.0, max_value=120.0, **finite)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_integrates_to_executor_energy(self, specs, temperature):
        chip = mtia2i_spec()
        profiles = [_profile(i, *spec) for i, spec in enumerate(specs)]
        # The executor's own energy model, reproduced per op.
        leakage = chip.leakage_power_w(temperature)
        dynamic = chip.typical_watts * (1.0 - chip.idle_power_fraction)
        energy = sum(
            p.time_s * (leakage + dynamic * min(1.0, p.compute_s / p.time_s))
            for p in profiles
        )
        report = ExecutionReport(
            chip_name=chip.name,
            model_name="synthetic",
            batch=1,
            op_profiles=profiles,
            dense_hit_rate=1.0,
            sparse_hit_rate=0.0,
            activation_buffer_bytes=0,
            lls_bytes=0,
            llc_bytes=0,
            activations_in_lls=False,
            weight_bytes=0,
            energy_j=energy,
        )
        trace = activity_trace(report, chip, temperature_c=temperature)
        assert trace.energy_j == pytest.approx(report.energy_j, rel=1e-9, abs=1e-15)
        for segment in trace.segments:
            assert segment.compute_w >= -1e-12
            assert segment.sram_w >= -1e-12
            assert segment.lpddr_w >= -1e-12


class TestWaterFill:
    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=100.0, **finite),
            min_size=1,
            max_size=24,
        ),
        budget=st.floats(min_value=0.0, max_value=2000.0, **finite),
    )
    @settings(max_examples=60, deadline=None)
    def test_conserves_budget_and_caps_grants(self, demands, budget):
        demands = np.asarray(demands)
        alloc = water_fill(demands, budget)
        assert np.all(alloc >= -1e-9)
        assert np.all(alloc <= demands + 1e-6)
        expected_total = min(budget, float(demands.sum()))
        assert float(alloc.sum()) == pytest.approx(expected_total, abs=1e-6)

    @given(
        demands=st.lists(
            st.floats(min_value=0.5, max_value=100.0, **finite),
            min_size=2,
            max_size=24,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_scarce_budget_is_shared_fairly(self, demands):
        demands = np.asarray(demands)
        budget = 0.5 * float(demands.sum())
        alloc = water_fill(demands, budget)
        # No chip is starved while another holds more than its demand.
        assert np.all(alloc > 0)
        # A chip that demanded less than the fair share is fully granted.
        fair = budget / len(demands)
        fully_granted = demands <= fair
        assert np.allclose(alloc[fully_granted], demands[fully_granted])
