"""Property-based tests for the chaos tier's safety invariants.

Hypothesis drives two state machines with arbitrary inputs:

* the per-replica circuit breaker, against its two safety properties —
  it never admits a dispatch while open (inside the cooldown), and a
  half-open period admits exactly the probe quota and not one more;
* the cluster simulator under arbitrary generated injection schedules,
  client retry behaviours, and defense suites, against conservation —
  every offered request reaches exactly one terminal outcome (served,
  shed, or timed out), no matter what the chaos schedule does.
"""

from collections import Counter as TallyCounter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
    DefenseConfig,
    DefenseRuntime,
)
from repro.cluster import (
    AdmissionConfig,
    ClientRetryConfig,
    ClusterConfig,
    INJECTION_KINDS,
    Injection,
    ServiceModel,
    run_cluster,
)
from repro.serving import Request

# ---------------------------------------------------------------------------
# Circuit-breaker invariants
# ---------------------------------------------------------------------------

breaker_configs = st.builds(
    BreakerConfig,
    failure_threshold=st.integers(min_value=1, max_value=3),
    cooldown_s=st.floats(min_value=0.1, max_value=2.0,
                         allow_nan=False, allow_infinity=False),
    probe_quota=st.integers(min_value=1, max_value=4),
    close_after_successes=st.integers(min_value=1, max_value=3),
)

# An op sequence: time always advances by `dt`, then one event fires.
breaker_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["attempt", "success", "failure"]),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(config=breaker_configs, ops=breaker_ops)
def test_breaker_never_admits_while_open(config, ops):
    breaker = CircuitBreaker(config)
    now = 0.0
    opened_at = None
    for dt, op in ops:
        now += dt
        if op == "attempt":
            admitted = breaker.allow(now)
            if admitted:
                breaker.on_dispatch(now)
            if breaker.state == BREAKER_OPEN:
                # An admission can never leave (or find) the breaker
                # open: open means no traffic, full stop.
                assert not admitted
                assert opened_at is not None
                assert now - opened_at < config.cooldown_s
        elif op == "success":
            breaker.record_success(now)
        else:
            before = breaker.state
            breaker.record_failure(now)
            if breaker.state == BREAKER_OPEN and before != BREAKER_OPEN:
                opened_at = now
        if breaker.state != BREAKER_OPEN:
            opened_at = None
        elif opened_at is None:
            opened_at = now  # opened by this op


@settings(max_examples=200, deadline=None)
@given(config=breaker_configs,
       attempts=st.integers(min_value=1, max_value=20))
def test_half_open_admits_exactly_the_probe_quota(config, attempts):
    breaker = CircuitBreaker(config)
    for _ in range(config.failure_threshold):
        breaker.record_failure(0.0)
    assert breaker.state == BREAKER_OPEN
    # Cooldown elapses; every admission until a success/failure verdict
    # must come out of the probe quota.
    now = config.cooldown_s
    admitted = 0
    for _ in range(attempts):
        if breaker.allow(now):
            breaker.on_dispatch(now)
            admitted += 1
    assert breaker.state == BREAKER_HALF_OPEN
    assert admitted == min(attempts, config.probe_quota)
    # Closing takes exactly close_after_successes probe completions.
    for _ in range(config.close_after_successes):
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success(now)
    assert breaker.state == BREAKER_CLOSED


# ---------------------------------------------------------------------------
# Conservation under arbitrary chaos schedules
# ---------------------------------------------------------------------------

SERVICE = ServiceModel(mean_service_s=0.02, jitter_sigma=0.4)
REPLICAS = 4

streams = st.lists(
    st.floats(min_value=0.0, max_value=0.05,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)

injection_events = st.builds(
    Injection,
    time_s=st.floats(min_value=0.0, max_value=2.0,
                     allow_nan=False, allow_infinity=False),
    kind=st.sampled_from(INJECTION_KINDS),
    targets=st.sets(
        st.integers(min_value=0, max_value=REPLICAS - 1),
        min_size=1, max_size=REPLICAS,
    ).map(tuple),
    magnitude=st.floats(min_value=1.0, max_value=4.0,
                        allow_nan=False, allow_infinity=False),
)

schedules = st.lists(injection_events, min_size=0, max_size=12)

clients = st.one_of(
    st.none(),
    st.builds(
        ClientRetryConfig,
        timeout_s=st.floats(min_value=0.05, max_value=0.5,
                            allow_nan=False, allow_infinity=False),
        max_retries=st.one_of(st.none(),
                              st.integers(min_value=0, max_value=3)),
    ),
)

defenses = st.sampled_from(["none", "inert", "full"])


def _run(gaps, schedule, client, defense_mode, seed):
    requests = []
    clock = 0.0
    for i, gap in enumerate(gaps):
        clock += gap
        requests.append(Request(arrival_s=clock, samples=8, request_id=i))
    defense = {
        "none": None,
        "inert": DefenseRuntime(DefenseConfig()),
        "full": DefenseRuntime(DefenseConfig.full(deadline_s=0.3)),
    }[defense_mode]
    config = ClusterConfig(
        replicas=REPLICAS,
        num_hosts=2,
        policy="po2",
        admission=AdmissionConfig(max_outstanding_per_replica=4),
        seed=seed,
    )
    return run_cluster(
        config, SERVICE, requests,
        defense=defense, client=client, injections=schedule,
    )


@settings(max_examples=150, deadline=None)
@given(gaps=streams, schedule=schedules, client=clients,
       defense_mode=defenses, seed=st.integers(min_value=0, max_value=2**16))
def test_conservation_under_arbitrary_chaos(gaps, schedule, client,
                                            defense_mode, seed):
    report = _run(gaps, schedule, client, defense_mode, seed)
    assert report.served + report.shed + report.timed_out == report.offered
    served = TallyCounter(
        e for _, kind, e in report.event_log if kind == "serve"
    )
    shed = set(e for _, kind, e in report.event_log if kind == "shed")
    timed_out = set(e for _, kind, e in report.event_log if kind == "timeout")
    # Exactly one terminal outcome per request; duplicates from client
    # retries are tallied separately and never double-serve.
    assert all(count == 1 for count in served.values())
    assert not set(served) & shed
    assert not set(served) & timed_out
    assert not shed & timed_out
    assert set(served) | shed | timed_out == set(range(report.offered))
    assert len(report.latencies_s) == report.served


@settings(max_examples=60, deadline=None)
@given(gaps=streams, schedule=schedules, client=clients,
       defense_mode=defenses, seed=st.integers(min_value=0, max_value=2**16))
def test_chaos_runs_are_deterministic(gaps, schedule, client,
                                      defense_mode, seed):
    first = _run(gaps, schedule, client, defense_mode, seed)
    second = _run(gaps, schedule, client, defense_mode, seed)
    assert first == second
