"""Tests for the benchmark-regression harness (repro.obs.bench + CLI)."""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    RUNTIME_GUARD_FLOOR_S,
    RUNTIME_REGRESSION_RATIO,
    aggregate,
    diff_results,
    dump_json,
    golden_violations,
    load_results,
    load_scalar_documents,
    normalize_text,
    runtime_comparison,
    runtime_regressions,
    write_results,
    write_scalars,
)


class TestNormalizeText:
    @pytest.mark.parametrize("raw,expected", [
        ("a", "a\n"),
        ("a\n", "a\n"),
        ("a\n\n\n", "a\n"),
        ("a\nb", "a\nb\n"),
        ("", "\n"),
    ])
    def test_exactly_one_trailing_newline(self, raw, expected):
        assert normalize_text(raw) == expected


class TestWriteScalars:
    def test_document_shape(self, tmp_path):
        path = write_scalars(tmp_path, "bench", {"x": 1, "y": 2.5})
        document = json.loads(path.read_text())
        assert document == {
            "name": "bench", "schema": 1, "scalars": {"x": 1, "y": 2.5}
        }

    def test_bytes_stable_across_key_order(self, tmp_path):
        a = write_scalars(tmp_path / "a", "b", {"x": 1.0, "y": 2.0})
        b = write_scalars(tmp_path / "b", "b", {"y": 2.0, "x": 1.0})
        assert a.read_bytes() == b.read_bytes()
        assert a.read_text().endswith("}\n")
        assert not a.read_text().endswith("\n\n")

    @pytest.mark.parametrize("bad", [
        {"x": float("nan")},
        {"x": float("inf")},
        {"x": "str"},
        {"x": True},
    ])
    def test_rejects_non_finite_and_non_numeric(self, tmp_path, bad):
        with pytest.raises((TypeError, ValueError)):
            write_scalars(tmp_path, "b", bad)

    def test_rejects_empty_scalars(self, tmp_path):
        with pytest.raises(ValueError):
            write_scalars(tmp_path, "b", {})

    def test_loader_skips_foreign_json(self, tmp_path):
        write_scalars(tmp_path, "mine", {"x": 1})
        (tmp_path / "foreign.json").write_text('{"not": "ours"}\n')
        assert list(load_scalar_documents(tmp_path)) == ["mine"]


class TestAggregate:
    def test_runtimes_attached_by_name(self, tmp_path):
        write_scalars(tmp_path, "a", {"x": 1})
        write_scalars(tmp_path, "b", {"y": 2})
        results = aggregate(tmp_path, runtimes={"a": 1.23456})
        assert results["schema"] == 1
        assert results["benchmarks"]["a"]["runtime_s"] == 1.235
        assert "runtime_s" not in results["benchmarks"]["b"]

    def test_round_trip(self, tmp_path):
        write_scalars(tmp_path, "a", {"x": 1})
        results = aggregate(tmp_path)
        path = write_results(results, tmp_path / "BENCH_results.json")
        assert load_results(path) == results
        assert load_results(tmp_path / "missing.json") is None
        # Deterministic serialization.
        assert path.read_text() == dump_json(results)


def _results(**benchmarks):
    return {
        "schema": 1,
        "benchmarks": {
            name: {"scalars": scalars} for name, scalars in benchmarks.items()
        },
    }


class TestDiff:
    def test_within_tolerance_is_clean(self):
        diff = diff_results(
            _results(a={"x": 100.0}), _results(a={"x": 104.0}), rel_tol=0.05
        )
        assert diff.clean
        assert "drift (ok)" in diff.report()

    def test_regression_flagged_both_directions(self):
        base = _results(a={"x": 100.0})
        for moved in (90.0, 110.0):  # unexplained speedups count too
            diff = diff_results(base, _results(a={"x": moved}), rel_tol=0.05)
            assert not diff.clean
            assert "REGRESSION" in diff.report()
            assert diff.regressions[0].rel_change == pytest.approx(
                (moved - 100.0) / 100.0
            )

    def test_volatile_keys_never_fail(self):
        base = {"schema": 1, "benchmarks": {
            "a": {"scalars": {"x": 1.0, "runtime_s": 10.0}}}}
        cur = {"schema": 1, "benchmarks": {
            "a": {"scalars": {"x": 1.0, "runtime_s": 99.0}}}}
        assert diff_results(base, cur).clean

    def test_subset_run_is_informational_not_failing(self):
        # A --smoke run covering fewer benchmarks must diff clean.
        base = _results(a={"x": 1.0}, b={"y": 2.0})
        diff = diff_results(base, _results(a={"x": 1.0}))
        assert diff.clean
        assert diff.missing_benchmarks == ["b"]
        diff = diff_results(_results(a={"x": 1.0}), base)
        assert diff.clean
        assert diff.added_benchmarks == ["b"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_results(_results(), _results(), rel_tol=-0.1)


def _timed(**runtimes):
    return {
        "schema": 1,
        "benchmarks": {
            name: {"scalars": {"x": 1.0}, "runtime_s": runtime}
            for name, runtime in runtimes.items()
        },
    }


class TestRuntimeGuard:
    def test_within_budget_is_clean(self):
        # 1.4x on a multi-second benchmark is inside the 1.5x budget.
        base, cur = _timed(a=10.0, b=2.0), _timed(a=14.0, b=2.1)
        assert runtime_regressions(base, cur) == []
        table = runtime_comparison(base, cur)
        assert table["a"]["ok"] and table["b"]["ok"]
        assert table["a"]["budget_s"] == pytest.approx(15.0)

    def test_slowdown_past_ratio_fires(self):
        offenders = runtime_regressions(_timed(a=10.0), _timed(a=16.0))
        assert len(offenders) == 1
        assert offenders[0].benchmark == "a"
        assert offenders[0].ratio == pytest.approx(1.6)
        assert "re-baseline" in str(offenders[0])

    def test_sub_second_benchmarks_get_absolute_floor(self):
        # 2.7x on a 0.3 s baseline stays under the 1 s floor: noise,
        # not a regression.  Past the floor the guard fires.
        assert RUNTIME_GUARD_FLOOR_S == 1.0
        assert runtime_regressions(_timed(a=0.3), _timed(a=0.8)) == []
        offenders = runtime_regressions(_timed(a=0.3), _timed(a=1.1))
        assert [r.benchmark for r in offenders] == ["a"]

    def test_worst_offender_first(self):
        offenders = runtime_regressions(
            _timed(a=10.0, b=10.0), _timed(a=20.0, b=40.0)
        )
        assert [r.benchmark for r in offenders] == ["b", "a"]

    def test_missing_runtime_skipped(self):
        # --no-run snapshots carry no runtime_s; nothing to guard.
        base = _timed(a=10.0)
        cur = _results(a={"x": 1.0})
        assert runtime_comparison(base, cur) == {}
        assert runtime_regressions(base, cur) == []

    def test_ratio_at_most_one_rejected(self):
        with pytest.raises(ValueError):
            runtime_comparison(_timed(), _timed(), ratio=1.0)

    def test_speedups_recorded_not_failed(self):
        # The fast-engine direction: large speedups are the point.
        assert RUNTIME_REGRESSION_RATIO == 1.5
        table = runtime_comparison(_timed(a=30.0), _timed(a=3.0))
        assert table["a"]["ok"]
        assert table["a"]["speedup"] == pytest.approx(10.0)


class TestGoldenViolations:
    GOLDENS = {"a": {"x": (100.0, 0.05)}}

    def test_within_band_passes(self):
        assert golden_violations(_results(a={"x": 103.0}), self.GOLDENS) == []

    def test_outside_band_violates(self):
        violations = golden_violations(_results(a={"x": 90.0}), self.GOLDENS)
        assert len(violations) == 1 and "a.x" in violations[0]

    def test_missing_pinned_scalar_violates(self):
        violations = golden_violations(_results(a={"other": 1.0}), self.GOLDENS)
        assert violations == ["a.x: pinned scalar missing"]

    def test_uncovered_benchmark_skipped(self):
        assert golden_violations(_results(b={"y": 1.0}), self.GOLDENS) == []

    def test_default_goldens_pass_against_committed_snapshot(self):
        # The repository's own BENCH_results.json must satisfy the
        # pinned goldens it ships with.
        results = load_results("BENCH_results.json")
        if results is None:
            pytest.skip("no committed BENCH_results.json")
        assert golden_violations(results) == []


class TestBenchCli:
    def _seed_out(self, bench_dir, value=1.0):
        (bench_dir / "test_demo.py").write_text("def test_demo():\n    pass\n")
        write_scalars(bench_dir / "out", "demo", {"x": value})

    def test_no_run_aggregates_and_writes(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        self._seed_out(bench_dir)
        out = tmp_path / "BENCH_results.json"
        assert main([
            "bench", "--no-run", "--dir", str(bench_dir),
            "--out", str(out), "--baseline", str(out),
        ]) == 0
        results = load_results(out)
        assert results["benchmarks"]["demo"]["scalars"] == {"x": 1.0}
        assert "no baseline" in capsys.readouterr().out

    def test_regression_against_baseline_fails(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        self._seed_out(bench_dir)
        out = tmp_path / "BENCH_results.json"
        write_results(_results(demo={"x": 2.0}), out)
        assert main([
            "bench", "--no-run", "--dir", str(bench_dir),
            "--out", str(out), "--baseline", str(out),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The new snapshot still gets written for inspection.
        assert load_results(out)["benchmarks"]["demo"]["scalars"]["x"] == 1.0

    def test_runtime_regression_fails_run(self, tmp_path, capsys):
        # A benchmark 1.5x+ over its baseline runtime (and past the 1 s
        # noise floor) must fail the run with the re-baseline hint, and
        # the runtime-comparison artifact must land for CI to upload.
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text(
            "import time\n"
            "from repro.obs.bench import write_scalars\n"
            "def test_demo():\n"
            "    time.sleep(1.1)\n"
            f"    write_scalars({str(bench_dir / 'out')!r}, "
            "'demo', {'x': 1.0})\n"
        )
        out = tmp_path / "BENCH_results.json"
        baseline = _timed(demo=0.2)
        baseline["benchmarks"]["demo"]["scalars"] = {"x": 1.0}
        write_results(baseline, tmp_path / "baseline.json")
        assert main([
            "bench", "--dir", str(bench_dir), "--out", str(out),
            "--baseline", str(tmp_path / "baseline.json"),
        ]) == 1
        captured = capsys.readouterr().out
        assert "RUNTIME REGRESSION" in captured
        assert "re-baseline" in captured
        artifact = json.loads(
            (bench_dir / "out" / "runtime_comparison.json").read_text()
        )
        assert artifact["demo"]["ok"] is False

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--no-run", "--dir", str(tmp_path / "nope")])

    def test_empty_out_dir_rejected(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_demo.py").write_text("def test_demo():\n    pass\n")
        with pytest.raises(SystemExit, match="no scalar artifacts"):
            main([
                "bench", "--no-run", "--dir", str(bench_dir),
                "--out", str(tmp_path / "o.json"),
                "--baseline", str(tmp_path / "o.json"),
            ])
