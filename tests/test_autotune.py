"""Tests for the autotuning framework (paper section 4.1)."""

import dataclasses

import pytest

from repro.arch import mtia2i_spec
from repro.autotune import (
    PerformanceDatabase,
    ann_tune,
    autotune_model,
    compare_tuners,
    exhaustive_tune,
    plan_sharding,
    required_shards,
    tune_batch_size,
    tune_placement,
)
from repro.models.dlrm import DlrmConfig, EmbeddingBagConfig, build_dlrm, small_dlrm
from repro.tensors import GemmShape
from repro.units import GiB


def _builder(config=None):
    config = config or small_dlrm()
    return lambda batch: build_dlrm(dataclasses.replace(config, batch=batch))


class TestKernelTuner:
    def test_exhaustive_finds_best(self):
        chip = mtia2i_spec()
        result = exhaustive_tune(GemmShape(1024, 1024, 1024), chip)
        assert result.evaluations > 1000
        # No variant in the grid beats the winner.
        from repro.autotune.kernel_tuner import measure_variant
        from repro.kernels import default_variants

        for variant in default_variants():
            assert measure_variant(result.shape, variant, chip) >= result.kernel_time_s - 1e-15

    def test_database_nearest(self):
        chip = mtia2i_spec()
        database = PerformanceDatabase()
        for shape in (GemmShape(512, 512, 512), GemmShape(4096, 4096, 4096)):
            database.add(exhaustive_tune(shape, chip))
        nearest = database.nearest(GemmShape(600, 600, 600))
        assert nearest.shape == GemmShape(512, 512, 512)

    def test_empty_database(self):
        assert PerformanceDatabase().nearest(GemmShape(1, 1, 1)) is None

    def test_ann_single_evaluation(self):
        chip = mtia2i_spec()
        database = PerformanceDatabase()
        database.add(exhaustive_tune(GemmShape(1024, 1024, 1024), chip))
        result = ann_tune(GemmShape(1100, 1000, 900), chip, database)
        assert result.evaluations == 1

    def test_ann_speedup_and_quality(self):
        """Section 4.1: ANN cut tuning time by up to 1000x with perf
        within 5% of exhaustive.  At this grid size the evaluation-count
        ratio is the variant-grid cardinality (hundreds); quality stays
        within the 5% band."""
        chip = mtia2i_spec()
        training = [
            GemmShape(m, k, n)
            for m in (256, 1024, 4096)
            for k in (512, 2048)
            for n in (256, 1024, 4096)
        ]
        queries = [GemmShape(700, 1700, 800), GemmShape(3000, 600, 2000),
                   GemmShape(512, 1024, 512)]
        comparison = compare_tuners(training, queries, chip)
        assert comparison.evaluation_speedup > 500
        assert comparison.mean_quality_gap < 0.05

    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            PerformanceDatabase(cell_size=0)


class TestBatchTuner:
    def test_picks_slo_respecting_batch(self):
        result = tune_batch_size(_builder(), mtia2i_spec(), latency_slo_s=0.050)
        assert result.best.meets_slo
        assert result.best.batch in (128, 256, 512, 1024, 2048, 4096)

    def test_throughput_monotone_under_slo(self):
        result = tune_batch_size(_builder(), mtia2i_spec(), latency_slo_s=0.100)
        eligible = [c for c in result.candidates if c.meets_slo]
        assert result.best.throughput == max(c.throughput for c in eligible)

    def test_tight_slo_forces_small_batch(self):
        loose = tune_batch_size(_builder(), mtia2i_spec(), latency_slo_s=0.200)
        tight = tune_batch_size(_builder(), mtia2i_spec(), latency_slo_s=0.002)
        assert tight.best.batch <= loose.best.batch

    def test_invalid_slo(self):
        with pytest.raises(ValueError):
            tune_batch_size(_builder(), mtia2i_spec(), latency_slo_s=0)


class TestPlacementTuner:
    def test_small_model_lands_in_lls(self):
        decision = tune_placement(_builder(), 512, mtia2i_spec())
        assert decision.activations_in_lls
        assert decision.partition.lls_bytes >= decision.activation_buffer_bytes

    def test_oversized_activations_fall_back(self):
        """Policy: compare the nearest lower LLS-resident batch with the
        LLC-resident current batch and pick the winner."""
        config = dataclasses.replace(
            small_dlrm(),
            bottom_mlp_dims=(16384, 16384),
            top_mlp_dims=(16384, 16384),
            num_dense_features=16384,
        )
        decision = tune_placement(_builder(config), 8192, mtia2i_spec())
        # Either it chose a smaller LLS-resident batch, or it kept the
        # big batch with activations in LLC.
        if decision.activations_in_lls:
            assert decision.batch < 8192
        else:
            assert decision.batch == 8192


class TestSharding:
    def _big_model(self, gib):
        bag = EmbeddingBagConfig(
            num_tables=64,
            rows_per_table=int(gib * GiB) // (64 * 128 * 2),
            embed_dim=128,
            pooling_factor=8,
        )
        config = DlrmConfig(
            name="big",
            batch=256,
            num_dense_features=512,
            bottom_mlp_dims=(512,),
            top_mlp_dims=(512,),
            embeddings=(bag,),
        )
        return build_dlrm(config)

    def test_small_model_one_shard(self):
        assert required_shards(self._big_model(40), mtia2i_spec()) == 1

    def test_large_model_sharded(self):
        """Paper: models whose embeddings exceed device DRAM shard across
        accelerators (HC3 uses two)."""
        shards = required_shards(self._big_model(180), mtia2i_spec())
        assert shards == 2

    def test_plan_balanced(self):
        graph = self._big_model(180)
        plan = plan_sharding(graph, mtia2i_spec())
        assert plan.num_shards == 2
        assert plan.balance > 0.9
        assert len(plan.table_assignment) == 64

    def test_plan_respects_capacity(self):
        graph = self._big_model(180)
        plan = plan_sharding(graph, mtia2i_spec())
        usable = mtia2i_spec().dram.capacity_bytes * 0.85
        assert plan.max_shard_bytes <= usable

    def test_forced_undersharding_rejected(self):
        graph = self._big_model(300)
        with pytest.raises(ValueError):
            plan_sharding(graph, mtia2i_spec(), num_shards=1)


class TestOrchestrator:
    def test_full_autotune(self):
        result = autotune_model(_builder(), mtia2i_spec(), model_name="small")
        assert result.batch >= 128
        assert result.shard_plan.num_shards == 1
        assert len(result.kernel_variants) > 0
        assert result.placement.activations_in_lls

    def test_variant_lookup(self):
        result = autotune_model(_builder(), mtia2i_spec())
        name = next(iter(result.kernel_variants))
        assert result.variant_for(name) is not None
        assert result.variant_for("nonexistent") is None

    def test_database_reuse_across_models(self):
        """The second model tunes via ANN against the first's database."""
        database = PerformanceDatabase()
        autotune_model(_builder(), mtia2i_spec(), kernel_database=database)
        populated = len(database)
        assert populated > 0
        second = autotune_model(_builder(), mtia2i_spec(), kernel_database=database)
        # ANN path: evaluations per shape should be 1.
        assert all(r.evaluations == 1 for r in second.kernel_variants.values())
