"""Property-based tests for request coalescing (section 4.1).

Hypothesis drives ``serving.batcher.coalesce`` with randomized request
streams and coalescing configs and checks the invariants that hold for
*every* input, not just the seeded streams the integration tests use:

* conservation — every request appears in exactly one emitted batch;
* capacity — no batch exceeds ``max_batch_samples`` (given no single
  request does; an oversized request legitimately opens its own window);
* causality — a batch forms no earlier than any member's arrival;
* order — batches come out sorted by formation time.
"""

from collections import Counter as TallyCounter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.serving import CoalescingConfig, Request, coalesce, poisson_stream

MAX_BATCH_SAMPLES = 64

configs = st.builds(
    CoalescingConfig,
    window_s=st.floats(min_value=1e-4, max_value=0.5,
                       allow_nan=False, allow_infinity=False),
    max_parallel_windows=st.integers(min_value=1, max_value=8),
    max_batch_samples=st.just(MAX_BATCH_SAMPLES),
)

# Streams as (inter-arrival gap, samples) pairs: gaps keep arrivals
# non-negative and monotone-ish without hypothesis fighting sortedness.
streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.2,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=1, max_value=MAX_BATCH_SAMPLES),
    ),
    min_size=1,
    max_size=60,
)


def _build_requests(stream):
    requests = []
    clock = 0.0
    for i, (gap, samples) in enumerate(stream):
        clock += gap
        requests.append(Request(arrival_s=clock, samples=samples, request_id=i))
    return requests


@settings(max_examples=200, deadline=None)
@given(stream=streams, config=configs)
def test_no_request_lost_or_duplicated(stream, config):
    requests = _build_requests(stream)
    batches = coalesce(requests, config)
    emitted = TallyCounter(
        member.request_id for batch in batches for member in batch.requests
    )
    assert emitted == TallyCounter(r.request_id for r in requests)


@settings(max_examples=200, deadline=None)
@given(stream=streams, config=configs)
def test_batches_respect_capacity(stream, config):
    requests = _build_requests(stream)
    for batch in coalesce(requests, config):
        assert batch.samples <= config.max_batch_samples


@settings(max_examples=200, deadline=None)
@given(stream=streams, config=configs)
def test_batches_form_after_their_members_arrive(stream, config):
    requests = _build_requests(stream)
    for batch in coalesce(requests, config):
        for member in batch.requests:
            assert batch.formed_at_s >= member.arrival_s


@settings(max_examples=200, deadline=None)
@given(stream=streams, config=configs)
def test_batches_sorted_by_formation_time(stream, config):
    requests = _build_requests(stream)
    formed = [b.formed_at_s for b in coalesce(requests, config)]
    assert formed == sorted(formed)


@settings(max_examples=50, deadline=None)
@given(stream=streams, config=configs)
def test_attached_registry_never_changes_batching(stream, config):
    requests = _build_requests(stream)
    bare = coalesce(requests, config)
    observed = coalesce(requests, config, registry=MetricsRegistry())
    assert [
        ([m.request_id for m in b.requests], b.formed_at_s) for b in bare
    ] == [
        ([m.request_id for m in b.requests], b.formed_at_s) for b in observed
    ]


def test_seeded_poisson_stream_invariants_hold_at_scale():
    # One deterministic large-scale pass over the same invariants.
    config = CoalescingConfig(
        window_s=0.02, max_parallel_windows=4, max_batch_samples=1024
    )
    requests = poisson_stream(
        rate_per_s=200, duration_s=30, samples_per_request=256, seed=5
    )
    batches = coalesce(requests, config)
    emitted = TallyCounter(
        m.request_id for batch in batches for m in batch.requests
    )
    assert emitted == TallyCounter(r.request_id for r in requests)
    assert all(b.samples <= config.max_batch_samples for b in batches)
    assert all(
        b.formed_at_s >= m.arrival_s for b in batches for m in b.requests
    )
