"""Quickstart: deploy a DLRM on the MTIA 2i model and compare with a GPU.

Runs the full co-design pipeline — graph optimization passes, autotuning
(sharding / batch / placement / kernels), execution on the chip model —
then the same model on the GPU baseline, and prints the server-level
Perf/TCO and Perf/Watt comparison the paper reports.

Run:  python examples/quickstart.py
"""

import dataclasses

from repro import Mtia2iSystem
from repro.models.dlrm import build_dlrm, small_dlrm
from repro.perf import compare_reports
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    config = small_dlrm()
    build = lambda batch: build_dlrm(dataclasses.replace(config, batch=batch))

    system = Mtia2iSystem()
    result = system.deploy(build, model_name=config.name)
    report = result.report

    print(f"model: {config.name}")
    print(f"  tuned batch size:    {result.autotune.batch}")
    print(f"  shards needed:       {result.autotune.shard_plan.num_shards}")
    print(f"  tuned FC kernels:    {len(result.autotune.kernel_variants)}")
    print(f"  activation buffer:   {fmt_bytes(report.activation_buffer_bytes)}"
          f" (in LLS: {report.activations_in_lls})")
    print(f"  SRAM split:          LLS {fmt_bytes(report.lls_bytes)} / "
          f"LLC {fmt_bytes(report.llc_bytes)}")
    print(f"  dense SRAM hit rate: {report.dense_hit_rate:.1%}")
    print(f"  sparse SRAM hit rate:{report.sparse_hit_rate:.1%}")
    print(f"  batch latency:       {fmt_time(report.latency_s)}")
    print(f"  throughput:          {report.throughput_samples_per_s:,.0f} samples/s/chip")
    print(f"  bottlenecks:         "
          + ", ".join(f"{k}={v:.0%}" for k, v in sorted(
              report.bottleneck_histogram().items(), key=lambda kv: -kv[1])[:3]))

    gpu_report = system.baseline_gpu_report(build, batch=result.autotune.batch)
    comparison = compare_reports(report, gpu_report)
    print("\nversus the GPU baseline (server level, 24 MTIA chips vs 8 GPUs):")
    print(f"  Perf/TCO ratio:  {comparison.perf_per_tco_ratio:.2f}x")
    print(f"  Perf/Watt ratio: {comparison.perf_per_watt_ratio:.2f}x")
    print(f"  TCO reduction:   {comparison.tco_reduction:.0%}")


if __name__ == "__main__":
    main()
