"""The section 5.5 incident, replayed end to end (fleet resilience).

A 300-device serving pool runs for 90 days while a firmware bug wedges
~0.1% of devices per day over PCIe.  Two arms share the exact same
seeded fault schedule:

* **baseline** — no mitigation: wedged devices stay in rotation, goodput
  bleeds away until the pool's tail latency trips ``slo_at_risk``;
* **mitigated** — retries with backoff, hedged dispatch, and load
  shedding hold goodput while the SLO trip triggers an emergency
  firmware rollout (restart waves capped by the concurrency limit) that
  patches the fleet in ~3 hours, after which goodput recovers.

Run:  python examples/resilience_drill.py
"""

from repro.resilience import EventKind, run_section_55_drill


def sparkline(values, width=60):
    """Render a series as a one-line unicode sparkline."""
    blocks = " ▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = values[::step]
    lo, hi = min(sampled), max(sampled)
    span = (hi - lo) or 1.0
    return "".join(blocks[1 + int((v - lo) / span * 7)] for v in sampled)


def main() -> None:
    print("running both arms of the section 5.5 drill (~3 s)...\n")
    drill = run_section_55_drill(seed=0)

    print(drill.summary())

    print("\ngoodput over the 90-day window (baseline vs mitigated):")
    print(f"  baseline  |{sparkline(drill.baseline.goodput_series)}|")
    print(f"  mitigated |{sparkline(drill.mitigated.goodput_series)}|")

    print("\nP99 latency, mitigated arm (retries absorb the wedges until "
          "the rollout lands):")
    print(f"  p99       |{sparkline(drill.mitigated.p99_series)}|")

    print("\nincident timeline (mitigated arm, pool-level events):")
    marks = drill.mitigated.events.of_kind(
        EventKind.SLO_AT_RISK,
        EventKind.ROLLOUT_TRIGGERED,
        EventKind.ROLLOUT_DONE,
    )
    first_waves = drill.mitigated.events.of_kind(EventKind.ROLLOUT_WAVE)[:3]
    for event in sorted(marks + first_waves, key=lambda e: e.time_s):
        detail = " ".join(f"{k}={v:g}" for k, v in sorted(event.detail.items()))
        print(f"  day {event.time_s / 86_400.0:6.2f}  {event.kind.value:18} {detail}")

    wedges = drill.baseline.events.of_kind(EventKind.FAULT_DEADLOCK)
    print(f"\n{len(wedges)} devices wedged over the window "
          f"(~{len(wedges) / 90 / drill.config.devices:.2%}/device-day; "
          f"paper: ~0.1%/day).")
    print(f"unavailability: baseline "
          f"{drill.baseline.unavailability_device_minutes:,.0f} device-minutes, "
          f"mitigated {drill.mitigated.unavailability_device_minutes:,.0f}.")
    print(f"recovered to >=99% of baseline goodput by window end: "
          f"{drill.recovered}")


if __name__ == "__main__":
    main()
