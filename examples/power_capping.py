"""Time-domain power management: DVFS, capping, and budget re-derivation.

Walks the section 5.2/5.3 power story with the loop closed — activity
traces from the executor, an RC thermal network, leakage that grows with
junction temperature, and a governor holding each chip at its
per-silicon fmax:

* build a per-op power trace for a ranking model and integrate it back
  to the executor's energy;
* settle the thermal network at the design point and at the shipped
  1.35 GHz overclock;
* run the governed fleet study: per-chip fmax from the qualification
  margin model, thermal feedback, and the 5-20% end-to-end gain band;
* cap a 24-chip server at a sub-peak budget and compare per-chip
  water-filling against a server-level uniform ladder;
* re-derive the rack budget from simulated production telemetry (the
  paper's two-prong P90 method, ~40% below the stress-test number);
* couple the budget into the cluster tier: max QPS at the P99 SLO as a
  function of server power.

Run:  python examples/power_capping.py
"""

from repro.arch.mtia import mtia2i_spec
from repro.cluster import default_service_model
from repro.models import hc1
from repro.perf import Executor
from repro.power import (
    activity_trace,
    calibrate_throughput,
    capping_study,
    chip_power_w,
    mtia2i_thermal,
    overclock_with_thermal_feedback,
    power_limited_capacity_sweep,
    time_domain_provisioning,
)


def main() -> None:
    chip = mtia2i_spec()
    model = hc1()

    print("1) per-op power trace from the executor")
    report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
    trace = activity_trace(report, chip)
    print(f"   {model.name}: {len(trace.segments)} segments over "
          f"{trace.duration_s * 1e3:.2f} ms")
    print(f"   mean power {trace.avg_power_w:.1f} W "
          f"(peak {trace.peak_power_w:.1f} W); trace integral "
          f"{trace.energy_j:.4f} J vs executor {report.energy_j:.4f} J")

    print("\n2) thermal steady states (RC network, ambient 45 C)")
    network = mtia2i_thermal()
    for ghz, util in ((1.10, 0.85), (1.35, 0.85)):
        power = chip_power_w(chip, ghz * 1e9, util)
        junction = network.steady_junction_c(power)
        print(f"   {ghz:.2f} GHz @ {util:.0%} util: {power:5.1f} W -> "
              f"junction {junction:6.1f} C (open loop)")

    print("\n3) governed DVFS fleet study (24 chips, 600 s)")
    curve = calibrate_throughput(model)
    top = curve.frequencies_hz[-1]
    print(f"   calibrated curve: {top / 1e9:.2f} GHz gives "
          f"{curve.relative(top):.3f}x throughput (memory-bound flattening)")
    dvfs = overclock_with_thermal_feedback(curve, seed=0)
    print(f"   fleet gain {dvfs.mean_gain:+.1%} "
          f"(min {dvfs.min_gain:+.1%}, max {dvfs.max_gain:+.1%}); "
          f"paper band 5-20%")
    print(f"   peak junction {dvfs.peak_junction_c:.1f} C, "
          f"{dvfs.thermal_throttles} thermal throttle events")

    print("\n4) power capping: per-chip water-fill vs server-level ladder")
    capping = capping_study(seed=0)
    print(f"   accelerator budget {capping.budget_w:.0f} W")
    for outcome in (capping.per_chip, capping.server_level):
        print(f"   {outcome.policy:12} p99 deficit {outcome.p99_deficit:6.2%}  "
              f"cap violations {outcome.cap_violation_fraction:.1%}")
    print(f"   per-chip smooths the same spikes the uniform ladder pays for: "
          f"{capping.p99_deficit_improvement:+.2%} p99 deficit improvement")

    print("\n5) budget re-derivation from production telemetry")
    provisioning = time_domain_provisioning(seed=0)
    print(f"   stress {provisioning.initial_budget_w:.0f} W -> revised "
          f"{provisioning.revised_budget_w:.0f} W "
          f"({provisioning.reduction_fraction:.0%} reduction; paper ~40%)")

    print("\n6) power-limited capacity at the P99 SLO (12 replicas)")
    sweep = power_limited_capacity_sweep(
        default_service_model(),
        server_budgets_w=(1400.0, 2000.0, 2300.0, 2600.0),
        replicas=12,
        duration_s=10.0,
        seed=0,
    )
    for line in sweep.table().splitlines():
        print(f"   {line}")
    print(f"   knee at {sweep.knee_budget_w:.0f} W")


if __name__ == "__main__":
    main()
