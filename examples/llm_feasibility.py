"""LLM feasibility on MTIA 2i (paper sections 3.6 and 8).

Evaluates Llama2-7B, Llama3-8B, and Llama3-70B against the paper's
serving requirements (600 ms time-to-first-token, 60 ms per decoded
token) on MTIA 2i and on the GPU baseline.  The paper's finding — MTIA
2i's prefill passes but LPDDR bandwidth sinks decode — falls out of the
dual-roofline memory hierarchy.

Run:  python examples/llm_feasibility.py
"""

from repro.arch import gpu_spec, mtia2i_spec
from repro.perf import (
    DECODE_REQUIREMENT_S,
    TTFT_REQUIREMENT_S,
    decode_report,
    evaluate_llm,
    llama2_7b,
    llama3_70b,
    llama3_8b,
    prefill_report,
)


def main() -> None:
    print(
        f"requirements: TTFT <= {TTFT_REQUIREMENT_S * 1e3:.0f} ms, "
        f"decode <= {DECODE_REQUIREMENT_S * 1e3:.0f} ms/token\n"
    )
    chips = (mtia2i_spec(), gpu_spec())
    models = (llama2_7b(), llama3_8b(), llama3_70b())
    header = f"{'model':12} {'chip':16} {'prefill':>10} {'decode':>10} {'verdict':>16}"
    print(header)
    print("-" * len(header))
    for model in models:
        for chip in chips:
            verdict = evaluate_llm(model, chip)
            status = "viable" if verdict.viable else (
                "decode fails" if verdict.prefill_meets_ttft else "prefill fails"
            )
            print(
                f"{model.name:12} {chip.name:16} "
                f"{verdict.prefill_latency_s * 1e3:8.0f}ms "
                f"{verdict.decode_latency_s * 1e3:8.1f}ms {status:>16}"
            )
    mtia = mtia2i_spec()
    decode = decode_report(llama2_7b(), mtia)
    print(
        f"\nwhy decode fails on MTIA 2i: each token streams "
        f"{llama2_7b().weight_bytes / 1e9:.1f} GB of weights over "
        f"{mtia.dram.bandwidth_bytes_per_s / 1e9:.0f} GB/s LPDDR "
        f"-> {decode.weight_stream_s * 1e3:.0f} ms/token floor "
        f"(memory bound: {decode.memory_bound})"
    )


if __name__ == "__main__":
    main()
