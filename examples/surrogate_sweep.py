"""Verified surrogate tuning: learn the cost model, never trust it.

A downstream-user walkthrough of repro.surrogate: train a pure-numpy
surrogate on seeded exact kernel-model traces, sweep a design grid at
nanoseconds per point instead of microseconds, and let the exact model
re-measure only the surrogate's shortlist — so every number that ships
came from the exact model, and the surrogate only decided where to
look.

Run:  python examples/surrogate_sweep.py
"""

import time

from repro.arch import mtia2i_spec
from repro.autotune import exhaustive_tune, surrogate_tune
from repro.kernels.gemm import default_variants
from repro.surrogate import train_gemm_surrogate
from repro.tensors import GemmShape


def main() -> None:
    chip = mtia2i_spec()

    # 1) Train on seeded traces of the exact kernel cost model.  The
    #    collection memo deduplicates, the split is seeded, and the
    #    whole pipeline is bit-for-bit reproducible.
    surrogate, reports = train_gemm_surrogate(chip, n_samples=2000, seed=0)
    report = reports["latency"]
    print(f"trained on {report.n_train} exact traces, "
          f"holdout MAPE {report.mape_holdout:.2%} "
          f"(P95 {report.p95_rel_error_holdout:.2%})")

    # 2) Sweep a shapes x variants grid with the factorized predictor.
    variants = default_variants()
    shapes = [(700, 1700, 800), (3000, 600, 2000), (4096, 2048, 1024)]
    started = time.perf_counter()
    grid = surrogate.predict_time_grid(shapes, variants)
    sweep_s = time.perf_counter() - started
    print(f"\nswept {grid.size} (shape, variant) points in "
          f"{sweep_s * 1e3:.2f} ms "
          f"({sweep_s / grid.size * 1e9:.0f} ns per point)")

    # 3) Verified tuning: the surrogate ranks, the exact model decides.
    print(f"\nverified tuning (top-16 of {len(variants)} exact-measured):")
    for mkn in shapes:
        shape = GemmShape(*mkn)
        verified = surrogate_tune(shape, chip, surrogate)
        gold = exhaustive_tune(shape, chip)
        match = "matches exhaustive" if abs(
            verified.kernel_time_s - gold.kernel_time_s
        ) <= 1e-12 * gold.kernel_time_s else "DIFFERS from exhaustive"
        print(f"  {str(mkn):>18}: {verified.kernel_time_s * 1e6:8.2f} us "
              f"with {verified.evaluations} exact evals "
              f"(vs {gold.evaluations}) — {match}")

    print("\nevery deployed kernel time above is an exact-model value; "
          "the surrogate only chose the shortlist.")


if __name__ == "__main__":
    main()
