"""Silent-data-corruption, end to end: inject, detect, measure, mitigate.

Bit flips are injected into the real numeric path of a quantized CTR
serving pipeline — LPDDR words behind the (72, 64) SEC-DED codec, INT8
weight values, a stuck activation lane, the GEMM accumulator, FP16
embedding rows — and each protection profile's detectors (ECC, ABFT
checksums, range guards, row hashing, periodic fleet screening) run
their actual computations over the corrupted bytes.  Survivors are
scored by the normalized-entropy damage they do on fixed traffic, and
the measured undetected rates and detection latencies are folded into
the PR-1 resilience simulator's SDC fault family.

Run:  python examples/sdc_campaign.py
"""

from repro.sdc import (
    CampaignConfig,
    run_campaign,
    sdc_fault_rates,
    triple_flip_escape_rate,
)


def main() -> None:
    config = CampaignConfig(trials=300, requests=6000, seed=0)
    print(f"injecting {config.trials} faults x {config.requests} requests "
          "(one shared seeded fault list, every profile faces it)...\n")
    result = run_campaign(config)

    print(f"clean quantized-path NE: {result.clean_ne:.4f}  "
          f"(|dNE| > {config.ne_threshold:g} counts as quality-impacting)")
    print("fault mix:", ", ".join(
        f"{site.value}={count}" for site, count in result.site_counts.items()
    ))
    print(f"SEC-DED triple-flip silent-escape rate: "
          f"{triple_flip_escape_rate(samples=400, seed=0):.0%} "
          "(odd-weight errors alias to single-bit syndromes)\n")

    print(result.table())

    print("\nwho caught what:")
    for summary in result.profiles:
        if summary.detector_counts:
            caught = ", ".join(f"{name}={count}" for name, count in
                               sorted(summary.detector_counts.items()))
            print(f"  {summary.profile.name:<10} {caught}")

    ratio = result.undetected_impacting_ratio()
    print(f"\nECC + ABFT leave {ratio:.0f}x fewer undetected NE-impacting "
          "corruptions than no protection.")

    for name in ("none", "full"):
        rates = sdc_fault_rates(result.summary_for(name),
                                screening=config.screening)
        print(f"resilience linkage [{name:>4}]: "
              f"sdc {rates.sdc_per_device_hour:.2e}/device-hour, "
              f"expected blast window {rates.sdc_blast_window_s:,.1f} s")


if __name__ == "__main__":
    main()
