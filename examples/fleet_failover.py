"""Fleet failover: lose a region at its peak, or survive it.

A downstream-user scenario for the global tier: build the three-region
fleet, schedule the headline drill — the first region dark across its
own diurnal peak — then run the day twice.  Undefended, the anycast LB
keeps sending the dead region its traffic and a third of the planet's
users eat the outage.  Defended, health probes detect the region in
under a second and the router spills its traffic to the surviving
regions, paying two inter-region legs of latency instead of losing the
requests.  Ends with the capacity verdict: what region-loss tolerance
costs in overprovision.

Run:  python examples/fleet_failover.py
"""

from repro.fleet_global import (
    region_outage_drill,
    run_fleet,
    smoke_study,
    standard_fleet,
)


def main() -> None:
    fleet = standard_fleet(replicas_per_region=5)
    print(f"fleet: {fleet.users_millions:.0f}M users across "
          f"{len(fleet.regions)} regions, {fleet.total_replicas} replicas "
          f"on {fleet.total_hosts} hosts, one compressed day of "
          f"{fleet.duration_s:.0f}s")
    for region in fleet.regions:
        model = fleet.traffic_model(region)
        print(f"  {region.name:<10} UTC{region.timezone_offset_h:+5.1f}h  "
              f"{region.replicas} replicas  "
              f"peak {model.mean_rate_per_s * model.peak_to_mean:.0f} req/s")

    # The headline drill: the first region goes dark across its peak.
    drill = region_outage_drill(fleet)
    print("\ndrill:")
    for event in drill.events:
        print(f"  t={event.at_s:5.1f}s {event.kind} {event.region} "
              f"for {event.duration_s:.1f}s")

    print("\nsame day, same seed, defenses off then on...\n")
    off = run_fleet(fleet, drill=drill, defended=False)
    print(off.summary())
    print()
    on = run_fleet(fleet, drill=drill, defended=True)
    print(on.summary())

    dead = fleet.regions[0].name
    print(f"\nundefended, the LB never learns {dead} is dark: "
          f"{off.region(dead).loss_fraction:.1%} of its users' requests "
          f"are lost and global loss is {off.loss_fraction:.1%}.")
    print(f"defended, probes detect the outage in "
          f"{on.region(dead).detection_lag_s:.2f}s and spill "
          f"{on.spill_fraction:.1%} of global traffic to the survivors: "
          f"loss falls to {on.loss_fraction:.1%} at "
          f"{on.p99_latency_s * 1e3:.1f} ms global P99 "
          f"(each spilled request pays two inter-region legs).")

    # What does region-loss tolerance cost?  Sweep region sizes.
    print("\ncapacity study (smoke sweep):\n")
    print(smoke_study().summary())


if __name__ == "__main__":
    main()
