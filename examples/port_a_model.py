"""The section 6 case study: porting a top-5 ranking model to MTIA 2i.

Replays the eight-month optimization journey of Figure 4 — from an
initial Perf/TCO around half the GPU baseline to a launched model well
above it — printing each stage's mechanism and effect, including the
rejected SRAM-hostile model change and the Figure 5 TBE consolidation.

Run:  python examples/port_a_model.py   (takes a couple of minutes)
"""

from repro.core.casestudy import run_case_study


def main() -> None:
    print("Case study: porting a key ranking model to MTIA 2i (Figure 4)")
    print(f"{'month':>5}  {'variant':7}  {'stage':34}  {'Perf/TCO':>8}  {'Perf/Watt':>9}")
    stages = run_case_study()
    for stage in stages:
        print(
            f"{stage.month:>5}  {stage.variant:7}  {stage.label:34}  "
            f"{stage.perf_per_tco:8.2f}  {stage.perf_per_watt:9.2f}"
        )
        if stage.notes:
            print(f"{'':14}  -> {stage.notes}")
    first, last = stages[0], stages[-1]
    print(
        f"\njourney: {first.perf_per_tco:.2f}x -> {last.perf_per_tco:.2f}x Perf/TCO "
        f"(paper: ~0.5x -> ~1.8x), final Perf/Watt {last.perf_per_watt:.2f}x "
        "(paper: +2%)"
    )


if __name__ == "__main__":
    main()
