"""Cluster-tier capacity planning: routing, autoscaling, provisioning.

Exercises the multi-host serving tier the paper's productionization
sections motivate — provisioning a ranking model's replica fleet against
a P99 latency SLO:

* route identical seeded traffic through each front-door policy at high
  utilization and compare tails (power-of-two-choices vs round-robin);
* keep sharded-embedding traffic on shard-holding replicas and measure
  the cross-host fetch fraction against queue-blind JSQ;
* sweep hosts-needed versus offered QPS at the SLO, per policy;
* run one compressed diurnal day under the reactive + predictive
  autoscaler, with replica faults draining mid-run;
* place and release replicas through the NUMA-aware host pool and read
  the fragmentation accounting.

Run:  python examples/cluster_capacity.py
"""

from repro.cluster import (
    HostPool,
    autoscaled_day,
    capacity_sweep,
    default_service_model,
    fault_rate_from_reliability,
    locality_comparison,
    policy_comparison,
)


def main() -> None:
    service = default_service_model()
    print(
        f"service model: {service.mean_service_s * 1e3:.1f} ms/request, "
        f"{service.capacity_per_replica():.0f} req/s per replica"
    )

    print("\n1) routing-policy tails on identical traffic (12 replicas, 85% util)")
    for name, report in policy_comparison(service).items():
        print(f"   {name:12} p50 {report.p50_latency_s * 1e3:6.1f} ms  "
              f"p99 {report.p99_latency_s * 1e3:6.1f} ms")

    print("\n2) shard locality (4 embedding shards)")
    for name, report in locality_comparison(service).items():
        print(f"   {name:12} cross-host {report.cross_host_fraction:6.1%}  "
              f"p99 {report.p99_latency_s * 1e3:6.1f} ms")

    print("\n3) capacity sweep: replicas needed at the P99 SLO")
    sweep = capacity_sweep(service, qps_points=[100.0, 200.0, 300.0])
    for line in sweep.table().splitlines():
        print(f"   {line}")

    print("\n4) autoscaled diurnal day with replica faults")
    # The section 5 reliability rate is too small to show in one
    # compressed hour, so run the drill at an accelerated rate.
    fault_rate = max(3.0, fault_rate_from_reliability())
    report, model = autoscaled_day(
        service, fault_rate_per_replica_hour=fault_rate, seed=0
    )
    print(f"   traffic mean {model.mean_rate_per_s:.0f} -> peak "
          f"{model.peak_rate_per_s:.0f} req/s, faults accelerated to "
          f"{fault_rate:.2g}/replica-hour")
    for line in report.summary().splitlines():
        print(f"   {line}")

    print("\n5) host-pool placement and fragmentation")
    pool = HostPool(num_hosts=2)
    grants = [pool.acquire("HC3", 2) for _ in range(10)]
    for grant in grants[::2]:
        pool.release(grant)
    stats = pool.fragmentation_stats(request_size=12)
    print(f"   after 10x 2-accelerator grants and 5 releases: "
          f"{stats.free_total} free, largest contiguous socket "
          f"{stats.largest_socket_free}")
    print(f"   fragmentation {stats.fragmentation:.0%}; a 12-accelerator "
          f"sharded replica is "
          f"{'placeable' if stats.placeable else 'NOT placeable'}")


if __name__ == "__main__":
    main()
