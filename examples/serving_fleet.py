"""Serving and fleet operations: coalescing, scheduling, colocation, power.

Exercises the serving-side machinery the paper's sections 3.4, 4.1, 5.3,
5.4, and 6 describe:

* autotune the request-coalescing window and parallelism for a model;
* show the Figure 5 TBE-consolidation scheduling gain;
* allocate models NUMA-aware across a 24-accelerator Grand Teton server;
* co-locate a full server of low-complexity models and watch host DRAM
  become the bottleneck without the paper's copy-elimination work;
* re-derive the rack power budget with the P90 methodology.

Run:  python examples/serving_fleet.py
"""

from repro.arch import mtia2i_server
from repro.autotune import tune_coalescing
from repro.fleet import NumaAllocator
from repro.reliability import provisioning_study
from repro.serving import (
    CoalescingConfig,
    ModelJobProfile,
    max_throughput_under_slo,
)


def main() -> None:
    profile = ModelJobProfile(
        remote_time_s=0.005,
        merge_time_s=0.009,
        remote_jobs_per_batch=2,
        dispatch_overhead_s=0.001,
        merge_submission_delay_s=0.0008,
    )

    print("1) coalescing autotuning (section 4.1)")
    tuning = tune_coalescing(
        profile, max_batch_samples=1024,
        windows_s=(0.005, 0.015, 0.025), parallel_windows=(2, 4),
    )
    best = tuning.best
    print(
        f"   best window {best.config.window_s * 1e3:.0f} ms x "
        f"{best.config.max_parallel_windows} parallel -> "
        f"{best.outcome.served_samples_per_s:,.0f} samples/s at P99 "
        f"{best.outcome.p99_latency_s * 1e3:.0f} ms "
        f"(fill {best.outcome.mean_fill_fraction:.0%})"
    )

    print("\n2) TBE consolidation (Figure 5)")
    coalescing = CoalescingConfig(
        window_s=0.025, max_parallel_windows=4, max_batch_samples=1024
    )
    separate = max_throughput_under_slo(profile, coalescing, duration_s=20.0, iterations=6)
    merged = max_throughput_under_slo(
        profile.consolidated(), coalescing, duration_s=20.0, iterations=6
    )
    print(
        f"   separate TBE jobs:     {separate.served_samples_per_s:,.0f} samples/s, "
        f"P99 {separate.p99_latency_s * 1e3:.0f} ms"
    )
    print(
        f"   consolidated TBE jobs: {merged.served_samples_per_s:,.0f} samples/s, "
        f"P99 {merged.p99_latency_s * 1e3:.0f} ms "
        f"(+{merged.served_samples_per_s / separate.served_samples_per_s - 1:.0%})"
    )

    print("\n3) NUMA-aware allocation (section 3.4)")
    server = mtia2i_server()
    allocator = NumaAllocator(server)
    for name, count in (("HC3", 2), ("HC3", 2), ("LC1", 1), ("LC5", 1), ("HC1", 2)):
        grant = allocator.allocate(name, count)
        print(
            f"   {name}: accelerators {grant.accelerator_ids} on socket "
            f"{grant.socket} with {grant.cores:.0f} cores"
        )
    print(f"   server utilization: {allocator.utilization():.0%}")

    print("\n4) host-DRAM contention under colocation (section 3.4)")
    from repro.arch import mtia2i_spec
    from repro.fleet import (
        ColocationRequest,
        HOST_DRAM_AMPLIFICATION_NAIVE,
        HOST_DRAM_AMPLIFICATION_OPTIMIZED,
        colocate,
    )
    from repro.models import lc1
    from repro.perf import Executor

    model = lc1()
    report = Executor(mtia2i_spec()).run(model.graph(), model.batch, warmup_runs=1)
    for label, amplification in (
        ("naive host copies", HOST_DRAM_AMPLIFICATION_NAIVE),
        ("copy-eliminated", HOST_DRAM_AMPLIFICATION_OPTIMIZED),
    ):
        result = colocate(
            mtia2i_server(),
            [ColocationRequest("LC1", report, instances=24)],
            amplification=amplification,
        )
        derate = result.placements[0].derate
        print(
            f"   24x LC1, {label}: host-bound sockets "
            f"{result.host_bound_sockets or 'none'}, per-instance throughput "
            f"retained {derate:.0%}"
        )

    print("\n5) power provisioning (section 5.3)")
    outcome = provisioning_study(server)
    print(f"   initial stress-test budget: {outcome.initial_budget_w:,.0f} W/server")
    print(f"   P90 experiment budget:      {outcome.experiment_budget_w:,.0f} W/server")
    print(f"   P90 fleet budget:           {outcome.fleet_budget_w:,.0f} W/server")
    print(
        f"   revised budget {outcome.revised_budget_w:,.0f} W "
        f"(-{outcome.reduction_fraction:.0%}; paper: ~40%)"
    )


if __name__ == "__main__":
    main()
