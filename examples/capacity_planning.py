"""Capacity planning: how many servers does a service need?

A downstream-user scenario tying the whole library together: given a
model and a traffic forecast (mean load, diurnal peak), compute how many
MTIA 2i servers versus GPU servers the service must provision, what the
fleet costs per year, and what the paper's TCO claim means in dollars.

Run:  python examples/capacity_planning.py
"""

import math

from repro.arch import gpu_server, mtia2i_server
from repro.core import evaluate_model
from repro.models import hc1
from repro.serving import diurnal_load_curve
from repro.tco import GPU_COST, MTIA2I_COST, server_tco


def main() -> None:
    model = hc1()
    print(f"planning capacity for {model.name} ({model.description})")

    evaluation = evaluate_model(model)
    mtia_chip_tput = evaluation.mtia_chip_throughput
    gpu_chip_tput = evaluation.gpu_chip_throughput
    print(f"  per-chip throughput: MTIA 2i {mtia_chip_tput:,.0f} samples/s, "
          f"GPU {gpu_chip_tput:,.0f} samples/s")

    # Traffic forecast: a mean of 20M samples/s with a 2.2x diurnal peak.
    mean_load = 20_000_000.0
    curve = diurnal_load_curve(mean_load, peak_to_mean=2.2, seed=1)
    peak_load = float(curve.max())
    print(f"  forecast: mean {mean_load:,.0f} samples/s, "
          f"diurnal peak {peak_load:,.0f} samples/s")

    mtia_srv, gpu_srv = mtia2i_server(), gpu_server()
    plans = {}
    for name, server, chip_tput, costs, shards in (
        ("MTIA 2i", mtia_srv, mtia_chip_tput, MTIA2I_COST, model.accelerators),
        ("GPU", gpu_srv, gpu_chip_tput, GPU_COST, 1),
    ):
        server_tput = chip_tput * server.accelerators_per_server
        servers = math.ceil(peak_load / server_tput)
        tco = server_tco(server, costs)
        fleet_cost = servers * tco.total_per_year
        utilization = mean_load / (servers * server_tput)
        plans[name] = (servers, fleet_cost, utilization)
        print(f"\n  {name} plan:")
        print(f"    server throughput:  {server_tput:,.0f} samples/s "
              f"({server.accelerators_per_server} accelerators)")
        print(f"    servers for peak:   {servers}")
        print(f"    mean utilization:   {utilization:.0%}")
        print(f"    fleet cost:         ${fleet_cost:,.0f}/year "
              f"(${tco.total_per_year:,.0f}/server)")

    mtia_cost, gpu_cost = plans["MTIA 2i"][1], plans["GPU"][1]
    print(f"\n  serving this model on MTIA 2i saves "
          f"${gpu_cost - mtia_cost:,.0f}/year "
          f"({1 - mtia_cost / gpu_cost:.0%} of the GPU fleet cost; "
          "the paper's 44% average TCO reduction, in dollars)")


if __name__ == "__main__":
    main()
