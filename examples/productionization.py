"""Productionization studies end to end (paper section 5).

Walks the four operational studies that shaped MTIA 2i's deployment:

1. the memory-error story: fleet telemetry, bit-flip injection, and the
   enable-ECC decision (section 5.1);
2. the 3,000-chip overclocking qualification (section 5.2);
3. the firmware deadlock and its staged-rollout machinery (section 5.5);
4. the quality A/B test between serving backends (section 5.6).

Run:  python examples/productionization.py
"""

import numpy as np

from repro.fleet import SyntheticCtrModel, run_ab_test
from repro.quant import quantize_weights_static, quantized_matmul
from repro.reliability import (
    EccDecisionInputs,
    ErrorRegion,
    STUDY_FREQUENCIES_HZ,
    SystemState,
    apply_firmware_mitigation,
    decide_ecc,
    emergency_rollout,
    has_deadlock,
    override_rollout,
    run_overclocking_study,
    sample_fleet_errors,
    sensitivity_study,
    staged_detection,
    typical_rollout,
)


def memory_errors() -> None:
    print("1) memory errors and the ECC decision (section 5.1)")
    fleet = sample_fleet_errors(seed=7)
    print(
        f"   fleet sample: {fleet.affected_fraction:.0%} of {fleet.servers} servers "
        f"show errors (paper: 24% of 1,700), "
        f"{fleet.mean_errored_cards_per_affected_server:.2f} cards/affected server"
    )
    report = sensitivity_study(trials_per_region=150)
    for region in ErrorRegion:
        print(f"   bit flips in {region.value:14}: {report.failure_rate(region):.0%} failures")
    decision = decide_ecc(
        EccDecisionInputs(
            server_error_fraction=fleet.affected_fraction,
            uncorrected_failure_rate=report.failure_rate(report.most_sensitive()),
            anomaly_budget_per_day=50.0,
            errors_per_affected_server_per_day=20.0,
            fleet_servers=10_000,
        )
    )
    print(f"   decision: enable ECC = {decision.enable_ecc} ({decision.rationale})")


def overclocking() -> None:
    print("\n2) overclocking at scale (section 5.2)")
    study = run_overclocking_study(num_chips=3000, seed=11)
    for frequency in STUDY_FREQUENCIES_HZ:
        print(
            f"   {frequency / 1e9:.2f} GHz: pass rate "
            f"{study.overall_pass_rate(frequency):.3%}"
        )
    drop = study.pass_rate_drop(STUDY_FREQUENCIES_HZ[0], STUDY_FREQUENCIES_HZ[-1])
    print(f"   1.10 -> 1.35 GHz pass-rate drop: {drop:.3%} (negligible -> ship 1.35 GHz)")


def firmware() -> None:
    print("\n3) firmware: the deadlock and rollouts (section 5.5)")
    stressed = SystemState(
        pe_utilization=1.0, pcie_queue_depth=8, control_core_reads_host_memory=True
    )
    print(f"   stressed system deadlocks: {has_deadlock(stressed)}")
    mitigated = apply_firmware_mitigation(stressed)
    print(f"   after relocating Control-Core memory to SRAM: {has_deadlock(mitigated)}")
    detection = staged_detection(issue_incidence=0.001, seed=2)
    print(
        f"   staged rollout catches a 0.1%-incidence issue at stage "
        f"{detection.detected_at_stage!r} ({detection.servers_exposed} servers exposed)"
    )
    print(
        f"   rollout wall times: typical {typical_rollout().total_days:.0f} days, "
        f"emergency {emergency_rollout().total_hours:.1f} h, "
        f"override {override_rollout().total_hours:.1f} h"
    )


def ab_test() -> None:
    print("\n4) backend A/B test (section 5.6)")
    model = SyntheticCtrModel(num_features=64, seed=3)

    def int8_transform(logits: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(logits)
        weights = quantize_weights_static(np.eye(matrix.shape[1], dtype=np.float32))
        return quantized_matmul(matrix, weights).reshape(logits.shape)

    result = run_ab_test(
        model,
        control=model.exact_backend(),
        treatment=model.backend_with(lambda x: x.astype(np.float16).astype(np.float64)),
        num_requests=200_000,
    )
    print(
        f"   FP16 backend vs FP32: NE delta {result.ne_delta:+.5f}, "
        f"KS {result.prediction_ks:.4f}, revenue proxy x{result.revenue_proxy_ratio:.4f}"
    )
    print(f"   quality parity for launch: {result.quality_parity()}")


def main() -> None:
    memory_errors()
    overclocking()
    firmware()
    ab_test()


if __name__ == "__main__":
    main()
