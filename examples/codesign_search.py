"""Model-chip co-design search: propose the next chip, verify exactly.

A downstream-user walkthrough of repro.codesign: derive candidate
"MTIA 3" chips from the MTIA 2i spec along the co-design axes the paper
turned between generations, let seeded annealing chains explore the
grid against the serving SLO at surrogate fidelity, promote only the
Pareto-best survivors to exact device and serving evaluation, and read
the resulting Perf / Perf-per-TCO / Perf-per-Watt front — every
reported point exact-evaluated, with MTIA 1 and MTIA 2i as anchors.

Run:  python examples/codesign_search.py
"""

from repro.arch import mtia2i_spec
from repro.codesign import (
    DesignSpace,
    SearchConfig,
    derive_chip,
    front_table,
    proposal_summary,
    run_codesign_search,
)
from repro.models import figure6_models
from repro.units import GB, GHZ, GiB, MiB


def main() -> None:
    # 1) Derive one candidate by hand: the axes re-validate, and the
    #    area/power scaling model rebuilds the physicals so TCO and
    #    Perf-per-Watt never come from the base chip's figures.
    base = mtia2i_spec()
    candidate = derive_chip(
        base, num_pes=144, sram_capacity_bytes=512 * MiB, name="hand-pick"
    )
    print(f"{base.name}: {base.num_pes} PEs, {base.die_area_mm2:.0f} mm^2, "
          f"{base.typical_watts:.0f} W typical")
    print(f"{candidate.name}: {candidate.num_pes} PEs, "
          f"{candidate.die_area_mm2:.0f} mm^2, "
          f"{candidate.typical_watts:.0f} W typical")

    # 2) A small grid around the production point (the full search uses
    #    repro.codesign.default_space, ~16k points).
    space = DesignSpace(
        num_pes=(64, 100, 144),
        frequency_hz=(1.1 * GHZ, 1.35 * GHZ, 1.5 * GHZ),
        sram_capacity_bytes=(256 * MiB, 512 * MiB),
        dram_capacity_bytes=(64 * GiB, 128 * GiB),
        dram_bandwidth_bytes_per_s=(204.8 * GB, 307.2 * GB),
        gemm_to_simd=(16.0, 32.0),
        noc_scale=(1.0,),
    )
    models = [m for m in figure6_models() if m.name in ("LC1", "HC1")]
    config = SearchConfig(
        seed=0, iterations=24, device_rung_keep=6, serving_rung_keep=3,
        train_chips=6,
    )
    print(f"\nsearching {space.size()} grid points "
          f"({len(config.chain_weights)} chains x "
          f"{config.iterations} annealing steps)...")
    result = run_codesign_search(
        space, models, config, duration_s=3.0
    )

    # 3) The front: exact-evaluated points only, anchors for scale.
    print()
    print(front_table(result))
    print()
    print(proposal_summary(result))


if __name__ == "__main__":
    main()
