"""Chaos campaign: survive the section 5 incidents, or don't.

A downstream-user scenario for the chaos tier: build the fault-domain
topology, look at what one correlated scenario actually injects, then
run the full catalog defenses-off versus defenses-on and read the
headline — the metastable retry storm that never recovers undefended
and recovers in seconds with deadlines, retry budgets, backoff, and
circuit breakers armed.  Ends by pricing the brownout ladder's quality
cost through the A/B harness.

Run:  python examples/chaos_campaign.py
"""

from repro.chaos import (
    CampaignConfig,
    measure_ladder_quality,
    run_campaign,
    scenario_by_name,
)


def main() -> None:
    config = CampaignConfig()
    topology = config.topology()
    print(f"fleet: {topology.replicas} replicas on {topology.num_hosts} hosts, "
          f"{topology.num_racks} racks, "
          f"{topology.num_power_domains} power domains")

    # What does one correlated incident actually inject?
    storm = scenario_by_name("retry_storm")
    print(f"\nscenario '{storm.name}': {storm.description}")
    print(f"  paper: {storm.paper_ref}")
    for injection in storm.injections(topology):
        print(f"  t={injection.time_s:5.1f}s {injection.kind:9} "
              f"replicas {list(injection.targets)}")

    print("\nrunning the catalog, defenses off then on...")
    result = run_campaign(config)
    print(result.summary())

    storm_off, storm_on = result.headline
    print(f"\nthe metastable mechanism: undefended, clients re-send every "
          f"250 ms, so the fault minted {storm_off.report.client_retries:,} "
          f"retries and {storm_off.report.duplicate_service:,} duplicate "
          f"serves — the tier stays saturated after the outage clears.")
    print(f"defended, the retry budget and backoff held retries to "
          f"{storm_on.report.client_retries:,} and the tier recovered in "
          f"{storm_on.time_to_recovery_s:.1f}s.")

    # What did the brownout ladder's availability cost in quality?
    print("\nbrownout ladder NE damage (A/B-measured, positive = worse):")
    for name, delta in measure_ladder_quality(num_requests=20_000).items():
        print(f"  {name:5} dNE {delta:+.4f}")


if __name__ == "__main__":
    main()
